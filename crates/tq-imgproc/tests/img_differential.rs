//! End-to-end differential test of the image pipeline: the VM run must
//! produce byte-identical outputs (both PGMs, the RLE stream, the MSE
//! print) to the native reference — and the profilers must see the
//! pipeline's phase structure.

use tq_imgproc::{ImgApp, ImgConfig};
use tq_tquad::{PhaseDetector, TquadOptions, TquadTool};

#[test]
fn vm_matches_reference_tiny() {
    let app = ImgApp::build(ImgConfig::tiny());
    let (vm, exit) = app.run_bare().expect("pipeline runs");
    assert!(exit.icount > 500_000, "non-trivial run: {}", exit.icount);

    let r = app.reference_outputs();
    assert_eq!(
        vm.fs().file(tq_imgproc::EDGES_PGM).unwrap(),
        &r.edges_pgm[..],
        "edges.pgm"
    );
    assert_eq!(
        vm.fs().file(tq_imgproc::COEFFS_BIN).unwrap(),
        &r.coeffs_bin[..],
        "coeffs.bin"
    );
    assert_eq!(
        vm.fs().file(tq_imgproc::RECON_PGM).unwrap(),
        &r.recon_pgm[..],
        "recon.pgm"
    );
    assert_eq!(vm.console(), r.console, "MSE print");
}

#[test]
fn vm_matches_reference_across_seeds() {
    for seed in [1u64, 77] {
        let app = ImgApp::build_seeded(ImgConfig::tiny(), seed);
        let (vm, _) = app.run_bare().expect("runs");
        let r = app.reference_outputs();
        assert_eq!(
            vm.fs().file(tq_imgproc::RECON_PGM).unwrap(),
            &r.recon_pgm[..],
            "seed {seed}"
        );
        assert_eq!(vm.console(), r.console, "seed {seed}");
    }
}

#[test]
fn header_parse_is_exercised() {
    // The kernel parses width/height digit-by-digit and stores them in
    // cfg[6]/cfg[7] — read them back out of VM memory.
    let cfg = ImgConfig::tiny();
    let app = ImgApp::build(cfg);
    let (vm, _) = app.run_bare().expect("runs");
    let slot = app.compiled.layout.get("cfg").unwrap();
    let mut buf = [0u8; 8];
    vm.mem_read(slot.addr + 6 * 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), cfg.width as u64);
    vm.mem_read(slot.addr + 7 * 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), cfg.height as u64);
}

#[test]
fn profilers_see_the_pipeline_structure() {
    let app = ImgApp::build(ImgConfig::small());
    let mut vm = app.make_vm();
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2_000),
    )));
    vm.run(None).expect("runs under tQUAD");
    let p = vm.detach_tool::<TquadTool>(t).unwrap().into_profile();

    // Call-count structure.
    let calls = |n: &str| p.kernel(n).expect("kernel").calls;
    let blocks = app.config.blocks() as u64;
    assert_eq!(calls("dct8x8"), blocks);
    assert_eq!(calls("idct8x8"), blocks);
    assert_eq!(calls("quantize_block"), blocks);
    assert_eq!(calls("rle_block"), blocks);
    assert_eq!(calls("conv3x3"), app.config.blur_passes as u64 + 2);
    assert_eq!(calls("img_store"), 2);
    assert_eq!(calls("img_load"), 1);

    // Phase structure: at least load/filter, encode, decode phases emerge,
    // in order, with dct and idct in different phases. `img_store` runs in
    // both the edge phase and the recon phase, so it is excluded the way
    // the paper excludes kernels "utilized in a more general way, which
    // causes the phases to overlap".
    let phases = PhaseDetector::default().detect_excluding(&p, &["main", "img_store"]);
    assert!(phases.len() >= 3, "got {} phases", phases.len());
    let phase_of = |name: &str| -> usize {
        let rtn = p.kernel(name).unwrap().rtn;
        phases
            .iter()
            .position(|ph| ph.kernels.contains(&rtn))
            .unwrap_or(usize::MAX)
    };
    assert!(
        phase_of("conv3x3") < phase_of("dct8x8"),
        "filter before encode"
    );
    assert!(
        phase_of("dct8x8") < phase_of("idct8x8"),
        "encode before decode"
    );
    assert_eq!(
        phase_of("dct8x8"),
        phase_of("rle_block"),
        "encode kernels cluster"
    );
    assert_eq!(
        phase_of("idct8x8"),
        phase_of("dequantize_block"),
        "decode kernels cluster"
    );
}

#[test]
fn quad_sees_the_dataflow() {
    use tq_quad::{QuadOptions, QuadTool};
    let app = ImgApp::build(ImgConfig::tiny());
    let mut vm = app.make_vm();
    let q = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    vm.run(None).expect("runs under QUAD");
    let p = vm.detach_tool::<QuadTool>(q).unwrap().into_profile();

    let edge = |from: &str, to: &str| -> u64 {
        p.bindings
            .iter()
            .filter(|b| {
                p.rows[b.producer.idx()].name == from && p.rows[b.consumer.idx()].name == to
            })
            .map(|b| b.bytes)
            .sum()
    };
    // The pipeline's producer→consumer chain.
    assert!(edge("img_load", "conv3x3") > 0, "loader feeds the filter");
    assert!(edge("conv3x3", "copy_clamp_u8") > 0);
    assert!(
        edge("conv3x3", "sobel_mag") > 0,
        "gradients feed the magnitude"
    );
    assert!(
        edge("quantize_block", "dequantize_block") > 0,
        "coeff store crosses enc/dec"
    );
    assert!(edge("quantize_block", "zigzag_block") > 0);
    assert!(
        edge("init_tables", "dct8x8") > 0,
        "cos tables consumed by the DCT"
    );
}
