//! The image pipeline, kernel by kernel: Gaussian blur → Sobel edge
//! detection → thresholded edge map, plus an 8×8 DCT compression path
//! (quantise → zigzag → RLE) with a decode-and-verify tail.
//!
//! Structured like the wfs case study: distinct sequential phases (load,
//! filter, encode, decode/verify, store) for the phase detector; a
//! library-image `lib_clamp` called once per pixel; table-driven kernels
//! (`init_tables` plays the role wfs's `ffw` plays); byte-wise header
//! parsing in `img_load` like `wav_load`'s RIFF parsing.

use crate::config::ImgConfig;
use std::f64::consts::PI;
use tq_isa::HostFn;
use tq_kernelc::dsl::*;
use tq_kernelc::{ElemTy, Function, GlobalInit, Module, Ty};

/// Input file name in the simulated FS.
pub const INPUT_PGM: &str = "input.pgm";
/// Edge-map output.
pub const EDGES_PGM: &str = "edges.pgm";
/// Reconstructed-image output.
pub const RECON_PGM: &str = "recon.pgm";
/// RLE-compressed coefficient stream.
pub const COEFFS_BIN: &str = "coeffs.bin";

/// All application kernels (for tests).
pub const KERNEL_NAMES: [&str; 14] = [
    "init_tables",
    "img_load",
    "conv3x3",
    "copy_clamp_u8",
    "sobel_mag",
    "threshold_img",
    "dct8x8",
    "quantize_block",
    "zigzag_block",
    "rle_block",
    "dequantize_block",
    "idct8x8",
    "mse",
    "img_store",
];

/// Standard zigzag scan order for an 8×8 block.
pub const ZIGZAG: [i64; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// JPEG-flavoured luminance quantisation table.
pub const QTAB: [f64; 64] = [
    16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0, 12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0,
    14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0, 14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0,
    18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0, 24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0,
    92.0, 49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0, 72.0, 92.0, 95.0, 98.0, 112.0, 100.0,
    103.0, 99.0,
];

/// Gaussian 3×3 kernel (unnormalised 1-2-1; divided by 16 in the table).
pub const KERN_GAUSS: [f64; 9] = [
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    4.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
];
/// Sobel x kernel.
pub const KERN_SOBX: [f64; 9] = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];
/// Sobel y kernel.
pub const KERN_SOBY: [f64; 9] = [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0];

mod cfg_idx {
    pub const W: i64 = 0;
    pub const H: i64 = 1;
    pub const BLUR: i64 = 2;
    pub const THRESH: i64 = 3;
    pub const NBX: i64 = 4;
    pub const NBY: i64 = 5;
    /// Width as parsed from the PGM header (observable check).
    pub const PARSED_W: i64 = 6;
    /// Height as parsed from the PGM header.
    pub const PARSED_H: i64 = 7;
}

fn cfg(i: i64) -> tq_kernelc::Expr {
    ldi(ga("cfg"), ci(i))
}

/// Build the module for a configuration.
pub fn build_module(config: &ImgConfig) -> Module {
    config.validate().expect("valid config");
    let mut m = Module::new("imgproc");
    let npix = config.pixels() as u64;
    let w = config.width;
    let h = config.height;

    m.global(
        "cfg",
        ElemTy::I64,
        8,
        GlobalInit::I64s(vec![
            w as i64,
            h as i64,
            config.blur_passes as i64,
            config.threshold as i64,
            (w / 8) as i64,
            (h / 8) as i64,
        ]),
    );
    for (name, val) in [
        ("path_in", INPUT_PGM),
        ("path_edges", EDGES_PGM),
        ("path_recon", RECON_PGM),
        ("path_rle", COEFFS_BIN),
    ] {
        m.global(
            name,
            ElemTy::U8,
            val.len() as u64,
            GlobalInit::Bytes(val.into()),
        );
    }
    // Output header is static for a fixed config (same simplification as
    // wfs's outhdr).
    let outhdr = format!("P5\n{w} {h}\n255\n").into_bytes();
    m.global(
        "outhdr_len",
        ElemTy::I64,
        1,
        GlobalInit::I64s(vec![outhdr.len() as i64]),
    );
    m.global(
        "outhdr",
        ElemTy::U8,
        outhdr.len() as u64,
        GlobalInit::Bytes(outhdr),
    );

    m.global("hdrbuf", ElemTy::U8, 32, GlobalInit::Zero);
    m.global("stage", ElemTy::U8, 4096, GlobalInit::Zero);
    m.global("img", ElemTy::U8, npix, GlobalInit::Zero);
    m.global("tmp16", ElemTy::I16, npix, GlobalInit::Zero);
    m.global("gx", ElemTy::I16, npix, GlobalInit::Zero);
    m.global("gy", ElemTy::I16, npix, GlobalInit::Zero);
    m.global("edges", ElemTy::U8, npix, GlobalInit::Zero);
    m.global("recon", ElemTy::U8, npix, GlobalInit::Zero);
    m.global("dctbuf", ElemTy::F64, 64, GlobalInit::Zero);
    m.global("qbuf", ElemTy::I64, 64, GlobalInit::Zero);
    m.global("zzbuf", ElemTy::I64, 64, GlobalInit::Zero);
    m.global("qcoef", ElemTy::I16, npix, GlobalInit::Zero);
    m.global("ctab", ElemTy::F64, 64, GlobalInit::Zero);
    m.global("atab", ElemTy::F64, 8, GlobalInit::Zero);
    m.global("ztab", ElemTy::I64, 64, GlobalInit::I64s(ZIGZAG.to_vec()));
    m.global("qtab", ElemTy::F64, 64, GlobalInit::F64s(QTAB.to_vec()));
    m.global(
        "kern_gauss",
        ElemTy::F64,
        9,
        GlobalInit::F64s(KERN_GAUSS.to_vec()),
    );
    m.global(
        "kern_sobx",
        ElemTy::F64,
        9,
        GlobalInit::F64s(KERN_SOBX.to_vec()),
    );
    m.global(
        "kern_soby",
        ElemTy::F64,
        9,
        GlobalInit::F64s(KERN_SOBY.to_vec()),
    );
    m.global("rle", ElemTy::I16, npix * 2 + 256, GlobalInit::Zero);
    m.global("rlepos", ElemTy::I64, 1, GlobalInit::Zero);
    m.global("mse_acc", ElemTy::F64, 1, GlobalInit::Zero);

    // ---- library ----
    m.func(
        Function::new("lib_clamp")
            .param("x", Ty::I64)
            .returns(Ty::I64)
            .in_library()
            .body(vec![
                if_(lt(v("x"), ci(0)), vec![ret(ci(0))]),
                if_(gt(v("x"), ci(255)), vec![ret(ci(255))]),
                ret(v("x")),
            ]),
    );

    // ---- kernels ----
    m.func(Function::new("init_tables").body(vec![
        for_(
            "u",
            ci(0),
            ci(8),
            vec![for_(
                "x",
                ci(0),
                ci(8),
                vec![stf(
                    ga("ctab"),
                    add(mul(v("u"), ci(8)), v("x")),
                    cos(div(
                        mul(
                            mul(add(mul(i2f(v("x")), cf(2.0)), cf(1.0)), i2f(v("u"))),
                            cf(PI),
                        ),
                        cf(16.0),
                    )),
                )],
            )],
        ),
        stf(ga("atab"), ci(0), div(cf(1.0), sqrt(cf(2.0)))),
        for_("u", ci(1), ci(8), vec![stf(ga("atab"), v("u"), cf(1.0))]),
    ]));

    m.func(Function::new("img_load").body(vec![
        leti("fd", ci(0)),
        host_ret(
            "fd",
            HostFn::FsOpen,
            vec![ga("path_in"), ci(INPUT_PGM.len() as i64), ci(0)],
        ),
        leti("got", ci(0)),
        // Skip "P5\n".
        host_ret("got", HostFn::FsRead, vec![v("fd"), ga("hdrbuf"), ci(3)]),
        // Parse width (digits until the separating space).
        leti("wv", ci(0)),
        host_ret(
            "got",
            HostFn::FsRead,
            vec![v("fd"), add(ga("hdrbuf"), ci(16)), ci(1)],
        ),
        leti("ch", load(ga("hdrbuf"), ElemTy::U8, ci(16))),
        while_(
            ne(v("ch"), ci(32)),
            vec![
                set("wv", add(mul(v("wv"), ci(10)), sub(v("ch"), ci(48)))),
                host_ret(
                    "got",
                    HostFn::FsRead,
                    vec![v("fd"), add(ga("hdrbuf"), ci(16)), ci(1)],
                ),
                set("ch", load(ga("hdrbuf"), ElemTy::U8, ci(16))),
            ],
        ),
        // Parse height (digits until the newline).
        leti("hv", ci(0)),
        host_ret(
            "got",
            HostFn::FsRead,
            vec![v("fd"), add(ga("hdrbuf"), ci(16)), ci(1)],
        ),
        set("ch", load(ga("hdrbuf"), ElemTy::U8, ci(16))),
        while_(
            ne(v("ch"), ci(10)),
            vec![
                set("hv", add(mul(v("hv"), ci(10)), sub(v("ch"), ci(48)))),
                host_ret(
                    "got",
                    HostFn::FsRead,
                    vec![v("fd"), add(ga("hdrbuf"), ci(16)), ci(1)],
                ),
                set("ch", load(ga("hdrbuf"), ElemTy::U8, ci(16))),
            ],
        ),
        sti(ga("cfg"), ci(cfg_idx::PARSED_W), v("wv")),
        sti(ga("cfg"), ci(cfg_idx::PARSED_H), v("hv")),
        // Skip "255\n".
        host_ret("got", HostFn::FsRead, vec![v("fd"), ga("hdrbuf"), ci(4)]),
        // Pixel payload, staged in 4 KiB chunks.
        leti("npix", mul(cfg(cfg_idx::W), cfg(cfg_idx::H))),
        leti("pos", ci(0)),
        while_(
            lt(v("pos"), v("npix")),
            vec![
                leti("todo", sub(v("npix"), v("pos"))),
                if_(gt(v("todo"), ci(4096)), vec![set("todo", ci(4096))]),
                host_ret("got", HostFn::FsRead, vec![v("fd"), ga("stage"), v("todo")]),
                for_(
                    "i",
                    ci(0),
                    v("todo"),
                    vec![store(
                        ga("img"),
                        ElemTy::U8,
                        add(v("pos"), v("i")),
                        load(ga("stage"), ElemTy::U8, v("i")),
                    )],
                ),
                set("pos", add(v("pos"), v("todo"))),
            ],
        ),
        host(HostFn::FsClose, vec![v("fd")]),
    ]));

    // 3×3 convolution: u8 source → i16 destination, borders left at zero.
    m.func(
        Function::new("conv3x3")
            .param("dst", Ty::I64)
            .param("srcp", Ty::I64)
            .param("kptr", Ty::I64)
            .body(vec![
                leti("w", cfg(cfg_idx::W)),
                leti("h", cfg(cfg_idx::H)),
                for_(
                    "y",
                    ci(1),
                    sub(v("h"), ci(1)),
                    vec![for_(
                        "x",
                        ci(1),
                        sub(v("w"), ci(1)),
                        vec![
                            letf("acc", cf(0.0)),
                            for_(
                                "ky",
                                ci(0),
                                ci(3),
                                vec![for_(
                                    "kx",
                                    ci(0),
                                    ci(3),
                                    vec![set(
                                        "acc",
                                        add(
                                            v("acc"),
                                            mul(
                                                i2f(load(
                                                    v("srcp"),
                                                    ElemTy::U8,
                                                    add(
                                                        mul(
                                                            add(v("y"), sub(v("ky"), ci(1))),
                                                            v("w"),
                                                        ),
                                                        add(v("x"), sub(v("kx"), ci(1))),
                                                    ),
                                                )),
                                                ldf(v("kptr"), add(mul(v("ky"), ci(3)), v("kx"))),
                                            ),
                                        ),
                                    )],
                                )],
                            ),
                            store(
                                v("dst"),
                                ElemTy::I16,
                                add(mul(v("y"), v("w")), v("x")),
                                f2i(v("acc")),
                            ),
                        ],
                    )],
                ),
            ]),
    );

    m.func(
        Function::new("copy_clamp_u8")
            .param("dst", Ty::I64)
            .param("srcp", Ty::I64)
            .param("n", Ty::I64)
            .body(vec![for_(
                "i",
                ci(0),
                v("n"),
                vec![
                    leti("q", ci(0)),
                    call_ret("q", "lib_clamp", vec![load(v("srcp"), ElemTy::I16, v("i"))]),
                    store(v("dst"), ElemTy::U8, v("i"), v("q")),
                ],
            )]),
    );

    m.func(Function::new("sobel_mag").body(vec![
        leti("npix", mul(cfg(cfg_idx::W), cfg(cfg_idx::H))),
        for_(
            "i",
            ci(0),
            v("npix"),
            vec![
                letf("fx", i2f(load(ga("gx"), ElemTy::I16, v("i")))),
                letf("fy", i2f(load(ga("gy"), ElemTy::I16, v("i")))),
                leti("q", ci(0)),
                call_ret(
                    "q",
                    "lib_clamp",
                    vec![f2i(sqrt(add(mul(v("fx"), v("fx")), mul(v("fy"), v("fy")))))],
                ),
                store(ga("edges"), ElemTy::U8, v("i"), v("q")),
            ],
        ),
    ]));

    m.func(Function::new("threshold_img").body(vec![
        leti("npix", mul(cfg(cfg_idx::W), cfg(cfg_idx::H))),
        leti("t", cfg(cfg_idx::THRESH)),
        for_(
            "i",
            ci(0),
            v("npix"),
            vec![if_else(
                gt(load(ga("edges"), ElemTy::U8, v("i")), v("t")),
                vec![store(ga("edges"), ElemTy::U8, v("i"), ci(255))],
                vec![store(ga("edges"), ElemTy::U8, v("i"), ci(0))],
            )],
        ),
    ]));

    // Forward DCT of the 8×8 block at (bx, by) from `img` into `dctbuf`.
    m.func(
        Function::new("dct8x8")
            .param("bx", Ty::I64)
            .param("by", Ty::I64)
            .body(vec![
                leti("w", cfg(cfg_idx::W)),
                leti(
                    "base",
                    add(mul(mul(v("by"), ci(8)), v("w")), mul(v("bx"), ci(8))),
                ),
                for_(
                    "u",
                    ci(0),
                    ci(8),
                    vec![for_(
                        "vv",
                        ci(0),
                        ci(8),
                        vec![
                            letf("acc", cf(0.0)),
                            for_(
                                "x",
                                ci(0),
                                ci(8),
                                vec![for_(
                                    "y",
                                    ci(0),
                                    ci(8),
                                    vec![set(
                                        "acc",
                                        add(
                                            v("acc"),
                                            mul(
                                                mul(
                                                    sub(
                                                        i2f(load(
                                                            ga("img"),
                                                            ElemTy::U8,
                                                            add(
                                                                add(v("base"), mul(v("x"), v("w"))),
                                                                v("y"),
                                                            ),
                                                        )),
                                                        cf(128.0),
                                                    ),
                                                    ldf(
                                                        ga("ctab"),
                                                        add(mul(v("u"), ci(8)), v("x")),
                                                    ),
                                                ),
                                                ldf(ga("ctab"), add(mul(v("vv"), ci(8)), v("y"))),
                                            ),
                                        ),
                                    )],
                                )],
                            ),
                            stf(
                                ga("dctbuf"),
                                add(mul(v("u"), ci(8)), v("vv")),
                                mul(
                                    mul(
                                        mul(cf(0.25), ldf(ga("atab"), v("u"))),
                                        ldf(ga("atab"), v("vv")),
                                    ),
                                    v("acc"),
                                ),
                            ),
                        ],
                    )],
                ),
            ]),
    );

    // Quantise `dctbuf` into `qbuf` and the per-block coefficient store.
    m.func(
        Function::new("quantize_block")
            .param("bx", Ty::I64)
            .param("by", Ty::I64)
            .body(vec![
                leti(
                    "bi",
                    mul(add(mul(v("by"), cfg(cfg_idx::NBX)), v("bx")), ci(64)),
                ),
                for_(
                    "i",
                    ci(0),
                    ci(64),
                    vec![
                        letf("q", div(ldf(ga("dctbuf"), v("i")), ldf(ga("qtab"), v("i")))),
                        leti("qq", ci(0)),
                        if_else(
                            ge(v("q"), cf(0.0)),
                            vec![set("qq", f2i(add(v("q"), cf(0.5))))],
                            vec![set("qq", f2i(sub(v("q"), cf(0.5))))],
                        ),
                        sti(ga("qbuf"), v("i"), v("qq")),
                        store(ga("qcoef"), ElemTy::I16, add(v("bi"), v("i")), v("qq")),
                    ],
                ),
            ]),
    );

    m.func(Function::new("zigzag_block").body(vec![for_(
        "i",
        ci(0),
        ci(64),
        vec![sti(
            ga("zzbuf"),
            v("i"),
            ldi(ga("qbuf"), ldi(ga("ztab"), v("i"))),
        )],
    )]));

    m.func(Function::new("rle_block").body(vec![
        leti("run", ci(0)),
        for_(
            "i",
            ci(0),
            ci(64),
            vec![
                leti("val", ldi(ga("zzbuf"), v("i"))),
                if_else(
                    eq(v("val"), ci(0)),
                    vec![set("run", add(v("run"), ci(1)))],
                    vec![
                        leti("pos", ldi(ga("rlepos"), ci(0))),
                        store(ga("rle"), ElemTy::I16, v("pos"), v("run")),
                        store(ga("rle"), ElemTy::I16, add(v("pos"), ci(1)), v("val")),
                        sti(ga("rlepos"), ci(0), add(v("pos"), ci(2))),
                        set("run", ci(0)),
                    ],
                ),
            ],
        ),
        // End-of-block marker.
        leti("pos2", ldi(ga("rlepos"), ci(0))),
        store(ga("rle"), ElemTy::I16, v("pos2"), ci(-1)),
        store(ga("rle"), ElemTy::I16, add(v("pos2"), ci(1)), ci(-1)),
        sti(ga("rlepos"), ci(0), add(v("pos2"), ci(2))),
    ]));

    m.func(
        Function::new("dequantize_block")
            .param("bx", Ty::I64)
            .param("by", Ty::I64)
            .body(vec![
                leti(
                    "bi",
                    mul(add(mul(v("by"), cfg(cfg_idx::NBX)), v("bx")), ci(64)),
                ),
                for_(
                    "i",
                    ci(0),
                    ci(64),
                    vec![stf(
                        ga("dctbuf"),
                        v("i"),
                        mul(
                            i2f(load(ga("qcoef"), ElemTy::I16, add(v("bi"), v("i")))),
                            ldf(ga("qtab"), v("i")),
                        ),
                    )],
                ),
            ]),
    );

    m.func(
        Function::new("idct8x8")
            .param("bx", Ty::I64)
            .param("by", Ty::I64)
            .body(vec![
                leti("w", cfg(cfg_idx::W)),
                leti(
                    "base",
                    add(mul(mul(v("by"), ci(8)), v("w")), mul(v("bx"), ci(8))),
                ),
                for_(
                    "x",
                    ci(0),
                    ci(8),
                    vec![for_(
                        "y",
                        ci(0),
                        ci(8),
                        vec![
                            letf("acc", cf(0.0)),
                            for_(
                                "u",
                                ci(0),
                                ci(8),
                                vec![for_(
                                    "vv",
                                    ci(0),
                                    ci(8),
                                    vec![set(
                                        "acc",
                                        add(
                                            v("acc"),
                                            mul(
                                                mul(
                                                    mul(
                                                        mul(
                                                            ldf(ga("atab"), v("u")),
                                                            ldf(ga("atab"), v("vv")),
                                                        ),
                                                        ldf(
                                                            ga("dctbuf"),
                                                            add(mul(v("u"), ci(8)), v("vv")),
                                                        ),
                                                    ),
                                                    ldf(
                                                        ga("ctab"),
                                                        add(mul(v("u"), ci(8)), v("x")),
                                                    ),
                                                ),
                                                ldf(ga("ctab"), add(mul(v("vv"), ci(8)), v("y"))),
                                            ),
                                        ),
                                    )],
                                )],
                            ),
                            leti("q", ci(0)),
                            call_ret(
                                "q",
                                "lib_clamp",
                                vec![f2i(add(mul(cf(0.25), v("acc")), cf(128.5)))],
                            ),
                            store(
                                ga("recon"),
                                ElemTy::U8,
                                add(add(v("base"), mul(v("x"), v("w"))), v("y")),
                                v("q"),
                            ),
                        ],
                    )],
                ),
            ]),
    );

    m.func(Function::new("mse").body(vec![
        leti("npix", mul(cfg(cfg_idx::W), cfg(cfg_idx::H))),
        stf(ga("mse_acc"), ci(0), cf(0.0)),
        for_(
            "i",
            ci(0),
            v("npix"),
            vec![
                letf(
                    "d",
                    sub(
                        i2f(load(ga("img"), ElemTy::U8, v("i"))),
                        i2f(load(ga("recon"), ElemTy::U8, v("i"))),
                    ),
                ),
                stf(
                    ga("mse_acc"),
                    ci(0),
                    add(ldf(ga("mse_acc"), ci(0)), mul(v("d"), v("d"))),
                ),
            ],
        ),
        host(
            HostFn::PrintF64,
            vec![div(ldf(ga("mse_acc"), ci(0)), i2f(v("npix")))],
        ),
    ]));

    m.func(
        Function::new("img_store")
            .param("srcp", Ty::I64)
            .param("pathp", Ty::I64)
            .param("pathlen", Ty::I64)
            .body(vec![
                leti("fd", ci(0)),
                host_ret("fd", HostFn::FsOpen, vec![v("pathp"), v("pathlen"), ci(1)]),
                host(
                    HostFn::FsWrite,
                    vec![v("fd"), ga("outhdr"), ldi(ga("outhdr_len"), ci(0))],
                ),
                leti("npix", mul(cfg(cfg_idx::W), cfg(cfg_idx::H))),
                leti("pos", ci(0)),
                while_(
                    lt(v("pos"), v("npix")),
                    vec![
                        leti("todo", sub(v("npix"), v("pos"))),
                        if_(gt(v("todo"), ci(4096)), vec![set("todo", ci(4096))]),
                        for_(
                            "i",
                            ci(0),
                            v("todo"),
                            vec![store(
                                ga("stage"),
                                ElemTy::U8,
                                v("i"),
                                load(v("srcp"), ElemTy::U8, add(v("pos"), v("i"))),
                            )],
                        ),
                        host(HostFn::FsWrite, vec![v("fd"), ga("stage"), v("todo")]),
                        set("pos", add(v("pos"), v("todo"))),
                    ],
                ),
                host(HostFn::FsClose, vec![v("fd")]),
            ]),
    );

    m.func(Function::new("main").body(vec![
        call("init_tables", vec![]),
        call("img_load", vec![]),
        // Filter phase.
        leti("np", mul(cfg(cfg_idx::W), cfg(cfg_idx::H))),
        for_(
            "p",
            ci(0),
            cfg(cfg_idx::BLUR),
            vec![
                call("conv3x3", vec![ga("tmp16"), ga("img"), ga("kern_gauss")]),
                call("copy_clamp_u8", vec![ga("img"), ga("tmp16"), v("np")]),
            ],
        ),
        call("conv3x3", vec![ga("gx"), ga("img"), ga("kern_sobx")]),
        call("conv3x3", vec![ga("gy"), ga("img"), ga("kern_soby")]),
        call("sobel_mag", vec![]),
        call("threshold_img", vec![]),
        call(
            "img_store",
            vec![ga("edges"), ga("path_edges"), ci(EDGES_PGM.len() as i64)],
        ),
        // Encode phase.
        leti("nbx", cfg(cfg_idx::NBX)),
        leti("nby", cfg(cfg_idx::NBY)),
        for_(
            "by",
            ci(0),
            v("nby"),
            vec![for_(
                "bx",
                ci(0),
                v("nbx"),
                vec![
                    call("dct8x8", vec![v("bx"), v("by")]),
                    call("quantize_block", vec![v("bx"), v("by")]),
                    call("zigzag_block", vec![]),
                    call("rle_block", vec![]),
                ],
            )],
        ),
        leti("fd", ci(0)),
        host_ret(
            "fd",
            HostFn::FsOpen,
            vec![ga("path_rle"), ci(COEFFS_BIN.len() as i64), ci(1)],
        ),
        host(
            HostFn::FsWrite,
            vec![v("fd"), ga("rle"), mul(ldi(ga("rlepos"), ci(0)), ci(2))],
        ),
        host(HostFn::FsClose, vec![v("fd")]),
        // Decode + verify phase.
        for_(
            "by2",
            ci(0),
            v("nby"),
            vec![for_(
                "bx2",
                ci(0),
                v("nbx"),
                vec![
                    call("dequantize_block", vec![v("bx2"), v("by2")]),
                    call("idct8x8", vec![v("bx2"), v("by2")]),
                ],
            )],
        ),
        call("mse", vec![]),
        call(
            "img_store",
            vec![ga("recon"), ga("path_recon"), ci(RECON_PGM.len() as i64)],
        ),
    ]));

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_checks_and_compiles() {
        for c in [ImgConfig::tiny(), ImgConfig::small()] {
            let m = build_module(&c);
            tq_kernelc::check(&m).expect("module checks");
            let compiled = tq_kernelc::compile(&m).expect("module compiles");
            assert_eq!(compiled.program.images.len(), 2, "main + libsim");
        }
    }

    #[test]
    fn all_kernels_present() {
        let m = build_module(&ImgConfig::tiny());
        for k in KERNEL_NAMES {
            assert!(m.function(k).is_some(), "kernel `{k}` missing");
        }
        assert!(m.function("lib_clamp").unwrap().library);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z as usize], "duplicate {z}");
            seen[z as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
