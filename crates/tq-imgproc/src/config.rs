//! Configuration of the image-processing case study.

/// Workload parameters. Width and height must be multiples of 8 (the DCT
/// block size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImgConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Gaussian blur passes before edge detection.
    pub blur_passes: u32,
    /// Edge binarisation threshold (0–255).
    pub threshold: u32,
}

impl ImgConfig {
    /// Unit-test size (~2 M instructions).
    pub fn tiny() -> Self {
        ImgConfig {
            width: 32,
            height: 24,
            blur_passes: 1,
            threshold: 48,
        }
    }

    /// Integration-test / example size (~25 M instructions).
    pub fn small() -> Self {
        ImgConfig {
            width: 96,
            height: 64,
            blur_passes: 2,
            threshold: 48,
        }
    }

    /// Benchmark size (~250 M instructions).
    pub fn scaled() -> Self {
        ImgConfig {
            width: 320,
            height: 240,
            blur_passes: 2,
            threshold: 48,
        }
    }

    /// Pixels per frame.
    pub fn pixels(&self) -> u32 {
        self.width * self.height
    }

    /// 8×8 blocks per frame.
    pub fn blocks(&self) -> u32 {
        (self.width / 8) * (self.height / 8)
    }

    /// Validate structural requirements.
    pub fn validate(&self) -> Result<(), String> {
        if !self.width.is_multiple_of(8) || !self.height.is_multiple_of(8) {
            return Err("width and height must be multiples of 8".into());
        }
        if self.width < 16 || self.height < 16 {
            return Err("image must be at least 16×16".into());
        }
        if self.threshold > 255 {
            return Err("threshold must be a byte".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [ImgConfig::tiny(), ImgConfig::small(), ImgConfig::scaled()] {
            c.validate().unwrap();
            assert_eq!(c.blocks() * 64, c.pixels());
        }
    }

    #[test]
    fn invalid_rejected() {
        let mut c = ImgConfig::tiny();
        c.width = 33;
        assert!(c.validate().is_err());
        let mut c = ImgConfig::tiny();
        c.height = 8;
        assert!(c.validate().is_err());
    }
}
