//! # tq-imgproc — a second case-study application
//!
//! The paper states "tQUAD was tested on a set of real applications" but
//! shows only the *hArtes wfs* results. This crate provides a second,
//! structurally different workload for the reproduced toolchain: an image
//! pipeline (Gaussian blur → Sobel edge detection → thresholding, plus an
//! 8×8 DCT encode/decode path with quantisation, zigzag and RLE),
//! compiled through the same kernel DSL onto the same VM and validated
//! against a native mirror byte-for-byte — demonstrating that the
//! profilers generalise beyond the workload they were calibrated on.

pub mod app;
pub mod config;
pub mod kernels;
pub mod pgm;
pub mod reference;

pub use app::ImgApp;
pub use config::ImgConfig;
pub use kernels::{build_module, COEFFS_BIN, EDGES_PGM, INPUT_PGM, KERNEL_NAMES, RECON_PGM};
pub use reference::{RefImg, RefOutputs};
