//! Driver: compile, stage input, run (optionally under tools).

use crate::config::ImgConfig;
use crate::kernels::{build_module, INPUT_PGM};
use crate::pgm::{encode_pgm, synth_image};
use crate::reference::{RefImg, RefOutputs};
use tq_kernelc::{compile, Compiled};
use tq_vm::{RunExit, Vm, VmError};

/// A ready-to-run image-pipeline instance.
pub struct ImgApp {
    /// Workload configuration.
    pub config: ImgConfig,
    /// Compiled program + layout.
    pub compiled: Compiled,
    /// The staged input PGM.
    pub input_pgm: Vec<u8>,
}

impl ImgApp {
    /// Build with the default input seed.
    pub fn build(config: ImgConfig) -> Self {
        Self::build_seeded(config, 42)
    }

    /// Build with a chosen input seed.
    pub fn build_seeded(config: ImgConfig, seed: u64) -> Self {
        config.validate().expect("valid config");
        let module = build_module(&config);
        let compiled = compile(&module).expect("imgproc module compiles");
        let pixels = synth_image(config.width, config.height, seed);
        let input_pgm = encode_pgm(config.width, config.height, &pixels);
        ImgApp {
            config,
            compiled,
            input_pgm,
        }
    }

    /// Fresh VM with the input staged.
    pub fn make_vm(&self) -> Vm {
        let mut vm = Vm::new(self.compiled.program.clone()).expect("program loads");
        vm.fs_mut().add_file(INPUT_PGM, self.input_pgm.clone());
        vm
    }

    /// Run without tools.
    pub fn run_bare(&self) -> Result<(Vm, RunExit), VmError> {
        let mut vm = self.make_vm();
        let exit = vm.run(None)?;
        Ok((vm, exit))
    }

    /// Reference outputs for the same input.
    pub fn reference_outputs(&self) -> RefOutputs {
        RefImg::new(self.config).run(&self.input_pgm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_stages() {
        let app = ImgApp::build(ImgConfig::tiny());
        assert!(app.make_vm().fs().file(INPUT_PGM).is_some());
    }
}
