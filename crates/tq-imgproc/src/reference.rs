//! Native Rust mirror of the image pipeline, operation-for-operation, for
//! byte-exact differential testing against the VM run.
//!
//! Style lints are relaxed here on purpose: the mirror's index-based loops
//! and branch-ordered clamp are written to correspond line-for-line with
//! the DSL kernels in `kernels.rs`, so a reviewer can diff the two by eye.
#![allow(clippy::needless_range_loop, clippy::manual_range_contains)]
#![cfg_attr(test, allow(clippy::manual_contains))]

use crate::config::ImgConfig;
use crate::kernels::{KERN_GAUSS, KERN_SOBX, KERN_SOBY, QTAB, ZIGZAG};
use std::f64::consts::PI;

/// Outputs of a reference run.
pub struct RefOutputs {
    /// `edges.pgm` bytes.
    pub edges_pgm: Vec<u8>,
    /// `coeffs.bin` bytes (RLE stream).
    pub coeffs_bin: Vec<u8>,
    /// `recon.pgm` bytes.
    pub recon_pgm: Vec<u8>,
    /// Console output (the MSE print).
    pub console: String,
}

/// The reference pipeline.
pub struct RefImg {
    cfg: ImgConfig,
    img: Vec<u8>,
    tmp16: Vec<i16>,
    gx: Vec<i16>,
    gy: Vec<i16>,
    edges: Vec<u8>,
    recon: Vec<u8>,
    dctbuf: [f64; 64],
    qbuf: [i64; 64],
    zzbuf: [i64; 64],
    qcoef: Vec<i16>,
    ctab: [f64; 64],
    atab: [f64; 8],
    rle: Vec<i16>,
}

#[allow(clippy::manual_clamp)] // mirrors lib_clamp's branch order exactly
fn clamp255(x: i64) -> i64 {
    if x < 0 {
        0
    } else if x > 255 {
        255
    } else {
        x
    }
}

impl RefImg {
    /// Fresh pipeline.
    pub fn new(cfg: ImgConfig) -> Self {
        cfg.validate().expect("valid config");
        let n = cfg.pixels() as usize;
        RefImg {
            cfg,
            img: vec![0; n],
            tmp16: vec![0; n],
            gx: vec![0; n],
            gy: vec![0; n],
            edges: vec![0; n],
            recon: vec![0; n],
            dctbuf: [0.0; 64],
            qbuf: [0; 64],
            zzbuf: [0; 64],
            qcoef: vec![0; n],
            ctab: [0.0; 64],
            atab: [0.0; 8],
            rle: Vec::new(),
        }
    }

    fn init_tables(&mut self) {
        for u in 0..8usize {
            for x in 0..8usize {
                self.ctab[u * 8 + x] =
                    ((((x as i64 as f64) * 2.0 + 1.0) * (u as i64 as f64) * PI) / 16.0).cos();
            }
        }
        self.atab[0] = 1.0 / 2.0f64.sqrt();
        for u in 1..8 {
            self.atab[u] = 1.0;
        }
    }

    fn img_load(&mut self, file: &[u8]) {
        // Header parse mirrors the byte-wise kernel: digits with the same
        // accumulation; payload copied in.
        let mut pos = 3; // "P5\n"
        let mut wv: i64 = 0;
        while file[pos] != b' ' {
            wv = wv * 10 + (file[pos] - 48) as i64;
            pos += 1;
        }
        pos += 1;
        let mut hv: i64 = 0;
        while file[pos] != b'\n' {
            hv = hv * 10 + (file[pos] - 48) as i64;
            pos += 1;
        }
        pos += 1 + 4; // '\n' + "255\n"
        let _ = (wv, hv);
        let n = self.cfg.pixels() as usize;
        self.img.copy_from_slice(&file[pos..pos + n]);
    }

    fn conv3x3(dst: &mut [i16], src: &[u8], k: &[f64; 9], w: usize, h: usize) {
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let mut acc = 0.0f64;
                for ky in 0..3usize {
                    for kx in 0..3usize {
                        acc += src[(y + ky - 1) * w + (x + kx - 1)] as f64 * k[ky * 3 + kx];
                    }
                }
                dst[y * w + x] = (acc as i64) as i16;
            }
        }
    }

    fn copy_clamp_u8(dst: &mut [u8], src: &[i16], n: usize) {
        for i in 0..n {
            dst[i] = clamp255(src[i] as i64) as u8;
        }
    }

    fn sobel_mag(&mut self) {
        for i in 0..self.cfg.pixels() as usize {
            let fx = self.gx[i] as f64;
            let fy = self.gy[i] as f64;
            self.edges[i] = clamp255((fx * fx + fy * fy).sqrt() as i64) as u8;
        }
    }

    fn threshold_img(&mut self) {
        let t = self.cfg.threshold as i64;
        for i in 0..self.cfg.pixels() as usize {
            self.edges[i] = if (self.edges[i] as i64) > t { 255 } else { 0 };
        }
    }

    fn dct8x8(&mut self, bx: usize, by: usize) {
        let w = self.cfg.width as usize;
        let base = by * 8 * w + bx * 8;
        for u in 0..8 {
            for vv in 0..8 {
                let mut acc = 0.0f64;
                for x in 0..8 {
                    for y in 0..8 {
                        acc += (self.img[base + x * w + y] as f64 - 128.0)
                            * self.ctab[u * 8 + x]
                            * self.ctab[vv * 8 + y];
                    }
                }
                self.dctbuf[u * 8 + vv] = 0.25 * self.atab[u] * self.atab[vv] * acc;
            }
        }
    }

    fn quantize_block(&mut self, bx: usize, by: usize) {
        let nbx = (self.cfg.width / 8) as usize;
        let bi = (by * nbx + bx) * 64;
        for i in 0..64 {
            let q = self.dctbuf[i] / QTAB[i];
            let qq = if q >= 0.0 {
                (q + 0.5) as i64
            } else {
                (q - 0.5) as i64
            };
            self.qbuf[i] = qq;
            self.qcoef[bi + i] = qq as i16;
        }
    }

    fn zigzag_block(&mut self) {
        for i in 0..64 {
            self.zzbuf[i] = self.qbuf[ZIGZAG[i] as usize];
        }
    }

    fn rle_block(&mut self) {
        let mut run: i64 = 0;
        for i in 0..64 {
            let val = self.zzbuf[i];
            if val == 0 {
                run += 1;
            } else {
                self.rle.push(run as i16);
                self.rle.push(val as i16);
                run = 0;
            }
        }
        self.rle.push(-1);
        self.rle.push(-1);
    }

    fn dequantize_block(&mut self, bx: usize, by: usize) {
        let nbx = (self.cfg.width / 8) as usize;
        let bi = (by * nbx + bx) * 64;
        for i in 0..64 {
            self.dctbuf[i] = self.qcoef[bi + i] as f64 * QTAB[i];
        }
    }

    fn idct8x8(&mut self, bx: usize, by: usize) {
        let w = self.cfg.width as usize;
        let base = by * 8 * w + bx * 8;
        for x in 0..8 {
            for y in 0..8 {
                let mut acc = 0.0f64;
                for u in 0..8 {
                    for vv in 0..8 {
                        acc += self.atab[u]
                            * self.atab[vv]
                            * self.dctbuf[u * 8 + vv]
                            * self.ctab[u * 8 + x]
                            * self.ctab[vv * 8 + y];
                    }
                }
                self.recon[base + x * w + y] = clamp255((0.25 * acc + 128.5) as i64) as u8;
            }
        }
    }

    fn mse(&self) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..self.cfg.pixels() as usize {
            let d = self.img[i] as f64 - self.recon[i] as f64;
            acc += d * d;
        }
        acc / self.cfg.pixels() as i64 as f64
    }

    fn store_pgm(&self, px: &[u8]) -> Vec<u8> {
        crate::pgm::encode_pgm(self.cfg.width, self.cfg.height, px)
    }

    /// Run the whole pipeline on a PGM file.
    pub fn run(mut self, input_pgm: &[u8]) -> RefOutputs {
        self.init_tables();
        self.img_load(input_pgm);
        let (w, h) = (self.cfg.width as usize, self.cfg.height as usize);
        let n = self.cfg.pixels() as usize;

        for _ in 0..self.cfg.blur_passes {
            // split-borrow: conv reads img, writes tmp16
            let (img, tmp) = (&self.img, &mut self.tmp16);
            Self::conv3x3(tmp, img, &KERN_GAUSS, w, h);
            let (img, tmp) = (&mut self.img, &self.tmp16);
            Self::copy_clamp_u8(img, tmp, n);
        }
        {
            let (img, gx) = (&self.img, &mut self.gx);
            Self::conv3x3(gx, img, &KERN_SOBX, w, h);
            let (img, gy) = (&self.img, &mut self.gy);
            Self::conv3x3(gy, img, &KERN_SOBY, w, h);
        }
        self.sobel_mag();
        self.threshold_img();
        let edges_pgm = self.store_pgm(&self.edges.clone());

        let nbx = w / 8;
        let nby = h / 8;
        for by in 0..nby {
            for bx in 0..nbx {
                self.dct8x8(bx, by);
                self.quantize_block(bx, by);
                self.zigzag_block();
                self.rle_block();
            }
        }
        let mut coeffs_bin = Vec::with_capacity(self.rle.len() * 2);
        for v in &self.rle {
            coeffs_bin.extend_from_slice(&v.to_le_bytes());
        }

        for by in 0..nby {
            for bx in 0..nbx {
                self.dequantize_block(bx, by);
                self.idct8x8(bx, by);
            }
        }
        let console = format!("{:.6}\n", self.mse());
        let recon_pgm = self.store_pgm(&self.recon.clone());

        RefOutputs {
            edges_pgm,
            coeffs_bin,
            recon_pgm,
            console,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pgm::{decode_pgm, encode_pgm, synth_image};

    #[test]
    fn pipeline_produces_sane_outputs() {
        let cfg = ImgConfig::tiny();
        let input = encode_pgm(
            cfg.width,
            cfg.height,
            &synth_image(cfg.width, cfg.height, 3),
        );
        let out = RefImg::new(cfg).run(&input);
        let (w, h, edges) = decode_pgm(&out.edges_pgm).unwrap();
        assert_eq!((w, h), (cfg.width, cfg.height));
        assert!(edges.iter().all(|&p| p == 0 || p == 255), "binary edge map");
        assert!(edges.iter().any(|&p| p == 255), "some edges found");
        let (_, _, recon) = decode_pgm(&out.recon_pgm).unwrap();
        assert!(recon.iter().any(|&p| p > 0));
        let mse: f64 = out.console.trim().parse().unwrap();
        assert!(
            mse > 0.0 && mse < 400.0,
            "lossy but recognisable: mse = {mse}"
        );
        assert!(!out.coeffs_bin.is_empty());
    }

    #[test]
    fn dct_idct_without_quantisation_is_near_lossless() {
        let cfg = ImgConfig::tiny();
        let mut r = RefImg::new(cfg);
        r.init_tables();
        r.img = synth_image(cfg.width, cfg.height, 9);
        r.dct8x8(1, 1);
        // Bypass quantisation: decode straight from dctbuf.
        let w = cfg.width as usize;
        let base = 8 * w + 8;
        let dct = r.dctbuf;
        r.dctbuf = dct;
        r.idct8x8(1, 1);
        for x in 0..8 {
            for y in 0..8 {
                let orig = r.img[base + x * w + y] as i64;
                let back = r.recon[base + x * w + y] as i64;
                assert!((orig - back).abs() <= 1, "({x},{y}): {orig} vs {back}");
            }
        }
    }

    #[test]
    fn rle_terminates_every_block() {
        let cfg = ImgConfig::tiny();
        let input = encode_pgm(
            cfg.width,
            cfg.height,
            &synth_image(cfg.width, cfg.height, 3),
        );
        let out = RefImg::new(cfg).run(&input);
        // Count end-of-block markers (-1, -1 pairs).
        let vals: Vec<i16> = out
            .coeffs_bin
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        let eobs = vals
            .chunks_exact(2)
            .filter(|p| p[0] == -1 && p[1] == -1)
            .count();
        assert_eq!(eobs as u32, cfg.blocks());
    }
}
