//! Canonical binary PGM (P5) encoding/decoding and synthetic test images.

use tq_isa::prng::Rng;

/// Encode an 8-bit grayscale image as canonical P5 PGM.
pub fn encode_pgm(width: u32, height: u32, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(pixels.len() as u32, width * height, "whole frames only");
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    out.extend_from_slice(pixels);
    out
}

/// Decode a canonical P5 PGM (as produced by [`encode_pgm`] or the
/// simulated application).
pub fn decode_pgm(bytes: &[u8]) -> Result<(u32, u32, Vec<u8>), String> {
    let header_end = bytes
        .windows(4)
        .position(|w| w == b"255\n")
        .ok_or("missing maxval")?
        + 4;
    let header = std::str::from_utf8(&bytes[..header_end]).map_err(|e| e.to_string())?;
    let mut parts = header.split_ascii_whitespace();
    if parts.next() != Some("P5") {
        return Err("not a P5 PGM".into());
    }
    let width: u32 = parts
        .next()
        .ok_or("missing width")?
        .parse()
        .map_err(|_| "bad width")?;
    let height: u32 = parts
        .next()
        .ok_or("missing height")?
        .parse()
        .map_err(|_| "bad height")?;
    let n = (width * height) as usize;
    if bytes.len() < header_end + n {
        return Err("truncated pixel data".into());
    }
    Ok((width, height, bytes[header_end..header_end + n].to_vec()))
}

/// Deterministic synthetic test image: gradient + circles + noise, so the
/// edge detector and the DCT both have real structure to chew on.
pub fn synth_image(width: u32, height: u32, seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let circles: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.f64_in(0.0, width as f64),
                rng.f64_in(0.0, height as f64),
                rng.f64_in(3.0, width as f64 / 3.0),
                rng.f64_in(60.0, 160.0),
            )
        })
        .collect();
    let mut out = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            let mut v = 40.0 + 100.0 * x as f64 / width as f64;
            for &(cx, cy, r, amp) in &circles {
                let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                if d < r {
                    v += amp * (1.0 - d / r);
                }
            }
            v += rng.f64_in(-4.0, 4.0);
            out.push(v.clamp(0.0, 255.0) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let px = synth_image(32, 24, 7);
        let bytes = encode_pgm(32, 24, &px);
        let (w, h, back) = decode_pgm(&bytes).unwrap();
        assert_eq!((w, h), (32, 24));
        assert_eq!(back, px);
    }

    #[test]
    fn synth_deterministic() {
        assert_eq!(synth_image(16, 16, 1), synth_image(16, 16, 1));
        assert_ne!(synth_image(16, 16, 1), synth_image(16, 16, 2));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_pgm(b"P6\n2 2\n255\n----").is_err());
        assert!(decode_pgm(b"hello").is_err());
        assert!(decode_pgm(b"P5\n9 9\n255\nxx").is_err(), "truncated");
    }
}
