//! # tq-fleet — multi-instance coordination for the profiling service
//!
//! One `tq-profd` daemon's capture cache and worker pool cap out long
//! before "millions of users". This crate is the coordination layer that
//! lets N daemons act as one service without duplicating the expensive
//! asset — the content-addressed capture cache:
//!
//! * [`Ring`] — a deterministic consistent-hash ring over the existing
//!   `JobSpec` content digests. Every capture has exactly one *owning*
//!   node, so the fleet's cache **shards** instead of replicating: a job
//!   routed to its owner hits that node's cache, a job landing elsewhere
//!   is served by *peeking* the owner's capture over the wire rather than
//!   re-recording it. The ring is a pure function of the member list —
//!   every node and every client computes the identical routing table
//!   with no coordinator and no gossip.
//! * [`Roster`] — a static membership table with lightweight health
//!   states, fed by whatever probing the embedding service performs
//!   (`tq-profd` pings peers over its existing JSON-lines protocol).
//!   Consecutive probe failures demote a peer `Alive` → `Suspect` →
//!   `Dead`; any success restores it. The roster also remembers each
//!   peer's last reported load so "redirect to the least-loaded live
//!   peer" is answerable locally.
//!
//! The crate is deliberately **zero-dependency and transport-free**: it
//! decides *where* work should go and *who* looks healthy, never moves
//! bytes itself. `tq-profd::fleet` owns the sockets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ring;
mod roster;

pub use ring::{hash64, Ring};
pub use roster::{Health, PeerState, Roster};
