//! The consistent-hash ring.
//!
//! Classic Karger-style hashing with virtual nodes: each member
//! contributes `replicas` points on a `u64` circle, a key is owned by the
//! first point at or clockwise-after its hash, and losing a member only
//! reassigns the keys that member owned. Everything is deterministic —
//! members are sorted before placement and the hash is a fixed FNV-1a /
//! splitmix64 composition — so every node and client that knows the same
//! member list computes the same owner for every digest, with no
//! coordination traffic at all.

/// A 64-bit hash of arbitrary bytes: FNV-1a for byte mixing, finished
/// with the splitmix64 finalizer for avalanche (FNV alone clusters short
/// ASCII keys like `host:port` strings).
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Default virtual nodes per member. 64 points keep the ownership split
/// of a 2–8 node fleet within a few percent of even (see the balance
/// test) while the whole ring stays a few KiB.
pub const DEFAULT_REPLICAS: usize = 64;

/// A deterministic consistent-hash ring over named nodes.
///
/// Construction sorts and dedups the member list, so two rings built from
/// the same members in any order are identical — the property that lets
/// every fleet member and every client route independently.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Sorted `(point, node index)` pairs — the circle.
    points: Vec<(u64, u32)>,
    /// Sorted, deduped member names.
    nodes: Vec<String>,
}

impl Ring {
    /// Build a ring with `DEFAULT_REPLICAS` virtual nodes per member.
    pub fn new(members: impl IntoIterator<Item = String>) -> Ring {
        Ring::with_replicas(members, DEFAULT_REPLICAS)
    }

    /// Build a ring with an explicit virtual-node count (`replicas` is
    /// clamped to at least 1).
    pub fn with_replicas(members: impl IntoIterator<Item = String>, replicas: usize) -> Ring {
        let mut nodes: Vec<String> = members.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(nodes.len() * replicas);
        for (idx, node) in nodes.iter().enumerate() {
            for r in 0..replicas {
                let mut key = Vec::with_capacity(node.len() + 9);
                key.extend_from_slice(node.as_bytes());
                key.push(b'|');
                key.extend_from_slice(&(r as u64).to_le_bytes());
                points.push((hash64(&key), idx as u32));
            }
        }
        // Tie-break equal points by node index so collisions (vanishingly
        // rare but possible) still order deterministically.
        points.sort_unstable();
        Ring { points, nodes }
    }

    /// The sorted member list.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the ring point owning `key`'s hash.
    fn point_at(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash64(key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        Some(if idx == self.points.len() { 0 } else { idx })
    }

    /// The member owning `key`, or `None` on an empty ring.
    pub fn owner_of(&self, key: &str) -> Option<&str> {
        let at = self.point_at(key)?;
        Some(self.nodes[self.points[at].1 as usize].as_str())
    }

    /// Every member in preference order for `key`: the owner first, then
    /// each remaining member in clockwise ring order. This is the
    /// failover sequence — when the owner is dead, the next ring node is
    /// the deterministic second choice on every client.
    pub fn route(&self, key: &str) -> Vec<&str> {
        let Some(start) = self.point_at(key) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for i in 0..self.points.len() {
            let node = self.points[(start + i) % self.points.len()].1 as usize;
            if !seen[node] {
                seen[node] = true;
                order.push(self.nodes[node].as_str());
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        // Digest-shaped keys: 32 hex chars, deterministic.
        (0..n)
            .map(|i| format!("{:032x}", hash64(&(i as u64).to_le_bytes()) as u128 * 7919))
            .collect()
    }

    #[test]
    fn construction_is_order_independent() {
        let a = Ring::new(["n1".into(), "n2".into(), "n3".into()]);
        let b = Ring::new(["n3".into(), "n1".into(), "n2".into(), "n1".into()]);
        assert_eq!(a.nodes(), b.nodes());
        for k in keys(500) {
            assert_eq!(a.owner_of(&k), b.owner_of(&k));
            assert_eq!(a.route(&k), b.route(&k));
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let members: Vec<String> = (0..3).map(|i| format!("127.0.0.1:747{i}")).collect();
        let ring = Ring::new(members.clone());
        let mut counts = vec![0usize; members.len()];
        let n = 9000;
        for k in keys(n) {
            let owner = ring.owner_of(&k).unwrap();
            counts[members.iter().position(|m| m == owner).unwrap()] += 1;
        }
        for (m, &c) in members.iter().zip(&counts) {
            let share = c as f64 / n as f64;
            assert!(
                (0.15..=0.55).contains(&share),
                "{m} owns {share:.3} of keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removal_only_moves_the_removed_nodes_keys() {
        let three = Ring::new(["a".into(), "b".into(), "c".into()]);
        let two = Ring::new(["a".into(), "c".into()]);
        let mut moved = 0usize;
        let ks = keys(4000);
        for k in &ks {
            let before = three.owner_of(k).unwrap();
            let after = two.owner_of(k).unwrap();
            if before != "b" {
                assert_eq!(before, after, "key {k} moved although its owner survived");
            } else {
                moved += 1;
            }
        }
        assert!(
            moved > 0,
            "node b owned nothing — balance test should fail too"
        );
    }

    #[test]
    fn route_is_owner_first_and_covers_everyone() {
        let ring = Ring::new((0..4).map(|i| format!("node-{i}")));
        for k in keys(200) {
            let route = ring.route(&k);
            assert_eq!(route.len(), 4);
            assert_eq!(route[0], ring.owner_of(&k).unwrap());
            let mut sorted: Vec<_> = route.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "route repeats a node: {route:?}");
        }
    }

    #[test]
    fn empty_and_single_rings_degenerate_sanely() {
        let empty = Ring::new(Vec::<String>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.owner_of("x"), None);
        assert!(empty.route("x").is_empty());

        let one = Ring::new(["solo".into()]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.owner_of("anything"), Some("solo"));
        assert_eq!(one.route("anything"), vec!["solo"]);
    }

    #[test]
    fn hash64_avalanches_short_keys() {
        // Adjacent ports must not produce adjacent hashes (FNV alone
        // does; the splitmix finalizer is what this pins down).
        let a = hash64(b"127.0.0.1:7471");
        let b = hash64(b"127.0.0.1:7472");
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor diffusion: {a:#x} vs {b:#x}");
    }
}
