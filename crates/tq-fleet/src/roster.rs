//! The static-roster membership table.
//!
//! Fleet membership is configured, not discovered: the operator hands
//! every node the same peer list (`tq serve --peers`), and the roster
//! only tracks each configured peer's observed *health* and last
//! reported *load*. Health is a three-state ladder driven by probe
//! outcomes — one failure makes a peer [`Health::Suspect`] (still
//! routable; transient hiccups must not reshuffle work),
//! [`DEAD_AFTER`] consecutive failures make it [`Health::Dead`]
//! (skipped by routing and redirect hints), and any success restores
//! [`Health::Alive`] immediately.

/// Consecutive probe failures after which a peer is considered dead.
pub const DEAD_AFTER: u32 = 3;

/// A peer's observed liveness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Health {
    /// Last probe succeeded (or nothing has failed yet).
    #[default]
    Alive,
    /// At least one recent probe failed; still routable.
    Suspect,
    /// `DEAD_AFTER` consecutive failures; routing skips this peer until
    /// a probe succeeds again.
    Dead,
}

impl Health {
    /// Wire/JSON name.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Alive => "alive",
            Health::Suspect => "suspect",
            Health::Dead => "dead",
        }
    }
}

/// One configured peer's observed state.
#[derive(Clone, Debug)]
pub struct PeerState {
    /// The peer's address (its ring name).
    pub addr: String,
    /// Current health.
    pub health: Health,
    /// Consecutive probe failures since the last success.
    pub consecutive_failures: u32,
    /// Probes attempted against this peer.
    pub probes: u64,
    /// Probe failures in total.
    pub failures: u64,
    /// Queue length the peer last reported (load signal for redirects).
    pub last_queue_len: u64,
    /// Busy workers the peer last reported.
    pub last_busy_workers: u64,
}

impl PeerState {
    fn new(addr: String) -> PeerState {
        PeerState {
            addr,
            health: Health::Alive,
            consecutive_failures: 0,
            probes: 0,
            failures: 0,
            last_queue_len: 0,
            last_busy_workers: 0,
        }
    }

    /// Load metric used by "least-loaded live peer": queued plus running
    /// work the peer last admitted to.
    pub fn load(&self) -> u64 {
        self.last_queue_len + self.last_busy_workers
    }
}

/// The membership table for one node's configured peers (the node itself
/// is not listed — it never probes or redirects to itself).
#[derive(Clone, Debug, Default)]
pub struct Roster {
    peers: Vec<PeerState>,
}

impl Roster {
    /// A roster over the configured peer addresses (sorted and deduped,
    /// mirroring [`crate::Ring`] construction).
    pub fn new(addrs: impl IntoIterator<Item = String>) -> Roster {
        let mut addrs: Vec<String> = addrs.into_iter().collect();
        addrs.sort_unstable();
        addrs.dedup();
        Roster {
            peers: addrs.into_iter().map(PeerState::new).collect(),
        }
    }

    /// All peers, in sorted-address order.
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// Number of configured peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no peers are configured.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    fn find_mut(&mut self, addr: &str) -> Option<&mut PeerState> {
        self.peers.iter_mut().find(|p| p.addr == addr)
    }

    /// The peer's current health, if it is on the roster.
    pub fn health(&self, addr: &str) -> Option<Health> {
        self.peers.iter().find(|p| p.addr == addr).map(|p| p.health)
    }

    /// True unless the peer is known-dead. Unknown addresses are live:
    /// the roster never vetoes routing to a node it is not tracking.
    pub fn is_live(&self, addr: &str) -> bool {
        self.health(addr) != Some(Health::Dead)
    }

    /// Record a successful probe and the load the peer reported. Returns
    /// the `(old, new)` health pair when the peer's health changed (e.g.
    /// a recovery from `Suspect` or `Dead` back to `Alive`), `None` when
    /// the health is unchanged or the address is not on the roster —
    /// callers use the transition to emit health-change events without
    /// the roster itself taking a logging dependency.
    pub fn record_success(
        &mut self,
        addr: &str,
        queue_len: u64,
        busy_workers: u64,
    ) -> Option<(Health, Health)> {
        let p = self.find_mut(addr)?;
        let old = p.health;
        p.probes += 1;
        p.consecutive_failures = 0;
        p.health = Health::Alive;
        p.last_queue_len = queue_len;
        p.last_busy_workers = busy_workers;
        (old != p.health).then_some((old, p.health))
    }

    /// Record a failed probe (or an observed transport failure from a
    /// routed request — both are evidence the peer is unreachable).
    /// Returns the `(old, new)` health pair on a transition (see
    /// [`Roster::record_success`]).
    pub fn record_failure(&mut self, addr: &str) -> Option<(Health, Health)> {
        let p = self.find_mut(addr)?;
        let old = p.health;
        p.probes += 1;
        p.failures += 1;
        p.consecutive_failures += 1;
        p.health = if p.consecutive_failures >= DEAD_AFTER {
            Health::Dead
        } else {
            Health::Suspect
        };
        (old != p.health).then_some((old, p.health))
    }

    /// Mark a peer dead immediately (used when a routed request finds the
    /// peer gone — waiting out `DEAD_AFTER` probe rounds would keep
    /// routing work at a corpse). Returns the `(old, new)` health pair on
    /// a transition (see [`Roster::record_success`]).
    pub fn mark_dead(&mut self, addr: &str) -> Option<(Health, Health)> {
        let p = self.find_mut(addr)?;
        let old = p.health;
        p.failures += 1;
        p.consecutive_failures = p.consecutive_failures.max(DEAD_AFTER);
        p.health = Health::Dead;
        (old != p.health).then_some((old, p.health))
    }

    /// Number of peers currently not dead.
    pub fn live_count(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| p.health != Health::Dead)
            .count()
    }

    /// The live peer with the smallest last-reported load — the redirect
    /// hint a `busy` node attaches for shed clients. Ties break on the
    /// sorted address order, so every node hints deterministically.
    pub fn least_loaded_live(&self) -> Option<&PeerState> {
        self.peers
            .iter()
            .filter(|p| p.health != Health::Dead)
            .min_by_key(|p| p.load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_ladder_demotes_and_recovers() {
        let mut r = Roster::new(["b".into(), "a".into(), "b".into()]);
        assert_eq!(r.len(), 2, "sorted + deduped");
        assert_eq!(r.health("a"), Some(Health::Alive));

        assert_eq!(
            r.record_failure("a"),
            Some((Health::Alive, Health::Suspect))
        );
        assert_eq!(r.health("a"), Some(Health::Suspect));
        assert!(r.is_live("a"), "suspect peers are still routable");
        for i in 1..DEAD_AFTER {
            let transition = r.record_failure("a");
            if i == DEAD_AFTER - 1 {
                assert_eq!(transition, Some((Health::Suspect, Health::Dead)));
            } else {
                assert_eq!(transition, None, "suspect→suspect is not a transition");
            }
        }
        assert_eq!(r.health("a"), Some(Health::Dead));
        assert!(!r.is_live("a"));

        assert_eq!(
            r.record_success("a", 0, 0),
            Some((Health::Dead, Health::Alive))
        );
        assert_eq!(r.health("a"), Some(Health::Alive), "one success restores");
        assert!(r.is_live("a"));
        assert_eq!(r.record_success("a", 0, 0), None, "alive→alive is quiet");
    }

    #[test]
    fn mark_dead_is_immediate() {
        let mut r = Roster::new(["p".into()]);
        assert_eq!(r.mark_dead("p"), Some((Health::Alive, Health::Dead)));
        assert_eq!(r.health("p"), Some(Health::Dead));
        assert_eq!(r.live_count(), 0);
        assert_eq!(r.mark_dead("p"), None, "already dead: no transition");
    }

    #[test]
    fn least_loaded_live_skips_the_dead() {
        let mut r = Roster::new(["x".into(), "y".into(), "z".into()]);
        r.record_success("x", 9, 1);
        r.record_success("y", 1, 1);
        r.record_success("z", 0, 0);
        assert_eq!(r.least_loaded_live().unwrap().addr, "z");
        r.mark_dead("z");
        assert_eq!(r.least_loaded_live().unwrap().addr, "y");
        r.mark_dead("y");
        r.mark_dead("x");
        assert!(r.least_loaded_live().is_none());
    }

    #[test]
    fn unknown_addresses_are_live_but_untracked() {
        let mut r = Roster::new(["known".into()]);
        assert!(r.is_live("unknown"));
        assert_eq!(r.record_failure("unknown"), None); // no-op, no panic
        assert_eq!(r.health("unknown"), None);
    }
}
