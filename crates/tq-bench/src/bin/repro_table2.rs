//! **Table II** — data produced/consumed by the kernels (QUAD).
//!
//! Two QUAD runs — stack-area accesses excluded, then included — produce
//! per kernel: IN bytes, IN UnMA, OUT bytes, OUT UnMA. The QDU graph the
//! paper could not print is exported as DOT.
//!
//! Shape expectations: `AudioIo_setFrames` writes ≈ as many *unique*
//! addresses as bytes (interleaved copies to fresh locations) — the
//! paper's critical bottleneck observation; `zeroRealVec`/`zeroCplxVec`
//! stack-included/excluded IN ratios ≫ 100; `wav_store` reads a huge
//! number of distinct locations but exposes only a few hundred output
//! addresses; `fft1d` has a stack ratio of ~5–10 with identical UnMA in
//! both runs (in-place computation).

use tq_bench::{banner, save, scale_app};
use tq_quad::{qdu_graph, table2, QuadOptions, QuadProfile, QuadTool};

fn run_quad(app: &tq_wfs::WfsApp, include_stack: bool) -> QuadProfile {
    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(QuadTool::new(QuadOptions {
        include_stack,
        ..Default::default()
    })));
    vm.run(None).expect("wfs runs under QUAD");
    vm.detach_tool::<QuadTool>(h).unwrap().into_profile()
}

fn main() {
    banner("Table II: QUAD producer/consumer summary for hArtes wfs");
    let app = scale_app();

    println!("run 1/2: stack area accesses excluded…");
    let excl = run_quad(&app, false);
    println!("run 2/2: stack area accesses included…");
    let incl = run_quad(&app, true);

    let table = table2(&excl, &incl);
    println!("{}", table.render());

    // The headline observations, verified numerically.
    let sf = incl.row("AudioIo_setFrames").expect("kernel profiled");
    let sf_e = excl.row("AudioIo_setFrames").expect("kernel profiled");
    println!(
        "AudioIo_setFrames: OUT = {} vs OUT UnMA = {} (excl) → every write hits a fresh address: {}",
        sf_e.out_bytes,
        sf_e.out_unma,
        if sf_e.out_bytes == sf_e.out_unma { "YES (paper: yes)" } else { "no" }
    );
    for k in ["zeroRealVec", "zeroCplxVec"] {
        let i = incl.row(k).unwrap();
        let e = excl.row(k).unwrap();
        let ratio = i.in_bytes as f64 / e.in_bytes.max(1) as f64;
        println!("{k}: IN stack-incl/excl ratio = {ratio:.0} (paper: > 300 / > 750)");
    }
    let ws = incl.row("wav_store").unwrap();
    println!(
        "wav_store: IN UnMA = {} vs OUT UnMA = {} (paper: 64.9 M vs 1 115)",
        ws.in_unma, ws.out_unma
    );
    let _ = sf;

    save("table2_quad.csv", &table.to_csv());
    save("qdu_graph.dot", &qdu_graph(&incl, 1024).render());
}
