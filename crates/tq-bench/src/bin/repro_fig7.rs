//! **Figure 7** — memory bandwidth usage of the last-ten kernels, *write
//! accesses excluding the stack area*, finer time slices, second half cut.
//!
//! The paper sets the interval to 25 × 10⁶ instructions — 255 slices over
//! the run — and cuts off the second half "as no kernel but wav_store is
//! active during this period". Expectations: the finer interval resolves
//! per-chunk activity bursts the coarse Fig. 6 blurred; write-excluding
//! the stack leaves the genuinely global producers visible.

use tq_bench::{banner, save, scale_app};
use tq_tquad::{figure_chart, Measure, TquadOptions, TquadTool};

/// The paper's Fig. 7 kernel set (the "last ten" of its Table I listing).
const LAST10: [&str; 10] = [
    "wav_load",
    "Filter_process_pre_",
    "zeroCplxVec",
    "r2c",
    "c2r",
    "AudioIo_getFrames",
    "ffw",
    "vsmult2d",
    "calculateGainPQ",
    "PrimarySource_deriveTP",
];

fn main() {
    banner("Figure 7: bandwidth over time, writes excl. stack, 255 fine slices, first half");
    let app = scale_app();
    let (_, bare) = app.run_bare().expect("bare run for sizing");
    let interval = (bare.icount / 255).max(1);
    println!("slice interval = {interval} instructions → 255 slices (paper: 25e6 → 255)\n");

    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(interval),
    )));
    vm.run(None).expect("wfs runs under tQUAD");
    let profile = vm.detach_tool::<TquadTool>(h).unwrap().into_profile();

    // Cut the tail where only wav_store remains active, as the paper does
    // ("the second half of the total 255 time slices is cut off, as no
    // kernel but wav_store is active during this period").
    let half = profile
        .kernel("wav_store")
        .and_then(|k| k.series.span(true))
        .map(|(first, _)| first + 1)
        .unwrap_or(profile.n_slices() / 2);
    let chart = figure_chart(&profile, &LAST10, Measure::WriteExcl, 128, Some(half));
    println!("{}", chart.render());

    // Verify the cut is justified: past it, only wav_store (plus the entry
    // routine's bookkeeping) writes.
    let mut active_late: Vec<&str> = profile
        .kernels
        .iter()
        .filter(|k| {
            k.series
                .entries()
                .iter()
                .any(|e| e.slice > half && e.w_incl > 0)
        })
        .map(|k| k.name.as_str())
        .collect();
    active_late.sort_unstable();
    println!(
        "kernels writing after slice {half}: {:?} (paper: wav_store only)",
        active_late
    );

    let mut tsv = String::from("slice");
    for k in LAST10 {
        tsv.push('\t');
        tsv.push_str(k);
    }
    tsv.push('\n');
    for slice in 0..half {
        tsv.push_str(&slice.to_string());
        for k in LAST10 {
            let val = profile
                .kernel(k)
                .map(|kp| kp.series.dense(half, |e| e.w_excl)[slice as usize])
                .unwrap_or(0.0)
                / interval as f64;
            tsv.push_str(&format!("\t{val:.6}"));
        }
        tsv.push('\n');
    }
    save("fig7_write_excl_series.tsv", &tsv);
}
