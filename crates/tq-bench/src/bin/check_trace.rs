//! `check_trace FILE [SPAN...]` — validate a Chrome trace-event document
//! produced by `tq --trace-out` with the workspace's own strict JSON
//! parser, then assert every SPAN name given on the command line appears
//! as a complete ("X") event. Used by `scripts/verify.sh` as the obs
//! smoke; exits non-zero with a reason on any violation.

use std::process::ExitCode;
use tq_report::Json;

fn check(path: &str, want: &[String]) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut names = Vec::new();
    let mut last_ts = f64::MIN;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing `ph`"))?;
        if ph != "X" {
            continue;
        }
        for field in ["name", "cat"] {
            if e.get(field).and_then(Json::as_str).is_none() {
                return Err(format!("event {i}: missing `{field}`"));
            }
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing numeric `ts`"))?;
        if ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
        }
        last_ts = ts;
        names.push(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    for w in want {
        if !names.iter().any(|n| n == w) {
            return Err(format!("no `{w}` span (saw: {names:?})"));
        }
    }
    println!(
        "{path}: OK ({} complete event(s){})",
        names.len(),
        if want.is_empty() {
            String::new()
        } else {
            format!(", all of {want:?} present")
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((path, want)) = args.split_first() else {
        eprintln!("usage: check_trace FILE [SPAN...]");
        return ExitCode::FAILURE;
    };
    match check(path, want) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("check_trace: {e}");
            ExitCode::FAILURE
        }
    }
}
