//! **Table I** — flat profile for the hArtes wfs application.
//!
//! The paper obtains it with gprof: IP sampling at 10 ms plus `mcount`
//! call counting, averaged over 50 runs. The reproduction samples virtual
//! time (the VM is deterministic, so one run suffices) and prints the same
//! columns: %time, self seconds, calls, self ms/call, total ms/call.
//!
//! Shape expectations from the paper: `wav_store` and `fft1d` on top with
//! ~60 % of the time between them; `DelayLine_processChunk` next;
//! `bitrev`/`zeroRealVec` mid-table with huge call counts;
//! `AudioIo_setFrames` at a deceptively low ~4–7 % (the point of the case
//! study); `wav_load` called once at well under 1 %.

use tq_bench::{banner, save, scale_app};
use tq_gprof::{GprofOptions, GprofTool, TimeModel};

fn main() {
    banner("Table I: gprof-style flat profile of hArtes wfs");
    let app = scale_app();
    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
        sample_interval: 5_000,
        time_model: TimeModel::q9550(),
        track_libs: false,
    })));
    let exit = vm.run(None).expect("wfs runs");
    let profile = vm.detach_tool::<GprofTool>(h).unwrap().into_profile();

    let table = profile.table(&format!(
        "FLAT PROFILE ({} instructions, {} samples at every {} instructions)",
        exit.icount, profile.total_samples, profile.sample_interval
    ));
    println!("{}", table.render());

    let top: Vec<&str> = profile
        .ranked()
        .iter()
        .take(2)
        .map(|r| r.name.as_str())
        .collect();
    let top2_pct: f64 = profile
        .ranked()
        .iter()
        .take(2)
        .map(|r| profile.pct_time(r))
        .sum();
    println!(
        "top-2 kernels: {} ({:.1} % of total; paper: wav_store+fft1d ≈ 60 %)",
        top.join(" + "),
        top2_pct
    );

    save("table1_flat_profile.csv", &table.to_csv());

    // gprof's call-graph section, for the record (heaviest 15 edges).
    let cg = profile.call_graph_table("CALL GRAPH (top edges)");
    let rendered: String = cg.render().lines().take(20).collect::<Vec<_>>().join("\n");
    println!("\n{rendered}\n…");
    save("table1_call_graph.csv", &cg.to_csv());
}
