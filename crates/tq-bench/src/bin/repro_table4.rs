//! **Table IV** — phases in the execution path of the hArtes wfs.
//!
//! tQUAD at a fine slice interval (the paper sets 5000 instructions "in
//! order to have accurate estimations"); phase identification over the
//! per-kernel activity spans; per kernel and phase: activity span, average
//! read/write bandwidth (bytes/instruction) with the stack included and
//! excluded, peak R+W bandwidth, and the phase's aggregate peak.
//!
//! Shape expectations: **five phases** in the order initialization
//! (`ffw`, `ldint`) → wave load (`wav_load`) → wave propagation
//! (`vsmult2d`, `calculateGainPQ`, `PrimarySource_deriveTP`) → WFS main
//! processing (*fourteen* kernels) → wave save (`wav_store` alone);
//! `AudioIo_setFrames` peak bandwidth an order of magnitude above every
//! other kernel (> 50 B/instr in the paper, ~3 B/instr for the rest);
//! `zeroRealVec`/`zeroCplxVec` activity spans collapsing when stack
//! accesses are excluded.

use tq_bench::{banner, save, scale_app};
use tq_tquad::{phase_table, profile_json, PhaseDetector, TquadOptions, TquadTool};

fn main() {
    banner("Table IV: phases in the execution path of hArtes wfs");
    let app = scale_app();

    // The paper-equivalent fine interval: 5000 instructions on their
    // 6.4 G-instruction run, scaled to ours (≈ 1.27 M slices either way).
    let (_, bare) = app.run_bare().expect("bare run for sizing");
    let interval = ((bare.icount as f64 * 5000.0 / 6.4e9) as u64).max(16);
    println!(
        "slice interval = {interval} instructions ≈ paper's 5000 on 6.4e9 ({} slices)\n",
        bare.icount / interval
    );

    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(interval),
    )));
    vm.run(None).expect("wfs runs under tQUAD");
    let profile = vm.detach_tool::<TquadTool>(h).unwrap().into_profile();

    let phases = PhaseDetector::default().detect(&profile);
    println!("{} phases identified (paper: 5)\n", phases.len());

    let table = phase_table(&profile, &phases);
    println!("{}", table.render());

    // Peak-bandwidth outlier check.
    let mut peaks: Vec<(String, f64)> = profile
        .active_kernels()
        .iter()
        .filter(|k| k.name != "main")
        .filter_map(|k| {
            profile
                .stats(k, true)
                .map(|s| (k.name.clone(), s.max_total_bpi))
        })
        .collect();
    peaks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    if peaks.len() >= 2 {
        println!(
            "peak bandwidth outlier: {} at {:.2} B/instr vs runner-up {} at {:.2} B/instr \
             (paper: AudioIo_setFrames > 50 vs ≤ 3 for all others)",
            peaks[0].0, peaks[0].1, peaks[1].0, peaks[1].1
        );
    }

    // Activity-span collapse for the zeroing kernels.
    for name in ["zeroRealVec", "zeroCplxVec"] {
        if let Some(k) = profile.kernel(name) {
            let incl = profile.stats(k, true).map(|s| s.activity_span).unwrap_or(0);
            let excl = profile
                .stats(k, false)
                .map(|s| s.activity_span)
                .unwrap_or(0);
            println!(
                "{name}: activity span {incl} (stack incl) → {excl} (excl), factor {:.1} \
                 (paper: 2 and 8)",
                incl as f64 / excl.max(1) as f64
            );
        }
    }

    save("table4_phases.csv", &table.to_csv());
    // Machine-readable profile (per-kernel slice series) for downstream
    // analysis.
    save("table4_profile.json", &profile_json(&profile).render());
}
