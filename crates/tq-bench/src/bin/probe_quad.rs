//! Timing probe for QUAD runs.

use tq_quad::{QuadOptions, QuadTool};
use tq_wfs::{WfsApp, WfsConfig};

fn main() {
    let cfg = match std::env::args().nth(1).as_deref() {
        Some("small") => WfsConfig::small(),
        _ => WfsConfig::paper_scaled(),
    };
    let app = WfsApp::build(cfg);
    for include_stack in [false, true] {
        let mut vm = app.make_vm();
        let h = vm.attach_tool(Box::new(QuadTool::new(QuadOptions {
            include_stack,
            ..Default::default()
        })));
        let t0 = std::time::Instant::now();
        let exit = vm.run(None).unwrap();
        let q = vm.detach_tool::<QuadTool>(h).unwrap().into_profile();
        println!(
            "stack={include_stack}: {:.1} M instr in {:.2?}",
            exit.icount as f64 / 1e6,
            t0.elapsed()
        );
        for name in [
            "wav_store",
            "fft1d",
            "AudioIo_setFrames",
            "zeroRealVec",
            "zeroCplxVec",
            "bitrev",
        ] {
            let r = q.row(name).unwrap();
            println!(
                "  {name:24} IN {:>12} UnMA {:>10}  OUT {:>12} UnMA {:>10}",
                r.in_bytes, r.in_unma, r.out_bytes, r.out_unma
            );
        }
    }
}
