//! **§V.A** — instrumentation overhead.
//!
//! "tQUAD instruments every load, store, call and return instruction,
//! which will result in a slowdown of the execution of the hArtes wfs
//! ranging from 37.2 X to 68.95 X compared to native execution. The amount
//! of introduced overhead is strongly dependent on the time slice and the
//! option to include/exclude stack area accesses."
//!
//! The reproduction measures wall-clock slowdown of the instrumented VM
//! against the bare VM across the slice-interval range and both library
//! policies, plus the other tools for context, and the no-code-cache
//! ablation (what instrumentation costs without Pin's decode-once model).
//! Absolute factors differ from the paper's (their baseline is native x86,
//! ours an interpreter — see EXPERIMENTS.md); the *shape* — overhead grows
//! as slices shrink, analysis volume dominates — is the claim under test.

use std::time::Instant;
use tq_bench::{banner, save, scale_app};
use tq_gprof::{GprofOptions, GprofTool};
use tq_quad::{QuadOptions, QuadTool};
use tq_report::{f, Align, Table};
use tq_tquad::{LibPolicy, TquadOptions, TquadTool};
use tq_wfs::WfsApp;

fn time_bare(app: &WfsApp) -> (f64, u64) {
    let mut vm = app.make_vm();
    let t0 = Instant::now();
    let exit = vm.run(None).expect("bare run");
    (t0.elapsed().as_secs_f64(), exit.icount)
}

fn time_tquad(app: &WfsApp, interval: u64, policy: LibPolicy, cache: bool) -> f64 {
    let mut vm = app.make_vm();
    vm.set_cache_enabled(cache);
    vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default()
            .with_interval(interval)
            .with_lib_policy(policy),
    )));
    let t0 = Instant::now();
    vm.run(None).expect("instrumented run");
    t0.elapsed().as_secs_f64()
}

fn main() {
    banner("§V.A: instrumentation slowdown vs native (bare-VM) execution");
    let app = scale_app();

    // Median-of-3 bare baseline.
    let mut bares: Vec<f64> = (0..3).map(|_| time_bare(&app).0).collect();
    bares.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let bare = bares[1];
    let icount = time_bare(&app).1;
    println!("bare VM: {bare:.3} s for {icount} instructions\n");

    // Paper-equivalent slice intervals: 5000 … 1e8 on 6.4 G instructions,
    // scaled to our run length.
    let scale = icount as f64 / 6.4e9;
    let intervals: Vec<u64> = [5_000f64, 100_000.0, 25e6, 1e8]
        .iter()
        .map(|p| ((p * scale) as u64).max(16))
        .collect();

    let mut rows: Vec<(String, f64)> = Vec::new();

    // tQUAD across intervals × lib policies. Timed SERIALLY: concurrent
    // VMs would contend for cores and inflate every wall-clock number.
    for &interval in &intervals {
        for policy in [LibPolicy::AttributeToCaller, LibPolicy::Drop] {
            let t = time_tquad(&app, interval, policy, true);
            let label = format!(
                "tquad interval={interval}{}",
                match policy {
                    LibPolicy::Drop => " (libs excluded)",
                    _ => "",
                }
            );
            rows.push((label, t));
        }
    }

    // Other tools for context.
    {
        let mut vm = app.make_vm();
        vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
            sample_interval: 5_000,
            ..Default::default()
        })));
        let t0 = Instant::now();
        vm.run(None).expect("gprof run");
        rows.push(("gprof-sim".into(), t0.elapsed().as_secs_f64()));
    }
    {
        let mut vm = app.make_vm();
        vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
        let t0 = Instant::now();
        vm.run(None).expect("quad run");
        rows.push(("quad (stack incl)".into(), t0.elapsed().as_secs_f64()));
    }

    // Ablation: instrumentation without a code cache (re-decode and
    // re-instrument every block execution).
    let no_cache = time_tquad(&app, intervals[1], LibPolicy::AttributeToCaller, false);
    rows.push((
        format!("tquad interval={} WITHOUT code cache", intervals[1]),
        no_cache,
    ));

    let mut table = Table::new(format!(
        "INSTRUMENTATION SLOWDOWN (baseline: bare VM, {bare:.3} s; paper reports 37.2–68.95× vs native x86)"
    ))
    .col("configuration", Align::Left)
    .col("wall (s)", Align::Right)
    .col("slowdown", Align::Right);
    for (label, t) in &rows {
        table.row(vec![label.clone(), f(*t, 3), format!("{:.2}x", t / bare)]);
    }
    println!("{}", table.render());

    let finest = rows.first().map(|(_, t)| t / bare).unwrap_or(0.0);
    let coarsest = rows
        .iter()
        .filter(|(l, _)| l.starts_with("tquad") && !l.contains("WITHOUT"))
        .map(|(_, t)| t / bare)
        .fold(f64::INFINITY, f64::min);
    println!(
        "tquad slowdown range: {coarsest:.2}× … {finest:.2}× \
         (shape check: finer slices / more analysis → more overhead)"
    );

    save("overhead.csv", &table.to_csv());
}
