//! **Table III** — flat profile of the QUAD-instrumented hArtes wfs.
//!
//! In the paper, the application is run *under* QUAD and profiled with
//! gprof on the host; the analysis overhead is charged to whichever kernel
//! triggers it, and since QUAD's instrumentation stub discards stack
//! accesses cheaply but runs a full tracing routine for every non-local
//! access, kernels dominated by global traffic rise in the ranking
//! (`AudioIo_setFrames`: 4 % → 11 %, ↑↑) while stack-local kernels sink
//! (`bitrev`: 8.19 % → 0.42 %, ↓↓).
//!
//! The reproduction runs gprof and QUAD together in one VM; QUAD reports
//! per-kernel checked/traced access counts, which are converted to virtual
//! cost (α per checked access — the discarding stub — plus β per traced
//! access — the tracing routine) and injected into the flat profile.

use tq_bench::{banner, save, scale_app};
use tq_gprof::{comparison_table, GprofOptions, GprofTool};
use tq_quad::{QuadOptions, QuadTool};

/// Instruction-equivalents of QUAD's instrumentation stub per access.
const ALPHA: u64 = 6;
/// Instruction-equivalents of QUAD's tracing analysis per non-stack access.
const BETA: u64 = 60;
/// Instruction-equivalents per first-time written address (shadow-map
/// insertion — the expensive path).
const GAMMA: u64 = 150;

fn main() {
    banner("Table III: flat profile of the QUAD-instrumented hArtes wfs");
    let app = scale_app();
    let mut vm = app.make_vm();
    let g = vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
        sample_interval: 5_000,
        ..Default::default()
    })));
    let q = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    vm.run(None).expect("wfs runs");

    let baseline = vm.detach_tool::<GprofTool>(g).unwrap().into_profile();
    let quad = vm.detach_tool::<QuadTool>(q).unwrap().into_profile();

    let mut instrumented = baseline.clone();
    for (rtn, cost) in quad.cost_model(ALPHA, BETA, GAMMA) {
        instrumented.add_cost(rtn, cost);
    }

    let table = comparison_table(
        &baseline,
        &instrumented,
        &format!(
            "QUAD-INSTRUMENTED FLAT PROFILE (α = {ALPHA}/checked, β = {BETA}/traced, γ = {GAMMA}/fresh written address)"
        ),
    );
    println!("{}", table.render());

    // Verify the paper's two headline trend observations.
    let pct =
        |p: &tq_gprof::FlatProfile, name: &str| p.row(name).map(|r| p.pct_time(r)).unwrap_or(0.0);
    println!(
        "AudioIo_setFrames: {:.2} % → {:.2} % (paper: 4.01 → 11.19, ^^)",
        pct(&baseline, "AudioIo_setFrames"),
        pct(&instrumented, "AudioIo_setFrames")
    );
    println!(
        "bitrev:            {:.2} % → {:.2} % (paper: 8.19 → 0.42, vv)",
        pct(&baseline, "bitrev"),
        pct(&instrumented, "bitrev")
    );
    println!(
        "wav_store/fft1d keep ranks 1–2 (paper: <->): instrumented ranks = {:?}",
        instrumented
            .ranked()
            .iter()
            .take(3)
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
    );

    save("table3_instrumented_profile.csv", &table.to_csv());
}
