//! **Generality check** — the paper states tQUAD "was tested on a set of
//! real applications" but reports only the wfs case study. This binary
//! runs the full toolchain on the second application (image pipeline:
//! blur → Sobel edges → threshold; 8×8 DCT encode → decode → verify) and
//! prints its flat profile and phase structure, demonstrating that nothing
//! in the reproduction is wfs-specific.

use tq_bench::{banner, save};
use tq_gprof::{GprofOptions, GprofTool};
use tq_imgproc::{ImgApp, ImgConfig};
use tq_quad::{cluster_by_communication, ClusterOptions, QuadOptions, QuadTool};
use tq_tquad::{phase_table, PhaseDetector, TquadOptions, TquadTool};

fn main() {
    banner("Second application: edge detection + DCT compression pipeline");
    let cfg = match std::env::var("TQ_SCALE").as_deref() {
        Ok("tiny") => ImgConfig::tiny(),
        Ok("small") => ImgConfig::small(),
        _ => ImgConfig::scaled(),
    };
    println!(
        "image {}×{}, {} blur passes, {} DCT blocks\n",
        cfg.width,
        cfg.height,
        cfg.blur_passes,
        cfg.blocks()
    );
    let app = ImgApp::build(cfg);

    let mut vm = app.make_vm();
    let g = vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
        sample_interval: 5_000,
        ..Default::default()
    })));
    let q = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2_000),
    )));
    let exit = vm.run(None).expect("pipeline runs");
    println!(
        "{} instructions; MSE = {}",
        exit.icount,
        vm.console().trim()
    );

    let gprof = vm.detach_tool::<GprofTool>(g).unwrap().into_profile();
    println!("\n{}", gprof.table("FLAT PROFILE").render());

    let quad = vm.detach_tool::<QuadTool>(q).unwrap().into_profile();
    let clustering = cluster_by_communication(
        &quad,
        ClusterOptions {
            max_cluster_size: 5,
            min_edge_bytes: 1024,
        },
    );
    println!(
        "task clustering: {} clusters, {:.1} % of traffic intra-cluster",
        clustering.clusters.len(),
        100.0 * clustering.internal_fraction()
    );

    let profile = vm.detach_tool::<TquadTool>(t).unwrap().into_profile();
    let phases = PhaseDetector::default().detect_excluding(&profile, &["main", "img_store"]);
    println!(
        "\n{} phases (expected: load, filter, sobel, threshold, encode, decode, verify)\n",
        phases.len()
    );
    let table = phase_table(&profile, &phases);
    println!("{}", table.render());
    save("second_app_phases.csv", &table.to_csv());
}
