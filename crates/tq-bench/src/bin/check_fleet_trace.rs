//! `check_fleet_trace FILE [MIN_PIDS]` — validate a *merged* fleet trace
//! written by `tq fleet-trace` with the workspace's own strict JSON
//! parser, then assert the distributed-tracing contract: some
//! `args.job_id` appears on complete ("X") events under at least
//! MIN_PIDS (default 2) distinct `pid` tracks — i.e. one routed job's
//! hops on different fleet members were actually correlated into one
//! trace. Used by `scripts/verify.sh` as the fleet telemetry smoke;
//! exits non-zero with a reason on any violation.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;
use tq_report::Json;

fn check(path: &str, min_pids: u64) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;

    // Every peer contributes a named process track in a merged trace.
    let mut process_pids = BTreeSet::new();
    // job_id -> set of pids its spans appear under.
    let mut job_pids: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let pid = e
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or(format!("event {i}: missing numeric `pid`"))?;
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                if e.get("name").and_then(Json::as_str) == Some("process_name") {
                    process_pids.insert(pid);
                }
            }
            Some("X") => {
                if let Some(job_id) = e
                    .get("args")
                    .and_then(|a| a.get("job_id"))
                    .and_then(Json::as_str)
                {
                    if job_id.len() != 16 || !job_id.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(format!("event {i}: malformed job_id `{job_id}`"));
                    }
                    job_pids.entry(job_id.to_string()).or_default().insert(pid);
                }
            }
            Some(_) => {}
            None => return Err(format!("event {i}: missing `ph`")),
        }
    }

    if (process_pids.len() as u64) < min_pids {
        return Err(format!(
            "only {} named process track(s), need {min_pids} (peers missing from the merge)",
            process_pids.len()
        ));
    }
    let best = job_pids
        .iter()
        .max_by_key(|(_, pids)| pids.len())
        .ok_or("no span carries an args.job_id (nothing was tagged)")?;
    if (best.1.len() as u64) < min_pids {
        return Err(format!(
            "no job_id spans {min_pids} peers; best is {} on pids {:?} \
             (hops were not correlated)",
            best.0, best.1
        ));
    }
    println!(
        "{path}: OK ({} tagged job(s); job {} spans pids {:?})",
        job_pids.len(),
        best.0,
        best.1
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: check_fleet_trace FILE [MIN_PIDS]");
        return ExitCode::FAILURE;
    };
    let min_pids = match args.get(1).map(|s| s.parse::<u64>()) {
        None => 2,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("usage: check_fleet_trace FILE [MIN_PIDS]");
            return ExitCode::FAILURE;
        }
    };
    match check(path, min_pids) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("check_fleet_trace: {e}");
            ExitCode::FAILURE
        }
    }
}
