//! **§V.B** — the time-slice interval sweep.
//!
//! "Time slice interval is a key parameter which adjusts the detailing
//! degree of the extracted memory bandwidth usage information. With large
//! time slices, we lose some information and a coarser view … is
//! obtained." The paper demonstrates this by contrasting Fig. 6 (10⁸, 64
//! slices) with Fig. 7 (25 × 10⁶, 255 slices) and by using 5000 for the
//! Table IV statistics.
//!
//! The sweep quantifies the information loss: for each interval, the
//! measured *peak* bandwidth of selected kernels (coarse slices average
//! bursts away, so measured peaks fall), the number of detected phases,
//! and the per-kernel activity spans.

use tq_bench::{banner, save, scale_app};
use tq_report::{f, Align, Table};
use tq_tquad::{PhaseDetector, TquadOptions, TquadProfile, TquadTool};
use tq_wfs::WfsApp;

const WATCHED: [&str; 3] = ["AudioIo_setFrames", "fft1d", "wav_store"];

fn run_with_interval(app: &WfsApp, interval: u64) -> TquadProfile {
    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(interval),
    )));
    vm.run(None).expect("instrumented run");
    vm.detach_tool::<TquadTool>(h).unwrap().into_profile()
}

fn main() {
    banner("§V.B: time-slice interval sweep (information loss vs granularity)");
    let app = scale_app();
    let (_, bare) = app.run_bare().expect("bare run for sizing");
    let icount = bare.icount;

    // Paper-equivalent intervals from 5000 to 1e8 (on 6.4 G instructions),
    // scaled to this run.
    let scale = icount as f64 / 6.4e9;
    let paper_intervals = [5e3, 5e4, 5e5, 5e6, 25e6, 1e8];
    let intervals: Vec<u64> = paper_intervals
        .iter()
        .map(|p| ((p * scale) as u64).max(16))
        .collect();

    // One instrumented run per interval, in parallel on std threads.
    let app_ref = &app;
    let profiles: Vec<(u64, TquadProfile)> = std::thread::scope(|scope| {
        let handles: Vec<_> = intervals
            .iter()
            .map(|&i| scope.spawn(move || (i, run_with_interval(app_ref, i))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    });

    let mut table = Table::new("SLICE-INTERVAL SWEEP")
        .col("paper interval", Align::Right)
        .col("our interval", Align::Right)
        .col("slices", Align::Right)
        .col("phases", Align::Right);
    let mut cols: Vec<String> = Vec::new();
    for k in WATCHED {
        cols.push(format!("peak {k} (B/instr)"));
    }
    for c in &cols {
        table = table.col(c.clone(), Align::Right);
    }

    for ((paper, &ours), (_, profile)) in paper_intervals.iter().zip(&intervals).zip(&profiles) {
        let phases = PhaseDetector::default().detect(profile);
        let mut row = vec![
            format!("{paper:.0}"),
            ours.to_string(),
            profile.n_slices().to_string(),
            phases.len().to_string(),
        ];
        for k in WATCHED {
            let peak = profile
                .kernel(k)
                .and_then(|kp| profile.stats(kp, true))
                .map(|s| s.max_total_bpi)
                .unwrap_or(0.0);
            row.push(f(peak, 4));
        }
        table.row(row);
    }
    println!("{}", table.render());

    // The headline: measured peak bandwidth shrinks as slices coarsen.
    let finest = &profiles.first().expect("non-empty sweep").1;
    let coarsest = &profiles.last().expect("non-empty sweep").1;
    for k in WATCHED {
        let p_fine = finest
            .kernel(k)
            .and_then(|kp| finest.stats(kp, true))
            .map(|s| s.max_total_bpi)
            .unwrap_or(0.0);
        let p_coarse = coarsest
            .kernel(k)
            .and_then(|kp| coarsest.stats(kp, true))
            .map(|s| s.max_total_bpi)
            .unwrap_or(0.0);
        println!(
            "{k}: peak {p_fine:.3} B/instr at the finest slices vs {p_coarse:.3} at the \
             coarsest — {:.0} % of the burst intensity is averaged away",
            100.0 * (1.0 - p_coarse / p_fine.max(1e-12))
        );
    }

    save("slice_sweep.csv", &table.to_csv());
}
