//! **Figure 6** — memory bandwidth usage of the top-10 kernels, *read
//! accesses including the stack area*, coarse time slices.
//!
//! The paper sets the interval to 10⁸ instructions on a 6.4 G-instruction
//! run — 64 slices; we pick the interval that yields 64 slices at our
//! scale. Expectations: `wav_store` silent in the first half and the only
//! active kernel in the second half; the processing kernels densely active
//! through the first half; the coarse interval visibly blurring detail
//! (the motivation for Fig. 7's finer setting).

use tq_bench::{banner, save, scale_app};
use tq_tquad::{figure_chart, Measure, TquadOptions, TquadTool};

/// The paper's Fig. 6 kernel set (its top ten).
const TOP10: [&str; 10] = [
    "wav_store",
    "fft1d",
    "DelayLine_processChunk",
    "bitrev",
    "zeroRealVec",
    "AudioIo_setFrames",
    "perm",
    "cadd",
    "cmult",
    "Filter_process",
];

fn main() {
    banner("Figure 6: bandwidth over time, reads incl. stack, 64 coarse slices");
    let app = scale_app();
    let (_, bare) = app.run_bare().expect("bare run for sizing");
    let interval = (bare.icount / 64).max(1);
    println!("slice interval = {interval} instructions → 64 slices (paper: 1e8 → 64)\n");

    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(interval),
    )));
    vm.run(None).expect("wfs runs under tQUAD");
    let profile = vm.detach_tool::<TquadTool>(h).unwrap().into_profile();

    let chart = figure_chart(&profile, &TOP10, Measure::ReadIncl, 64, None);
    println!("{}", chart.render());

    // The headline timing fact of the figure.
    let ws = profile.kernel("wav_store").expect("wav_store profiled");
    let (first, last) = ws.series.span(true).expect("wav_store active");
    let n = profile.n_slices();
    println!(
        "wav_store active slices {first}..{last} of {n} → starts at {:.0} % of execution \
         (paper: \"called approximately in the middle… the only kernel active in the second half\")",
        100.0 * first as f64 / n as f64
    );

    // TSV series for external plotting.
    let mut tsv = String::from("slice");
    for k in TOP10 {
        tsv.push('\t');
        tsv.push_str(k);
    }
    tsv.push('\n');
    for slice in 0..n {
        tsv.push_str(&slice.to_string());
        for k in TOP10 {
            let val = profile
                .kernel(k)
                .map(|kp| kp.series.dense(n, |e| e.r_incl)[slice as usize])
                .unwrap_or(0.0)
                / interval as f64;
            tsv.push_str(&format!("\t{val:.6}"));
        }
        tsv.push('\n');
    }
    save("fig6_read_incl_series.tsv", &tsv);

    // The figure as an actual graphic.
    let mut svg = tq_report::SvgChart::new(
        format!("Fig. 6 — memory bandwidth (reads incl. stack), slice = {interval} instructions"),
        1000,
        30,
    );
    for k in TOP10 {
        if let Some(kp) = profile.kernel(k) {
            let values: Vec<f64> = kp
                .series
                .dense(n, |e| e.r_incl)
                .into_iter()
                .map(|v| v / interval as f64)
                .collect();
            svg.lane(k, values);
        }
    }
    let mut html = tq_report::HtmlReport::new("tQUAD — Figure 6");
    html.paragraph(
        "Memory bandwidth usage of the top-10 kernels over time slices, read accesses          including the stack area (cf. the paper's Figure 6).",
    );
    html.chart(&svg);
    save("fig6.html", &html.render());
}
