//! Diagnostic probe for the imgproc pipeline's phase structure.

use tq_imgproc::{ImgApp, ImgConfig};
use tq_tquad::{PhaseDetector, TquadOptions, TquadTool};

fn main() {
    let app = ImgApp::build(ImgConfig::small());
    let mut vm = app.make_vm();
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2_000),
    )));
    let exit = vm.run(None).unwrap();
    let p = vm.detach_tool::<TquadTool>(t).unwrap().into_profile();
    println!("icount {} slices {}", exit.icount, p.n_slices());
    for k in p.active_kernels() {
        if let Some((a, b)) = k.series.span(true) {
            println!(
                "{:<18} calls {:>5} span {:>6}-{:<6} active {}",
                k.name,
                k.calls,
                a,
                b,
                k.series.active_slices(true)
            );
        }
    }
    let phases = PhaseDetector::default().detect(&p);
    for (i, ph) in phases.iter().enumerate() {
        let names: Vec<&str> = ph
            .kernels
            .iter()
            .map(|r| p.kernels[r.idx()].name.as_str())
            .collect();
        println!("phase {} {:?} {}", i + 1, ph.span, names.join(","));
    }
}
