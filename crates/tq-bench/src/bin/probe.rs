//! Diagnostic probe: runs the wfs app under the gprof and tQUAD tools and
//! prints the raw shares, for workload tuning against the paper's tables.

use tq_gprof::{GprofOptions, GprofTool};
use tq_tquad::{PhaseDetector, TquadOptions, TquadTool};
use tq_wfs::{WfsApp, WfsConfig};

fn main() {
    let cfg = match std::env::args().nth(1).as_deref() {
        Some("tiny") => WfsConfig::tiny(),
        Some("small") => WfsConfig::small(),
        _ => WfsConfig::paper_scaled(),
    };
    let app = WfsApp::build(cfg);
    let mut vm = app.make_vm();
    let interval = 20_000;
    let g = vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
        sample_interval: 5_000,
        ..Default::default()
    })));
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(interval),
    )));
    let start = std::time::Instant::now();
    let exit = vm.run(None).expect("runs");
    let wall = start.elapsed();
    println!(
        "icount = {} ({:.1} M), wall {:.2?}",
        exit.icount,
        exit.icount as f64 / 1e6,
        wall
    );

    let gp = vm.detach_tool::<GprofTool>(g).unwrap().into_profile();
    println!("{}", gp.table("flat profile").render());

    let tp = vm.detach_tool::<TquadTool>(t).unwrap().into_profile();
    println!("slices = {}", tp.n_slices());
    let phases = PhaseDetector::default().detect(&tp);
    println!("phases = {}", phases.len());
    for (i, ph) in phases.iter().enumerate() {
        let names: Vec<&str> = ph
            .kernels
            .iter()
            .map(|r| tp.kernels[r.idx()].name.as_str())
            .collect();
        println!(
            "  phase {}: span {:?} ({:.2}%) kernels: {}",
            i + 1,
            ph.span,
            ph.span_pct(tp.n_slices()),
            names.join(", ")
        );
    }
}
