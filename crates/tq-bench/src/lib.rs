//! # tq-bench — experiment harness for the tQUAD reproduction
//!
//! One `repro_*` binary per table/figure of the paper (see the
//! per-experiment index in `DESIGN.md`), plus plain timing benches
//! ([`bench()`], `benches/*.rs` with `harness = false`) for the performance
//! claims and the design-choice ablations. Binaries print the paper-shaped
//! rows/series to stdout and drop machine-readable copies under
//! `results/`.
//!
//! All experiments default to [`WfsConfig::paper_scaled`]; set
//! `TQ_SCALE=small` or `TQ_SCALE=tiny` to shrink them (CI smoke runs).

use std::path::PathBuf;
use tq_wfs::{WfsApp, WfsConfig};

/// The workload selected by the `TQ_SCALE` environment variable
/// (`paper` default, `small`, `tiny`).
pub fn scale_config() -> WfsConfig {
    match std::env::var("TQ_SCALE").as_deref() {
        Ok("tiny") => WfsConfig::tiny(),
        Ok("small") => WfsConfig::small(),
        _ => WfsConfig::paper_scaled(),
    }
}

/// Build the wfs app at the selected scale (fixed seed: experiments are
/// deterministic).
pub fn scale_app() -> WfsApp {
    WfsApp::build(scale_config())
}

/// Directory for machine-readable experiment outputs (`results/` at the
/// workspace root), created on demand.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../../results"))
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write an experiment artifact to `results/<name>` and note it on stdout.
pub fn save(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write result");
    println!("[saved {}]", path.display());
}

/// Banner with the experiment id and the workload in use.
pub fn banner(what: &str) {
    let c = scale_config();
    println!("=== {what} ===");
    println!(
        "workload: {} speakers, fft {}, chunk {}, {} chunks, {} trajectory points ({} samples)",
        c.n_speakers,
        c.fft_size,
        c.chunk_len,
        c.n_chunks,
        c.n_points,
        c.n_samples()
    );
    println!();
}

/// Nanoseconds this thread has spent *executing on a CPU*, from
/// `/proc/self/schedstat` (first field). `None` off Linux or when the
/// kernel lacks schedstats.
fn sched_cpu_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    s.split_whitespace().next()?.parse().ok()
}

/// Timer for speedup-*ratio* guards: prefers on-CPU time over wall time.
///
/// The verify gates compare two measured durations and assert a floor on
/// their ratio. On a loaded single-core box, wall clock charges whichever
/// side happens to be preempted, flaking the ratio in both directions;
/// on-CPU time (ns-resolution via schedstat) does not advance while the
/// bench is sitting on the runqueue, so guest-side load cancels out of
/// the ratio. Falls back to wall clock when schedstat is unavailable.
/// Only meaningful around single-threaded sections (schedstat is
/// per-task).
pub struct GuardTimer {
    cpu0: Option<u64>,
    wall0: std::time::Instant,
}

impl GuardTimer {
    /// Start timing.
    pub fn start() -> GuardTimer {
        GuardTimer {
            cpu0: sched_cpu_ns(),
            wall0: std::time::Instant::now(),
        }
    }

    /// On-CPU (preferred) or wall-clock time since `start`.
    pub fn elapsed(&self) -> std::time::Duration {
        if let (Some(a), Some(b)) = (self.cpu0, sched_cpu_ns()) {
            if b > a {
                return std::time::Duration::from_nanos(b - a);
            }
        }
        self.wall0.elapsed()
    }
}

/// Minimal timing harness for the `benches/*.rs` entry points (the
/// workspace builds with zero external crates, so Criterion is out).
/// Runs `f` for a warmup round, then measures `iters` timed rounds and
/// prints min/median/mean wall-clock per round. `TQ_BENCH_ITERS`
/// overrides the round count (CI smoke runs use 1).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let iters: usize = std::env::var("TQ_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    std::hint::black_box(f()); // warmup
    let mut samples: Vec<std::time::Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let total: std::time::Duration = samples.iter().sum();
    println!(
        "{name}: min {:?}  median {:?}  mean {:?}  ({} iters)",
        samples[0],
        samples[samples.len() / 2],
        total / samples.len() as u32,
        samples.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("TQ_BENCH_ITERS", "2");
        let mut calls = 0u32;
        bench("noop", || calls += 1);
        std::env::remove_var("TQ_BENCH_ITERS");
        assert_eq!(calls, 3, "warmup + 2 timed rounds");
    }

    #[test]
    fn guard_timer_reports_positive_time() {
        let t = GuardTimer::start();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(x);
        assert!(t.elapsed() > std::time::Duration::ZERO);
    }

    #[test]
    fn default_scale_is_paper() {
        // The env var may leak from a caller; only assert the fallback path.
        if std::env::var("TQ_SCALE").is_err() {
            assert_eq!(scale_config(), WfsConfig::paper_scaled());
        }
    }
}
