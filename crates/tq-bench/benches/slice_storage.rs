//! Ablation: sparse per-kernel slice series (the production
//! [`tq_tquad::KernelSeries`]) versus a dense kernels×slices matrix, over
//! access streams with realistic sparsity (most kernels are silent in most
//! slices — `AudioIo_setFrames` is active in 616 of 1 270 684 slices in
//! the paper's Table IV). Plain timing harness (`tq_bench::bench`).

use tq_bench::bench;
use tq_tquad::KernelSeries;

/// A synthetic access stream: (kernel, slice, bytes), slices nondecreasing.
fn stream(n_kernels: usize, n_slices: u64, density: f64) -> Vec<(usize, u64, u64)> {
    let mut out = Vec::new();
    let mut x: u64 = 12345;
    for slice in 0..n_slices {
        for k in 0..n_kernels {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if (x % 1000) as f64 / 1000.0 < density {
                out.push((k, slice, 8 + (x % 64)));
            }
        }
    }
    out
}

fn main() {
    let n_kernels = 24;
    let n_slices = 50_000u64;
    for density in [0.02f64, 0.5] {
        let s = stream(n_kernels, n_slices, density);
        bench(
            &format!("slice_storage/sparse_series/density_{density}"),
            || {
                let mut series: Vec<KernelSeries> =
                    (0..n_kernels).map(|_| KernelSeries::new()).collect();
                for &(k, slice, bytes) in &s {
                    series[k].record(slice, true, bytes, false);
                }
                series.iter().map(|s| s.entries().len()).sum::<usize>()
            },
        );
        bench(
            &format!("slice_storage/dense_matrix/density_{density}"),
            || {
                // The naive alternative: one u64 per (kernel, slice).
                let mut matrix = vec![0u64; n_kernels * n_slices as usize];
                for &(k, slice, bytes) in &s {
                    matrix[k * n_slices as usize + slice as usize] += bytes;
                }
                matrix.iter().filter(|&&v| v > 0).count()
            },
        );
    }
}
