//! Fleet load generator: saturate a 3-node in-process `tq-profd` fleet
//! through the busy → retry → redirect path and report end-to-end submit
//! latencies.
//!
//! Two client populations run concurrently against deliberately small
//! servers (one worker, shallow queue, fault-injected slow replays):
//!
//! - **routed** threads use [`FleetClient`], so every job lands on the
//!   ring owner of its content digest first and fails over on busy;
//! - **misdirected** threads use a plain [`Client`] pinned to one node,
//!   so jobs whose digest is owned elsewhere force cross-instance cache
//!   peeks, and busy responses exercise the `redirect_to` hint.
//!
//! Latencies go into a `tq-obs` histogram (visible in the metrics dump)
//! and are also kept raw for exact percentiles. The bench *fails* if the
//! fleet never issued a redirect or never served a peek — a silent fleet
//! is a broken bench, not a fast one. Results land in
//! `results/fleet_load.tsv`. `TQ_BENCH_ITERS` scales the per-thread job
//! count (CI smoke runs use 1).

use std::net::TcpListener;
use std::time::{Duration, Instant};
use tq_bench::save;
use tq_profd::{AppId, Client, FleetClient, JobSpec, Scale, Server, ServerConfig, ToolId};
use tq_report::Json;

/// Reserve `n` distinct loopback addresses so every member's roster can
/// be fixed before any server binds.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn start_fleet(addrs: &[String]) -> Vec<Server> {
    addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            Server::start(ServerConfig {
                addr: addr.clone(),
                workers: 1,
                queue_depth: 1,
                peers,
                probe_interval: Duration::from_millis(100),
                ..ServerConfig::default()
            })
            .expect("fleet member starts")
        })
        .collect()
}

/// The job mix: two content digests (wfs and img at tiny scale) spread
/// over the ring, with the slice interval varied so repeat submissions
/// replay instead of memo-hitting.
fn job(i: usize) -> JobSpec {
    let app = if i % 2 == 0 { AppId::Wfs } else { AppId::Img };
    let mut spec = JobSpec::new(app, Scale::Tiny, ToolId::Tquad);
    spec.interval = 2_000 + 500 * ((i / 2) % 8) as u64;
    spec
}

fn u64_at(j: &Json, path: &[&str]) -> u64 {
    let mut cur = j;
    for key in path {
        match cur.get(key) {
            Some(v) => cur = v,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let iters: usize = std::env::var("TQ_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let jobs_per_thread = 8 * iters;
    const ROUTED_THREADS: usize = 3;
    const MISDIRECTED_THREADS: usize = 2;
    const RETRIES: u32 = 8;

    // Slow every replay down a little so one worker + a depth-1 queue
    // actually saturates and the busy/redirect path gets real traffic.
    tq_faults::install(tq_faults::FaultPlan::seeded(7).with(
        tq_faults::FaultPoint::SlowReplay,
        1.0,
        Duration::from_millis(3),
    ));
    tq_obs::set_enabled(true);
    let latency = tq_obs::histogram(
        "tq_fleet_load_latency_us",
        "end-to-end fleet submit latency (µs)",
    );

    let addrs = reserve_addrs(3);
    let servers = start_fleet(&addrs);
    println!(
        "fleet_load: 3 nodes, {} routed + {} misdirected threads x {} jobs, {} retries",
        ROUTED_THREADS, MISDIRECTED_THREADS, jobs_per_thread, RETRIES
    );

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..ROUTED_THREADS {
        let members = addrs.clone();
        let latency = latency.clone();
        handles.push(std::thread::spawn(move || {
            let mut fc = FleetClient::new(members);
            let mut samples = Vec::with_capacity(jobs_per_thread);
            let mut attempts = 0u64;
            for i in 0..jobs_per_thread {
                let spec = job(t + i * ROUTED_THREADS);
                let mut trail = tq_profd::RetryTrail::default();
                let s0 = Instant::now();
                fc.submit_with_trail(spec, RETRIES, &mut trail)
                    .expect("routed submit");
                let us = s0.elapsed().as_micros() as u64;
                latency.observe(us);
                samples.push(us);
                attempts += u64::from(trail.attempts);
            }
            (samples, attempts)
        }));
    }
    for t in 0..MISDIRECTED_THREADS {
        // Every misdirected thread hammers one fixed node; jobs owned by
        // the other two nodes arrive "at the wrong door" on purpose.
        let addr = addrs[t % addrs.len()].clone();
        let latency = latency.clone();
        handles.push(std::thread::spawn(move || {
            let mut samples = Vec::with_capacity(jobs_per_thread);
            let mut attempts = 0u64;
            for i in 0..jobs_per_thread {
                let spec = job(t + i * MISDIRECTED_THREADS + 1);
                let mut trail = tq_profd::RetryTrail::default();
                let mut client = Client::connect(&addr).expect("connect");
                let s0 = Instant::now();
                client
                    .submit_with_retry_trail(spec, RETRIES, &mut trail)
                    .expect("misdirected submit");
                let us = s0.elapsed().as_micros() as u64;
                latency.observe(us);
                samples.push(us);
                attempts += u64::from(trail.attempts);
            }
            (samples, attempts)
        }));
    }

    let mut samples: Vec<u64> = Vec::new();
    let mut attempts = 0u64;
    for h in handles {
        let (s, a) = h.join().expect("load thread");
        samples.extend(s);
        attempts += a;
    }
    let wall = t0.elapsed();
    samples.sort_unstable();

    // Fleet-wide counters: the proof the load actually flowed through
    // the busy/redirect/peek machinery.
    let mut redirects = 0u64;
    let mut peek_serves = 0u64;
    let mut peek_fetches = 0u64;
    let mut remote_owned = 0u64;
    let mut busy = 0u64;
    let mut vm_runs = 0u64;
    for addr in &addrs {
        let stats = Client::connect(addr)
            .expect("connect for stats")
            .stats()
            .expect("stats");
        redirects += u64_at(&stats, &["fleet", "redirects_issued"]);
        peek_serves += u64_at(&stats, &["fleet", "peek_serves"]);
        peek_fetches += u64_at(&stats, &["fleet", "peek_fetches"]);
        remote_owned += u64_at(&stats, &["fleet", "remote_owned_jobs"]);
        busy += u64_at(&stats, &["rejects"]);
        vm_runs += u64_at(&stats, &["vm_runs"]);
    }

    let total = samples.len() as u64;
    let (p50, p90, p99) = (
        percentile(&samples, 0.50),
        percentile(&samples, 0.90),
        percentile(&samples, 0.99),
    );
    let max = *samples.last().unwrap_or(&0);
    println!(
        "  {total} jobs in {wall:?} ({:.0} jobs/s), {attempts} attempts ({busy} busy rejections)",
        total as f64 / wall.as_secs_f64()
    );
    println!("  latency µs: p50 {p50}  p90 {p90}  p99 {p99}  max {max}");
    println!(
        "  fleet: {redirects} redirects, {peek_serves} peek serves / {peek_fetches} fetches, \
         {remote_owned} remote-owned jobs, {vm_runs} vm runs"
    );
    assert_eq!(
        latency.count(),
        total,
        "tq-obs histogram saw every submission"
    );
    assert_eq!(vm_runs, 2, "one recording per content digest, fleet-wide");

    save(
        "fleet_load.tsv",
        &format!(
            "jobs\twall_s\tattempts\tbusy\tredirects\tpeek_serves\tpeek_fetches\t\
             remote_owned\tvm_runs\tp50_us\tp90_us\tp99_us\tmax_us\n\
             {total}\t{:.6}\t{attempts}\t{busy}\t{redirects}\t{peek_serves}\t{peek_fetches}\t\
             {remote_owned}\t{vm_runs}\t{p50}\t{p90}\t{p99}\t{max}\n",
            wall.as_secs_f64()
        ),
    );

    for addr in &addrs {
        let _ = Client::connect(addr).and_then(|mut c| c.shutdown());
    }
    for s in servers {
        s.join().expect("clean join");
    }
    tq_faults::clear();

    // The acceptance gates: a run that never redirected or never peeked
    // did not exercise the fleet at all.
    assert!(redirects > 0, "no redirect hints were ever issued");
    assert!(
        peek_serves > 0 && peek_fetches > 0,
        "no cross-instance cache peeks happened (serves {peek_serves}, fetches {peek_fetches})"
    );
    assert!(remote_owned > 0, "no job ever landed on a non-owner");
    println!("  gates: PASS (redirects, peeks, remote-owned all nonzero)");
}
