//! Guard bench for the reduced-instrumentation modes (`--instr`): measures
//! what each mode saves and what it costs in accuracy, per workload, and
//! holds both claims (see `docs/ACCURACY.md` for the methodology).
//!
//! For each workload (wfs small, imgproc tiny, a kernelc streaming mix)
//! the bench times `vm.run()` (on-CPU time via [`GuardTimer`], so
//! guest-side preemption cancels out of the speedup ratios) with the
//! tQUAD tool attached under:
//!
//! * **full** — every memory event instrumented (baseline);
//! * **filter:\*** — the all-routines filter, which must be a no-op:
//!   the resulting profile is asserted *identical* to full;
//! * **sample:8/5000@0** — every 8th gating slice live;
//! * **converge:0.1,6/5000** — per-routine gating once the profile is
//!   stable for 6 slices, with periodic re-probes.
//!
//! Accuracy metric: for every kernel carrying at least 1% of the full
//! run's traffic, the relative error of its reconstructed mean bandwidth
//! over active slices (read+write B/instr, stack included — the Table IV
//! "avg" columns) against the exact full-instrumentation value; the
//! per-(workload, mode) maximum lands in the TSV.
//!
//! The **guards** checked by `scripts/verify.sh`:
//! * `filter:*` produces the byte-identical profile on every workload;
//! * sample and converge each cut instrumented wall-time by at least
//!   1.3x vs full (geometric mean across workloads; best-of-N walls with
//!   iterations interleaved across modes so load bursts cannot bias the
//!   ratio);
//! * the max per-kernel bandwidth error stays under the documented
//!   bound for each mode (0.25 for sample, 0.25 for converge);
//! * convergence actually engages (coverage < 100%) on the steady
//!   kernelc workload — otherwise its speedup claim would be vacuous.
//!
//! Results land in `results/instr_accuracy.tsv`.

use std::time::Duration;
use tq_bench::{save, GuardTimer};
use tq_imgproc::{ImgApp, ImgConfig};
use tq_kernelc::dsl::*;
use tq_kernelc::{compile, ElemTy, Function, GlobalInit, Module};
use tq_tquad::{TquadOptions, TquadProfile, TquadTool};
use tq_vm::{InstrMode, Vm};
use tq_wfs::{WfsApp, WfsConfig};

/// Wall-time reduction floor for sample and converge vs full (geometric
/// mean across workloads) — the acceptance criterion in `verify.sh`.
const SPEEDUP_FLOOR: f64 = 1.3;

/// Documented max per-kernel bandwidth error bounds (docs/ACCURACY.md).
const SAMPLE_ERR_BOUND: f64 = 0.25;
const CONVERGE_ERR_BOUND: f64 = 0.25;

/// Gating-slice length and tQUAD slice interval (kept equal so one gating
/// slice maps onto one tool slice).
const SLICE: u64 = 5_000;

/// Kernels below this share of total full-run traffic are excluded from
/// the relative-error maximum (relative error on near-zero denominators
/// is noise, not signal; the TSV still reports overall coverage).
const TRAFFIC_SHARE_FLOOR: f64 = 0.01;

/// A steady multi-kernel streaming mix: three kernels with distinct
/// bandwidth signatures, interleaved at sub-slice granularity so every
/// gating slice sees the same blend — the regime convergence gating is
/// designed for.
fn kernelc_stream() -> Vm {
    let mut m = Module::new("stream_mix");
    m.global("a", ElemTy::F64, 64, GlobalInit::Zero);
    m.global("b", ElemTy::F64, 64, GlobalInit::Zero);
    m.global("out", ElemTy::F64, 1, GlobalInit::Zero);

    // fill: write-heavy; scale: read+write; reduce: read-heavy. One round
    // of the three is a few hundred instructions — far below the gating
    // slice — so every slice sees the same steady blend.
    m.func(Function::new("fill").body(vec![for_(
        "i",
        ci(0),
        ci(16),
        vec![stf(ga("a"), v("i"), i2f(v("i")))],
    )]));
    m.func(Function::new("scale").body(vec![for_(
        "i",
        ci(0),
        ci(16),
        vec![stf(ga("b"), v("i"), mul(ldf(ga("a"), v("i")), cf(1.5)))],
    )]));
    m.func(Function::new("reduce").body(vec![
        letf("acc", cf(0.0)),
        for_(
            "i",
            ci(0),
            ci(16),
            vec![set("acc", add(v("acc"), ldf(ga("b"), v("i"))))],
        ),
        stf(ga("out"), ci(0), v("acc")),
    ]));
    m.func(Function::new("main").body(vec![for_(
        "r",
        ci(0),
        ci(4000),
        vec![
            call("fill", vec![]),
            call("scale", vec![]),
            call("reduce", vec![]),
        ],
    )]));
    let compiled = compile(&m).expect("stream mix compiles");
    Vm::new(compiled.program).expect("stream mix loads")
}

struct Workload {
    name: &'static str,
    make_vm: Box<dyn Fn() -> Vm>,
}

fn workloads() -> Vec<Workload> {
    let wfs = WfsApp::build(WfsConfig::small());
    let img = ImgApp::build(ImgConfig::tiny());
    vec![
        Workload {
            name: "wfs_small",
            make_vm: Box::new(move || wfs.make_vm()),
        },
        Workload {
            name: "img_tiny",
            make_vm: Box::new(move || img.make_vm()),
        },
        Workload {
            name: "kernelc_stream",
            make_vm: Box::new(kernelc_stream),
        },
    ]
}

struct Run {
    wall: Duration,
    profile: TquadProfile,
}

/// One run under `mode` (`None` = full); only `vm.run()` is timed.
fn run_once(w: &Workload, mode: Option<&InstrMode>) -> Run {
    let mut vm = (w.make_vm)();
    if let Some(m) = mode {
        vm.set_instr_mode(m.clone()).expect("mode accepted");
    }
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(SLICE),
    )));
    let t0 = GuardTimer::start();
    vm.run(None).expect("runs");
    let wall = t0.elapsed();
    let profile = vm
        .detach_tool::<TquadTool>(h)
        .expect("tool detaches")
        .into_profile();
    Run { wall, profile }
}

/// Best-of-N wall clocks for the timed configurations. Iterations are
/// interleaved round-robin across the modes so a background-load burst
/// inflates every mode's round equally instead of biasing whichever mode
/// owned the timer when it hit — the guard is a wall-clock *ratio*, and
/// sequential per-mode loops flake it both ways on a loaded single-core
/// box. Profiles are identical across reps (the VM is deterministic), so
/// each slot keeps its first.
fn best_of_interleaved(w: &Workload, modes: &[Option<&InstrMode>], iters: usize) -> Vec<Run> {
    let mut best: Vec<Option<Run>> = modes.iter().map(|_| None).collect();
    for _ in 0..iters {
        for (ci, mode) in modes.iter().enumerate() {
            let r = run_once(w, *mode);
            match &mut best[ci] {
                None => best[ci] = Some(r),
                Some(b) => {
                    if r.wall < b.wall {
                        b.wall = r.wall;
                    }
                }
            }
        }
    }
    best.into_iter()
        .map(|b| b.expect("at least one iteration"))
        .collect()
}

/// Max relative error of reconstructed per-kernel mean bandwidth (the
/// Table IV avg read+write B/instr over active slices, stack included)
/// vs full, over kernels carrying at least `TRAFFIC_SHARE_FLOOR` of full
/// traffic. A kernel the reconstruction lost entirely counts as 100%.
fn max_kernel_error(full: &TquadProfile, recon: &TquadProfile) -> f64 {
    let grand: u64 = full
        .kernels
        .iter()
        .map(|k| {
            let (r, w) = k.series.totals(true);
            r + w
        })
        .sum();
    let mut max_err = 0.0f64;
    for fk in &full.kernels {
        let (fr, fw) = fk.series.totals(true);
        if ((fr + fw) as f64) < TRAFFIC_SHARE_FLOOR * grand as f64 {
            continue;
        }
        let Some(fs) = full.stats(fk, true) else {
            continue;
        };
        let f_bpi = fs.avg_read_bpi + fs.avg_write_bpi;
        let r_bpi = recon
            .kernel(&fk.name)
            .and_then(|rk| recon.stats(rk, true))
            .map(|rs| rs.avg_read_bpi + rs.avg_write_bpi)
            .unwrap_or(0.0);
        let err = (r_bpi - f_bpi).abs() / f_bpi;
        max_err = max_err.max(err);
    }
    max_err
}

fn main() {
    let iters: usize = std::env::var("TQ_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let sample: InstrMode = InstrMode::parse(&format!("sample:8/{SLICE}@0")).expect("spec");
    let converge: InstrMode = InstrMode::parse(&format!("converge:0.1,6/{SLICE}")).expect("spec");
    let filter_all: InstrMode = InstrMode::parse("filter:*").expect("spec");

    println!("instr_accuracy: best of {iters}, tquad interval {SLICE}, vm.run() only");
    let mut tsv = String::from(
        "workload\tmode\twall_s\tspeedup\tcoverage_ppm\tmax_kernel_err\tfilled_slices\tmeasured_slices\n",
    );
    let mut sample_speedups = Vec::new();
    let mut converge_speedups = Vec::new();
    let mut sample_max_err = 0.0f64;
    let mut converge_max_err = 0.0f64;
    let mut kernelc_converged = false;

    for w in workloads() {
        let mut runs =
            best_of_interleaved(&w, &[None, Some(&sample), Some(&converge)], iters).into_iter();
        let full = runs.next().expect("full run");
        assert!(full.profile.instr.is_none(), "full profile must be exact");

        // filter:* must be a no-op: identical profile, not "close".
        let filt = run_once(&w, Some(&filter_all));
        assert_eq!(
            filt.profile, full.profile,
            "{}: filter:* diverged from full",
            w.name
        );

        tsv.push_str(&format!(
            "{}\tfull\t{:.6}\t1.000\t1000000\t0.000000\t0\t0\n",
            w.name,
            full.wall.as_secs_f64()
        ));

        for label in ["sample", "converge"] {
            let r = runs.next().expect("mode run");
            let note = r
                .profile
                .instr
                .as_ref()
                .unwrap_or_else(|| panic!("{}: {label} profile lacks a recon note", w.name));
            let speedup = full.wall.as_secs_f64() / r.wall.as_secs_f64();
            let err = max_kernel_error(&full.profile, &r.profile);
            println!(
                "  {:<14} {label:<8} wall {:>9.4}s  speedup {speedup:>5.2}x  coverage {:>5.1}%  max kernel err {:>6.2}%",
                w.name,
                r.wall.as_secs_f64(),
                note.coverage() * 100.0,
                err * 100.0,
            );
            tsv.push_str(&format!(
                "{}\t{label}\t{:.6}\t{speedup:.3}\t{}\t{err:.6}\t{}\t{}\n",
                w.name,
                r.wall.as_secs_f64(),
                note.coverage_ppm,
                note.filled_slices,
                note.measured_slices,
            ));
            match label {
                "sample" => {
                    sample_speedups.push(speedup);
                    sample_max_err = sample_max_err.max(err);
                }
                _ => {
                    converge_speedups.push(speedup);
                    converge_max_err = converge_max_err.max(err);
                    if w.name == "kernelc_stream" && note.coverage_ppm < 1_000_000 {
                        kernelc_converged = true;
                    }
                }
            }
        }
    }

    let geomean =
        |v: &[f64]| -> f64 { (v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp() };
    let sample_gm = geomean(&sample_speedups);
    let converge_gm = geomean(&converge_speedups);
    println!(
        "  geomean speedup: sample {sample_gm:.2}x, converge {converge_gm:.2}x (floor {SPEEDUP_FLOOR}x)"
    );
    println!(
        "  max kernel err: sample {:.2}% (bound {:.0}%), converge {:.2}% (bound {:.0}%)",
        sample_max_err * 100.0,
        SAMPLE_ERR_BOUND * 100.0,
        converge_max_err * 100.0,
        CONVERGE_ERR_BOUND * 100.0,
    );
    tsv.push_str(&format!(
        "# sample_geomean_speedup={sample_gm:.3} converge_geomean_speedup={converge_gm:.3} floor={SPEEDUP_FLOOR}\n\
         # sample_max_err={sample_max_err:.6} bound={SAMPLE_ERR_BOUND} converge_max_err={converge_max_err:.6} bound={CONVERGE_ERR_BOUND}\n"
    ));
    save("instr_accuracy.tsv", &tsv);

    assert!(
        kernelc_converged,
        "convergence never engaged on the steady kernelc workload"
    );
    assert!(
        sample_gm >= SPEEDUP_FLOOR,
        "sample geomean speedup {sample_gm:.2}x is below the {SPEEDUP_FLOOR}x floor"
    );
    assert!(
        converge_gm >= SPEEDUP_FLOOR,
        "converge geomean speedup {converge_gm:.2}x is below the {SPEEDUP_FLOOR}x floor"
    );
    assert!(
        sample_max_err <= SAMPLE_ERR_BOUND,
        "sample max kernel error {sample_max_err:.4} exceeds the {SAMPLE_ERR_BOUND} bound"
    );
    assert!(
        converge_max_err <= CONVERGE_ERR_BOUND,
        "converge max kernel error {converge_max_err:.4} exceeds the {CONVERGE_ERR_BOUND} bound"
    );
    println!("  guard: PASS");
}
