//! Criterion bench for the §V.A overhead claim: instrumented-vs-bare
//! execution of the wfs application (tiny config so the bench converges),
//! across tools and slice granularities.

use criterion::{criterion_group, criterion_main, Criterion};
use tq_gprof::{GprofOptions, GprofTool};
use tq_quad::{QuadOptions, QuadTool};
use tq_tquad::{TquadOptions, TquadTool};
use tq_wfs::{WfsApp, WfsConfig};

fn bench_overhead(c: &mut Criterion) {
    let app = WfsApp::build(WfsConfig::tiny());
    let mut g = c.benchmark_group("wfs_run");
    g.sample_size(10);

    g.bench_function("bare", |b| {
        b.iter(|| {
            let mut vm = app.make_vm();
            vm.run(None).expect("runs")
        })
    });
    g.bench_function("tquad_coarse_20k", |b| {
        b.iter(|| {
            let mut vm = app.make_vm();
            vm.attach_tool(Box::new(TquadTool::new(
                TquadOptions::default().with_interval(20_000),
            )));
            vm.run(None).expect("runs")
        })
    });
    g.bench_function("tquad_fine_500", |b| {
        b.iter(|| {
            let mut vm = app.make_vm();
            vm.attach_tool(Box::new(TquadTool::new(TquadOptions::default().with_interval(500))));
            vm.run(None).expect("runs")
        })
    });
    g.bench_function("gprof", |b| {
        b.iter(|| {
            let mut vm = app.make_vm();
            vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
                sample_interval: 1_000,
                ..Default::default()
            })));
            vm.run(None).expect("runs")
        })
    });
    g.bench_function("quad", |b| {
        b.iter(|| {
            let mut vm = app.make_vm();
            vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
            vm.run(None).expect("runs")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
