//! Timing bench for the §V.A overhead claim: instrumented-vs-bare
//! execution of the wfs application (tiny config so the bench converges),
//! across tools and slice granularities. Plain timing harness
//! (`tq_bench::bench`).

use tq_bench::bench;
use tq_gprof::{GprofOptions, GprofTool};
use tq_quad::{QuadOptions, QuadTool};
use tq_tquad::{TquadOptions, TquadTool};
use tq_wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::tiny());

    bench("wfs_run/bare", || {
        let mut vm = app.make_vm();
        vm.run(None).expect("runs")
    });
    bench("wfs_run/tquad_coarse_20k", || {
        let mut vm = app.make_vm();
        vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(20_000),
        )));
        vm.run(None).expect("runs")
    });
    bench("wfs_run/tquad_fine_500", || {
        let mut vm = app.make_vm();
        vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(500),
        )));
        vm.run(None).expect("runs")
    });
    bench("wfs_run/gprof", || {
        let mut vm = app.make_vm();
        vm.attach_tool(Box::new(GprofTool::new(GprofOptions {
            sample_interval: 1_000,
            ..Default::default()
        })));
        vm.run(None).expect("runs")
    });
    bench("wfs_run/quad", || {
        let mut vm = app.make_vm();
        vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
        vm.run(None).expect("runs")
    });
}
