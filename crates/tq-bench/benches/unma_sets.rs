//! Ablation: the page-bitmap [`tq_quad::AddressSet`] versus `HashSet<u64>`
//! for UnMA tracking. The paper's `wav_store` touches ~65 M distinct
//! addresses; representation choice dominates QUAD's memory footprint and
//! insert throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use tq_quad::AddressSet;

/// Address streams with different locality patterns.
fn stream(pattern: &str, n: usize) -> Vec<u64> {
    match pattern {
        // Sequential bytes (wav_store scanning the frame buffer).
        "sequential" => (0..n as u64).map(|i| 0x1000_0000 + i).collect(),
        // Strided interleaving (AudioIo_setFrames-like).
        "strided" => (0..n as u64).map(|i| 0x1000_0000 + (i % 32) * 65536 + (i / 32) * 4).collect(),
        // Pseudo-random within a working set (hash-hostile).
        _ => {
            let mut x: u64 = 0x9E3779B97F4A7C15;
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    0x1000_0000 + (x % 4_000_000)
                })
                .collect()
        }
    }
}

fn bench_unma(c: &mut Criterion) {
    let mut g = c.benchmark_group("unma_insert_100k");
    for pattern in ["sequential", "strided", "random"] {
        let addrs = stream(pattern, 100_000);
        g.bench_with_input(BenchmarkId::new("page_bitmap", pattern), &addrs, |b, addrs| {
            b.iter(|| {
                let mut s = AddressSet::new();
                for &a in addrs {
                    s.insert(a);
                }
                s.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("hashset", pattern), &addrs, |b, addrs| {
            b.iter(|| {
                let mut s: HashSet<u64> = HashSet::new();
                for &a in addrs {
                    s.insert(a);
                }
                s.len()
            })
        });
    }
    g.finish();

    // Range inserts (the per-access path).
    let mut g = c.benchmark_group("unma_insert_range_8B_x100k");
    g.bench_function("page_bitmap", |b| {
        b.iter(|| {
            let mut s = AddressSet::new();
            for i in 0..100_000u64 {
                s.insert_range(0x1000_0000 + i * 8, 8);
            }
            s.len()
        })
    });
    g.bench_function("hashset", |b| {
        b.iter(|| {
            let mut s: HashSet<u64> = HashSet::new();
            for i in 0..100_000u64 {
                for a in 0..8u64 {
                    s.insert(0x1000_0000 + i * 8 + a);
                }
            }
            s.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_unma);
criterion_main!(benches);
