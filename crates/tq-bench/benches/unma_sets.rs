//! Ablation: the page-bitmap [`tq_quad::AddressSet`] versus `HashSet<u64>`
//! for UnMA tracking. The paper's `wav_store` touches ~65 M distinct
//! addresses; representation choice dominates QUAD's memory footprint and
//! insert throughput. Plain timing harness (`tq_bench::bench`).

use std::collections::HashSet;
use tq_bench::bench;
use tq_quad::AddressSet;

/// Address streams with different locality patterns.
fn stream(pattern: &str, n: usize) -> Vec<u64> {
    match pattern {
        // Sequential bytes (wav_store scanning the frame buffer).
        "sequential" => (0..n as u64).map(|i| 0x1000_0000 + i).collect(),
        // Strided interleaving (AudioIo_setFrames-like).
        "strided" => (0..n as u64)
            .map(|i| 0x1000_0000 + (i % 32) * 65536 + (i / 32) * 4)
            .collect(),
        // Pseudo-random within a working set (hash-hostile).
        _ => {
            let mut x: u64 = 0x9E3779B97F4A7C15;
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    0x1000_0000 + (x % 4_000_000)
                })
                .collect()
        }
    }
}

fn main() {
    for pattern in ["sequential", "strided", "random"] {
        let addrs = stream(pattern, 100_000);
        bench(&format!("unma_insert_100k/page_bitmap/{pattern}"), || {
            let mut s = AddressSet::new();
            for &a in &addrs {
                s.insert(a);
            }
            s.len()
        });
        bench(&format!("unma_insert_100k/hashset/{pattern}"), || {
            let mut s: HashSet<u64> = HashSet::new();
            for &a in &addrs {
                s.insert(a);
            }
            s.len()
        });
    }

    // Range inserts (the per-access path).
    bench("unma_insert_range_8B_x100k/page_bitmap", || {
        let mut s = AddressSet::new();
        for i in 0..100_000u64 {
            s.insert_range(0x1000_0000 + i * 8, 8);
        }
        s.len()
    });
    bench("unma_insert_range_8B_x100k/hashset", || {
        let mut s: HashSet<u64> = HashSet::new();
        for i in 0..100_000u64 {
            for a in 0..8u64 {
                s.insert(0x1000_0000 + i * 8 + a);
            }
        }
        s.len()
    });
}
