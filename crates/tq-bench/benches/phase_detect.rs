//! Ablation: the two phase-detection strategies (activity-vector cosine
//! with span-overlap rescue vs pure interval IoU) on synthetic profiles of
//! growing size. Plain timing harness (`tq_bench::bench`).

use tq_bench::bench;
use tq_isa::RoutineId;
use tq_tquad::{KernelProfile, KernelSeries, PhaseDetector, PhaseStrategy, TquadProfile};

/// A synthetic profile: `k` kernels per phase, `p` phases laid out
/// sequentially over `slices_per_phase` each.
fn synthetic(phases: usize, kernels_per_phase: usize, slices_per_phase: u64) -> TquadProfile {
    let mut kernels = Vec::new();
    for ph in 0..phases {
        let lo = ph as u64 * slices_per_phase;
        for k in 0..kernels_per_phase {
            let mut s = KernelSeries::new();
            // Vary density: kernel 0 dense, the rest progressively sparser.
            let step = 1 + k as u64 * 3;
            let mut slice = lo + k as u64;
            while slice < lo + slices_per_phase {
                s.record(slice, true, 8, false);
                slice += step;
            }
            kernels.push(KernelProfile {
                rtn: RoutineId(kernels.len() as u32),
                name: format!("k{ph}_{k}"),
                main_image: true,
                calls: 1,
                series: s,
            });
        }
    }
    TquadProfile {
        interval: 1000,
        total_icount: phases as u64 * slices_per_phase * 1000,
        kernels,
        dropped_accesses: 0,
        prefetches_ignored: 0,
        instr: None,
    }
}

fn main() {
    for &(phases, kernels) in &[(5usize, 4usize), (8, 8)] {
        let profile = synthetic(phases, kernels, 10_000);
        let label = format!("{phases}phases_x{kernels}kernels");
        bench(&format!("phase_detection/activity_cosine/{label}"), || {
            PhaseDetector::default().detect(&profile).len()
        });
        bench(&format!("phase_detection/interval_iou/{label}"), || {
            let det = PhaseDetector {
                strategy: PhaseStrategy::IntervalOverlap { threshold: 0.3 },
                ..PhaseDetector::default()
            };
            det.detect(&profile).len()
        });
    }

    // Correctness-of-ablation sanity: both strategies find the layout.
    let p = synthetic(5, 4, 10_000);
    assert_eq!(PhaseDetector::default().detect(&p).len(), 5);
}
