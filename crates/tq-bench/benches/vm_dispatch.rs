//! Microbench of the VM's dispatch loop: raw interpretation throughput and
//! the marginal cost of instrumentation events (what one analysis call
//! costs, independent of any particular tool). Plain timing harness
//! (`tq_bench::bench`); Criterion is out under the zero-external-crates
//! policy.

use tq_bench::bench;
use tq_isa::{Asm, BrCond, Inst, MemWidth, Program, Reg};
use tq_vm::{hooks, layout, Event, HookMask, InsContext, Tool, Vm};

/// A counting tool that subscribes to memory events only.
struct Counter {
    n: u64,
}

impl Tool for Counter {
    fn name(&self) -> &str {
        "counter"
    }
    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
        let mut m = hooks::NONE;
        if ins.inst.may_read_memory() {
            m |= hooks::MEM_READ;
        }
        if ins.inst.may_write_memory() {
            m |= hooks::MEM_WRITE;
        }
        m
    }
    fn on_event(&mut self, _ev: &Event) {
        self.n += 1;
    }
}

/// ALU-heavy loop: `iters` iterations of 6 instructions, no memory.
fn alu_program(iters: i32) -> Program {
    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li { rd: Reg(1), imm: 0 });
    a.emit(Inst::Li {
        rd: Reg(2),
        imm: iters,
    });
    a.label("loop").unwrap();
    a.emit(Inst::AddI {
        rd: Reg(3),
        rs1: Reg(1),
        imm: 7,
    });
    a.emit(Inst::Mul {
        rd: Reg(3),
        rs1: Reg(3),
        rs2: Reg(3),
    });
    a.emit(Inst::Xor {
        rd: Reg(4),
        rs1: Reg(3),
        rs2: Reg(1),
    });
    a.emit(Inst::AddI {
        rd: Reg(1),
        rs1: Reg(1),
        imm: 1,
    });
    a.br(BrCond::Lt, Reg(1), Reg(2), "loop");
    a.emit(Inst::Halt);
    let img = a.finish("alu", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    Program::new(img, entry)
}

/// Memory-heavy loop: every iteration loads and stores.
fn mem_program(iters: i32) -> Program {
    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li { rd: Reg(1), imm: 0 });
    a.emit(Inst::Li {
        rd: Reg(2),
        imm: iters,
    });
    a.emit(Inst::Li {
        rd: Reg(5),
        imm: layout::GLOBALS_BASE as i32,
    });
    a.label("loop").unwrap();
    a.emit(Inst::Ld {
        rd: Reg(3),
        base: Reg(5),
        off: 0,
        width: MemWidth::B8,
    });
    a.emit(Inst::AddI {
        rd: Reg(3),
        rs1: Reg(3),
        imm: 1,
    });
    a.emit(Inst::St {
        rs: Reg(3),
        base: Reg(5),
        off: 0,
        width: MemWidth::B8,
    });
    a.emit(Inst::AddI {
        rd: Reg(1),
        rs1: Reg(1),
        imm: 1,
    });
    a.br(BrCond::Lt, Reg(1), Reg(2), "loop");
    a.emit(Inst::Halt);
    let img = a.finish("mem", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    Program::new(img, entry)
}

fn main() {
    const ITERS: i32 = 100_000;

    let alu = alu_program(ITERS);
    bench("vm_dispatch/alu_bare", || {
        let mut vm = Vm::new(alu.clone()).unwrap();
        vm.run(None).unwrap().icount
    });

    let mem = mem_program(ITERS);
    bench("vm_dispatch/mem_bare", || {
        let mut vm = Vm::new(mem.clone()).unwrap();
        vm.run(None).unwrap().icount
    });
    bench("vm_dispatch/mem_with_event_counter", || {
        let mut vm = Vm::new(mem.clone()).unwrap();
        vm.attach_tool(Box::new(Counter { n: 0 }));
        vm.run(None).unwrap().icount
    });

    // Sanity: the counter actually fires per memory op (2 per iteration
    // plus the fallthrough Halt path has none).
    let mut vm = Vm::new(mem_program(100)).unwrap();
    let h = vm.attach_tool(Box::new(Counter { n: 0 }));
    vm.run(None).unwrap();
    let t = vm.detach_tool::<Counter>(h).unwrap();
    assert_eq!(t.n, 200);
}
