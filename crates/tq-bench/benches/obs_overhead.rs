//! Guard bench: the `tq-obs` layer must be near-free when disabled.
//!
//! Two measurements back the claim:
//!
//! 1. **Direct comparison** — best-of-N sharded tquad replay with the
//!    layer disabled vs enabled (informational: the enabled cost is the
//!    price of a Perfetto trace).
//! 2. **The guard** — the disabled fast path of every instrument kind
//!    (spans, counters, and the `tq-faults` injection hooks) is timed in
//!    a tight loop (one relaxed atomic load + branch), then
//!    scaled by the number of gated call sites one replay actually
//!    executes. That bounds the disabled overhead as a fraction of replay
//!    wall time, and the bench **fails** if the bound exceeds 2% — the
//!    acceptance criterion — independent of scheduler noise, which a
//!    direct instrumented-vs-uninstrumented diff of two multi-millisecond
//!    wall times on a busy CI box could never resolve.

use std::time::{Duration, Instant};
use tq_bench::save;
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::{Trace, TraceRecorder};
use tq_wfs::{WfsApp, WfsConfig};

fn capture(config: WfsConfig) -> Trace {
    let app = WfsApp::build(config);
    let mut vm = app.make_vm();
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("capture run");
    vm.detach_tool::<TraceRecorder>(r)
        .unwrap()
        .into_trace()
        .with_chunk_index(tq_trace::DEFAULT_CHUNKS)
        .expect("chunk index")
}

/// Best-of-N wall clock for one sharded tquad replay; also returns the
/// slice count (the number of gated counter increments the replay does).
fn replay_time(trace: &Trace, iters: usize) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut slices = 0;
    for _ in 0..iters {
        let mut tool = TquadTool::new(TquadOptions::default().with_interval(5_000));
        let t0 = Instant::now();
        trace.replay_sharded(&mut tool, 4).expect("replays");
        let dt = t0.elapsed();
        let p = tool.into_profile();
        slices = p.n_slices() as u64;
        std::hint::black_box(p);
        best = best.min(dt);
    }
    (best, slices)
}

/// Per-call cost of a disabled instrument in a tight loop.
fn gated_ns(label: &str, reps: u64, mut f: impl FnMut()) -> f64 {
    assert!(!tq_obs::enabled(), "gate bench must run disabled");
    // Warmup, then best-of-3 batches (best-of filters preemption spikes).
    for _ in 0..reps / 10 {
        f();
    }
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed());
    }
    let ns = best.as_nanos() as f64 / reps as f64;
    println!("  disabled {label}: {ns:.2} ns/call");
    ns
}

fn main() {
    let iters: usize = std::env::var("TQ_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let trace = capture(WfsConfig::small());
    println!(
        "obs overhead guard, wfs small ({} events, best of {iters}):",
        trace.n_events
    );

    // 1. Direct comparison, informational.
    tq_obs::set_enabled(false);
    let (off, slices) = replay_time(&trace, iters);
    tq_obs::set_enabled(true);
    let (on, _) = replay_time(&trace, iters);
    let _ = tq_obs::drain_spans();
    tq_obs::set_enabled(false);
    println!(
        "  replay disabled: {off:?}   enabled: {on:?}   ({:+.2}% when enabled)",
        (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0
    );

    // 2. The guard: tight-loop cost of every disabled fast path.
    const REPS: u64 = 2_000_000;
    let span_ns = gated_ns("span", REPS, || {
        // Create-and-drop on purpose: the disabled fast path is the cost
        // under measurement, not a real scope.
        let guard = tq_obs::span("guard", "bench");
        std::hint::black_box(&guard);
    });
    let counter = tq_obs::counter("tq_bench_guard_total", "obs_overhead guard probe");
    let counter_ns = gated_ns("counter inc", REPS, || counter.inc());
    // The structured log hook: with the master gate off, emit() must cost
    // the same relaxed-load-and-branch as every other instrument — the
    // fields must not even be rendered.
    let log_ns = gated_ns("log emit", REPS, || {
        tq_obs::log::debug(
            "bench",
            "guard_probe",
            &[("value", tq_obs::log::Value::U64(1))],
        );
    });
    // The tq-faults hooks share the same discipline (relaxed load +
    // branch when no plan is installed) and sit on the replay path
    // (slow-replay check in run_tool), so they fall under the same bound.
    tq_faults::clear();
    let fault_ns = {
        assert!(!tq_faults::active(), "fault guard bench must run unplanned");
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..REPS {
                std::hint::black_box(tq_faults::sleep_if(tq_faults::FaultPoint::SlowReplay));
            }
            best = best.min(t0.elapsed());
        }
        let ns = best.as_nanos() as f64 / REPS as f64;
        println!("  disabled fault hook: {ns:.2} ns/call");
        ns
    };
    let per_call_ns = span_ns.max(counter_ns).max(fault_ns).max(log_ns);

    // Gated sites one sharded tquad replay executes: one counter inc per
    // flushed slice, plus a handful of spans (replay_sharded, decode,
    // fork, merge, one per shard) and the per-job fault hooks.
    let gated_calls = slices + 16;
    let bound = (gated_calls as f64 * per_call_ns) / off.as_nanos() as f64;
    println!(
        "  bound: {gated_calls} gated calls x {per_call_ns:.2} ns = \
         {:.4}% of the {off:?} replay (limit 2%)",
        bound * 100.0
    );
    save(
        "obs_overhead.tsv",
        &format!(
            "replay_disabled_s\treplay_enabled_s\tspan_ns\tcounter_ns\tfault_ns\tlog_ns\tgated_calls\tbound_pct\n\
             {:.6}\t{:.6}\t{span_ns:.3}\t{counter_ns:.3}\t{fault_ns:.3}\t{log_ns:.3}\t{gated_calls}\t{:.5}\n",
            off.as_secs_f64(),
            on.as_secs_f64(),
            bound * 100.0
        ),
    );
    assert!(
        bound < 0.02,
        "disabled tq-obs overhead bound {:.4}% exceeds the 2% guard",
        bound * 100.0
    );
    println!("  guard: PASS");
}
