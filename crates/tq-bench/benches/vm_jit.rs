//! Guard bench for the interpreter optimisation levels (`VmOpt`).
//!
//! Times `vm.run()` alone (VM construction allocates the page directory
//! and is excluded; on-CPU time via [`GuardTimer`], so guest-side
//! preemption cancels out of the ratio) on a memory-heavy hot loop at
//! each level, twice:
//!
//! 1. **bare** — no tool attached: pure dispatch throughput, where
//!    pre-decoded fused ops and lowered traces pay off most;
//! 2. **instrumented** — a trace recorder capturing every event: the
//!    profiling configuration, where trace mode additionally batches the
//!    per-event tool dispatch into one `on_events` flush per iteration.
//!
//! The **guard**: the bare `trace` level must be at least
//! [`SPEEDUP_FLOOR`]x faster than `off` (best-of-N on both sides,
//! iterations interleaved round-robin
//! across levels so load bursts cannot bias the ratio), and every level
//! must produce the
//! byte-identical capture digest — the bench fails otherwise, holding the
//! speedup claim and the fidelity contract at once. Results land in
//! `results/vm_dispatch_modes.tsv`.

use std::time::Duration;
use tq_bench::{save, GuardTimer};
use tq_isa::{Asm, BrCond, Inst, MemWidth, Program, Reg};
use tq_trace::TraceRecorder;
use tq_vm::{layout, Vm, VmOpt, VmStats};

/// Speedup floor for bare `trace` over bare `off` (the acceptance
/// criterion checked by `scripts/verify.sh`). Originally 1.5x against
/// the PR-6-era `off` baseline (~73 Minst/s); the off path has since
/// nearly doubled (predecode and event-mask work benefit every level),
/// compressing the ratio while absolute trace throughput held — the
/// floor guards the *relative* claim, so it was re-baselined to 1.25x.
/// The TSV keeps the absolute Minst/s numbers that tell the full story.
const SPEEDUP_FLOOR: f64 = 1.25;

/// A memory-heavy counted loop: address compute + store, load-modify-
/// store, induction step + branch — the shapes the fusion peephole and
/// the trace recorder both target (AddrLd/LdOpSt/IncBr).
fn hot_loop(iters: i32) -> Program {
    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li {
        rd: Reg(1),
        imm: layout::GLOBALS_BASE as i32,
    });
    a.emit(Inst::Li { rd: Reg(2), imm: 0 });
    a.emit(Inst::Li {
        rd: Reg(3),
        imm: iters,
    });
    a.label("loop").unwrap();
    // Three in-place read-modify-write triples (each fuses to LdOpSt)
    // at distinct slots, an address-compute + store pair, then the
    // induction step + branch (fuses to IncBr).
    for (slot, step) in [(8, 3), (16, 5), (24, 7)] {
        a.emit(Inst::Ld {
            rd: Reg(5),
            base: Reg(1),
            off: slot,
            width: MemWidth::B8,
        });
        a.emit(Inst::AddI {
            rd: Reg(5),
            rs1: Reg(5),
            imm: step,
        });
        a.emit(Inst::St {
            rs: Reg(5),
            base: Reg(1),
            off: slot,
            width: MemWidth::B8,
        });
    }
    a.emit(Inst::AddI {
        rd: Reg(4),
        rs1: Reg(1),
        imm: 64,
    });
    a.emit(Inst::St {
        rs: Reg(2),
        base: Reg(4),
        off: 0,
        width: MemWidth::B8,
    });
    a.emit(Inst::AddI {
        rd: Reg(2),
        rs1: Reg(2),
        imm: 1,
    });
    a.br(BrCond::Lt, Reg(2), Reg(3), "loop");
    a.emit(Inst::Halt);
    let img = a.finish("jit", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    Program::new(img, entry)
}

struct Run {
    wall: Duration,
    icount: u64,
    digest: Option<String>,
    stats: VmStats,
}

/// One run at `opt`; only `vm.run()` is inside the timed window.
fn run_once(program: &Program, opt: VmOpt, instrument: bool) -> Run {
    let mut vm = Vm::new(program.clone()).expect("loads");
    vm.set_vm_opt(opt);
    let h = instrument.then(|| vm.attach_tool(Box::new(TraceRecorder::new())));
    let t0 = GuardTimer::start();
    let exit = vm.run(None).expect("runs");
    let wall = t0.elapsed();
    let stats = *vm.stats();
    let digest = h.map(|h| {
        vm.detach_tool::<TraceRecorder>(h)
            .expect("recorder")
            .into_trace()
            .digest()
    });
    Run {
        wall,
        icount: exit.icount,
        digest,
        stats,
    }
}

/// Fold one more observation into a best-of-N slot. Keeping the minimum
/// filters preemption spikes; the *caller* interleaves iterations
/// round-robin across configurations, so a background-load burst inflates
/// every mode's round equally instead of biasing whichever mode happened
/// to own the timer when it hit (the speedup guard is a ratio — on a
/// loaded single-core box, sequential per-mode loops flake it both ways).
fn fold_best(best: &mut Option<Run>, r: Run, opt: VmOpt) {
    match best {
        None => *best = Some(r),
        Some(b) => {
            assert_eq!(r.icount, b.icount, "{opt}: icount unstable across reps");
            if r.wall < b.wall {
                b.wall = r.wall;
            }
        }
    }
}

fn mips(r: &Run) -> f64 {
    r.icount as f64 / r.wall.as_secs_f64() / 1e6
}

fn main() {
    let iters: usize = std::env::var("TQ_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let program = hot_loop(1_500_000);
    let modes = [VmOpt::Off, VmOpt::Fuse, VmOpt::Trace];

    println!("vm_jit: 1.5M-iteration memory loop, best of {iters}, vm.run() only");
    let mut tsv = String::from(
        "mode\tbare_s\tbare_mips\tinstr_s\tinstr_mips\tblocks_fused\ttraces_recorded\ttrace_share\tdigest\n",
    );
    let mut bare_best: Vec<Option<Run>> = modes.iter().map(|_| None).collect();
    let mut inst_best: Vec<Option<Run>> = modes.iter().map(|_| None).collect();
    for _ in 0..iters {
        for (mi, &opt) in modes.iter().enumerate() {
            fold_best(&mut bare_best[mi], run_once(&program, opt, false), opt);
            fold_best(&mut inst_best[mi], run_once(&program, opt, true), opt);
        }
    }
    let mut bare = Vec::new();
    let mut inst = Vec::new();
    for (mi, &opt) in modes.iter().enumerate() {
        let b = bare_best[mi].take().expect("at least one iteration");
        let i = inst_best[mi].take().expect("at least one iteration");
        println!(
            "  {opt:<5} bare {:>10?} ({:>7.1} Minst/s)   instrumented {:>10?} ({:>7.1} Minst/s)",
            b.wall,
            mips(&b),
            i.wall,
            mips(&i),
        );
        tsv.push_str(&format!(
            "{opt}\t{:.6}\t{:.1}\t{:.6}\t{:.1}\t{}\t{}\t{:.4}\t{}\n",
            b.wall.as_secs_f64(),
            mips(&b),
            i.wall.as_secs_f64(),
            mips(&i),
            i.stats.blocks_fused,
            i.stats.traces_recorded,
            i.stats.trace_instr_share(i.icount),
            i.digest.as_deref().unwrap_or("-"),
        ));
        bare.push(b);
        inst.push(i);
    }

    // Fidelity: every level records the byte-identical capture.
    for (opt, i) in modes.iter().zip(&inst) {
        assert_eq!(
            i.digest, inst[0].digest,
            "{opt}: capture digest diverged from off"
        );
        assert_eq!(i.icount, inst[0].icount, "{opt}: icount diverged");
    }
    // The machinery engaged: fuse found superinstructions, trace mode ran
    // most of the loop inside lowered traces.
    assert!(inst[1].stats.blocks_fused >= 1, "fusion never engaged");
    assert!(inst[2].stats.traces_recorded >= 1, "no trace recorded");
    let share = inst[2].stats.trace_instr_share(inst[2].icount);
    assert!(share > 0.9, "trace share too low: {share:.4}");

    let speedup = bare[0].wall.as_secs_f64() / bare[2].wall.as_secs_f64();
    let instr_speedup = inst[0].wall.as_secs_f64() / inst[2].wall.as_secs_f64();
    println!(
        "  speedup trace vs off: bare {speedup:.2}x, instrumented {instr_speedup:.2}x \
         (floor {SPEEDUP_FLOOR}x on bare)"
    );
    tsv.push_str(&format!(
        "# speedup_bare={speedup:.3} speedup_instrumented={instr_speedup:.3} floor={SPEEDUP_FLOOR}\n"
    ));
    save("vm_dispatch_modes.tsv", &tsv);
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "bare trace speedup {speedup:.2}x is below the {SPEEDUP_FLOOR}x floor"
    );
    println!("  guard: PASS");
}
