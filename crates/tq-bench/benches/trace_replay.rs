//! Bench: analysing from a recorded trace versus re-running the
//! instrumented VM — the payoff of the capture-once/analyse-many
//! architecture for parameter sweeps like §V.B. Plain timing harness
//! (`tq_bench::bench`).

use tq_bench::bench;
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::TraceRecorder;
use tq_wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::tiny());

    // Capture once, outside the timed region.
    let mut vm = app.make_vm();
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("capture run");
    let trace = vm.detach_tool::<TraceRecorder>(r).unwrap().into_trace();

    bench("tquad_analysis/live_rerun", || {
        let mut vm = app.make_vm();
        let t = vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(5_000),
        )));
        vm.run(None).expect("runs");
        vm.detach_tool::<TquadTool>(t)
            .unwrap()
            .into_profile()
            .n_slices()
    });
    bench("tquad_analysis/trace_replay", || {
        let mut tool = TquadTool::new(TquadOptions::default().with_interval(5_000));
        trace.replay(&mut tool).expect("replays");
        tool.into_profile().n_slices()
    });
}
