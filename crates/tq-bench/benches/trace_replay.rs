//! Bench: analysing from a recorded trace versus re-running the
//! instrumented VM — the payoff of the capture-once/analyse-many
//! architecture for parameter sweeps like §V.B — plus the sharded-replay
//! scaling sweep (shards vs wall clock on one wfs capture). Plain timing
//! harness (`tq_bench::bench`).

use std::time::{Duration, Instant};
use tq_bench::{bench, save};
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::{Trace, TraceRecorder};
use tq_wfs::{WfsApp, WfsConfig};

fn capture(config: WfsConfig) -> Trace {
    let app = WfsApp::build(config);
    let mut vm = app.make_vm();
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("capture run");
    vm.detach_tool::<TraceRecorder>(r).unwrap().into_trace()
}

/// Best-of-N wall clock for one sharded tquad replay.
fn sharded_time(trace: &Trace, jobs: usize, iters: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let mut tool = TquadTool::new(TquadOptions::default().with_interval(5_000));
        let t0 = Instant::now();
        trace.replay_sharded(&mut tool, jobs).expect("replays");
        let dt = t0.elapsed();
        std::hint::black_box(tool.into_profile().n_slices());
        best = best.min(dt);
    }
    best
}

fn main() {
    let app = WfsApp::build(WfsConfig::tiny());

    // Capture once, outside the timed region.
    let mut vm = app.make_vm();
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("capture run");
    let trace = vm.detach_tool::<TraceRecorder>(r).unwrap().into_trace();

    bench("tquad_analysis/live_rerun", || {
        let mut vm = app.make_vm();
        let t = vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(5_000),
        )));
        vm.run(None).expect("runs");
        vm.detach_tool::<TquadTool>(t)
            .unwrap()
            .into_profile()
            .n_slices()
    });
    bench("tquad_analysis/trace_replay", || {
        let mut tool = TquadTool::new(TquadOptions::default().with_interval(5_000));
        trace.replay(&mut tool).expect("replays");
        tool.into_profile().n_slices()
    });

    // Shard-count sweep on a bigger capture (tiny replays in microseconds,
    // which only measures thread spawn overhead). The index is embedded
    // once at capture time — exactly what the capture paths in tq-cli and
    // tq-profd do — so the timed region is the pure parallel replay.
    let iters: usize = std::env::var("TQ_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let big = capture(WfsConfig::small())
        .with_chunk_index(tq_trace::DEFAULT_CHUNKS)
        .expect("chunk index");
    let seq = sharded_time(&big, 1, iters);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut report = format!(
        "# cores={cores} events={}\njobs\tseconds\tspeedup\n",
        big.n_events
    );
    println!(
        "sharded tquad replay, wfs small ({} events, {cores} core(s) — \
         speedup is bounded by the core count):",
        big.n_events
    );
    for jobs in [1usize, 2, 4, 8] {
        let dt = if jobs == 1 {
            seq
        } else {
            sharded_time(&big, jobs, iters)
        };
        let speedup = seq.as_secs_f64() / dt.as_secs_f64();
        println!("  jobs {jobs}: {dt:?}  ({speedup:.2}x vs sequential)");
        report.push_str(&format!("{jobs}\t{:.6}\t{speedup:.3}\n", dt.as_secs_f64()));
    }
    save("trace_replay_shards.tsv", &report);
}
