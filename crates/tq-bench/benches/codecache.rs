//! Ablation: Pin's decode-once code cache versus naive re-decoding (and
//! re-instrumenting) every block execution — the architectural choice the
//! whole DBI approach rests on. Plain timing harness (`tq_bench::bench`).

use tq_bench::bench;
use tq_tquad::{TquadOptions, TquadTool};
use tq_wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::tiny());

    for (label, enabled) in [("cached", true), ("naive_redecoding", false)] {
        bench(&format!("codecache/{label}"), || {
            let mut vm = app.make_vm();
            vm.set_cache_enabled(enabled);
            vm.attach_tool(Box::new(TquadTool::new(
                TquadOptions::default().with_interval(20_000),
            )));
            vm.run(None).expect("runs")
        });
    }
}
