//! Ablation: Pin's decode-once code cache versus naive re-decoding (and
//! re-instrumenting) every block execution — the architectural choice the
//! whole DBI approach rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use tq_tquad::{TquadOptions, TquadTool};
use tq_wfs::{WfsApp, WfsConfig};

fn bench_codecache(c: &mut Criterion) {
    let app = WfsApp::build(WfsConfig::tiny());
    let mut g = c.benchmark_group("codecache");
    g.sample_size(10);

    for (label, enabled) in [("cached", true), ("naive_redecoding", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut vm = app.make_vm();
                vm.set_cache_enabled(enabled);
                vm.attach_tool(Box::new(TquadTool::new(
                    TquadOptions::default().with_interval(20_000),
                )));
                vm.run(None).expect("runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codecache);
criterion_main!(benches);
