//! Bench: the TQTRACE3 columnar format — encoded size per format, the
//! decoded-memory footprint of streaming versus whole-stream replay, and
//! the replay-time cost of decoding columns on the fly. Doubles as a
//! fidelity guard: every format must load back bit-identical, streaming
//! profiles must match in-memory ones, and v3 must hit its ≤ 0.7× size
//! contract on the wfs capture (the same gate `scripts/verify.sh` holds
//! on the CLI path).

use tq_bench::save;
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::{StreamingTrace, Trace, TraceFormat, TraceRecorder};
use tq_wfs::{WfsApp, WfsConfig};

fn capture(config: WfsConfig) -> Trace {
    let app = WfsApp::build(config);
    let mut vm = app.make_vm();
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("capture run");
    vm.detach_tool::<TraceRecorder>(r)
        .unwrap()
        .into_trace()
        .with_chunk_index(tq_trace::DEFAULT_CHUNKS)
        .expect("chunk index")
}

fn encoded(trace: &Trace, format: TraceFormat) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace.save_as(&mut bytes, format).expect("save");
    bytes
}

fn profile_of(trace: &Trace) -> tq_tquad::TquadProfile {
    let mut tool = TquadTool::new(TquadOptions::default().with_interval(5_000));
    trace.replay(&mut tool).expect("replay");
    tool.into_profile()
}

fn streaming_profile(st: &StreamingTrace, jobs: usize) -> tq_tquad::TquadProfile {
    let mut tool = TquadTool::new(TquadOptions::default().with_interval(5_000));
    if jobs > 1 {
        st.replay_sharded(&mut tool, jobs).expect("sharded replay");
    } else {
        st.replay(&mut tool).expect("streaming replay");
    }
    tool.into_profile()
}

fn main() {
    let trace = capture(WfsConfig::small());
    let stream_bytes = trace.events.len();
    let n_events = trace.n_events as usize;
    let want = profile_of(&trace);

    let mut report = String::from("format\tbytes\tratio_vs_v2\tbytes_per_event\n");
    let v2_len = encoded(&trace, TraceFormat::V2).len();
    println!("wfs small capture: {n_events} events, {stream_bytes} decoded event-stream bytes");
    let mut v3_len = v2_len;
    for (name, format) in [
        ("v1", TraceFormat::V1),
        ("v2", TraceFormat::V2),
        ("v3", TraceFormat::V3),
    ] {
        let bytes = encoded(&trace, format);
        let loaded = Trace::load(&mut bytes.as_slice()).expect("loads back");
        assert_eq!(
            loaded.digest(),
            trace.digest(),
            "{name} loads bit-identical"
        );
        let ratio = bytes.len() as f64 / v2_len as f64;
        println!(
            "  {name}: {} bytes ({ratio:.3}x v2, {:.2} B/event)",
            bytes.len(),
            bytes.len() as f64 / n_events as f64
        );
        report.push_str(&format!(
            "{name}\t{}\t{ratio:.4}\t{:.4}\n",
            bytes.len(),
            bytes.len() as f64 / n_events as f64
        ));
        if format == TraceFormat::V3 {
            v3_len = bytes.len();
        }
    }
    assert!(
        v3_len as f64 <= 0.7 * v2_len as f64,
        "v3 size contract broken: {v3_len} > 0.7 * {v2_len}"
    );

    // Streaming decoded-memory footprint: a whole-stream replay holds all
    // `n_events` rows decoded at once; the lazy reader holds one chunk's
    // rows per replay thread. Report the bound and hold the fidelity gate.
    let st = StreamingTrace::from_bytes(encoded(&trace, TraceFormat::V3)).expect("streaming open");
    let largest_chunk_rows = (0..st.n_chunks())
        .map(|k| st.chunk_rows(k).expect("chunk decodes").len())
        .max()
        .unwrap_or(0);
    println!(
        "streaming: {} chunks, largest decoded chunk {} bytes \
         ({:.1}% of the full stream); resident file image {} bytes",
        st.n_chunks(),
        largest_chunk_rows,
        100.0 * largest_chunk_rows as f64 / stream_bytes as f64,
        st.resident_bytes()
    );
    assert!(
        largest_chunk_rows < stream_bytes,
        "streaming must decode strictly less than the whole stream at once"
    );
    for jobs in [1usize, 4] {
        assert_eq!(
            streaming_profile(&st, jobs),
            want,
            "streaming replay (jobs={jobs}) must be byte-identical"
        );
    }
    report.push_str(&format!(
        "streaming_peak_chunk\t{largest_chunk_rows}\t{:.4}\t-\n",
        largest_chunk_rows as f64 / stream_bytes as f64
    ));

    save("trace_v3.tsv", &report);
    println!("trace_v3: all fidelity and size gates passed");
}
