//! Superinstruction dispatch plan over a cached basic block.
//!
//! At decode time (so, once per block — the same place Pin pays its
//! instrumentation costs) [`build_ops`] runs the [`tq_isa::fuse_window`]
//! peephole over the block body and produces the *dispatch plan*: a dense
//! array of [`BlockOp`]s where the dominant pairs/triples collapse into one
//! [`tq_isa::Fused`] op each. Execution then makes one dispatch decision per
//! `BlockOp` instead of per instruction.
//!
//! Fused execution is semantically the constituent instructions run in
//! original order: the virtual clock advances once per constituent, register
//! effects land in constituent order (so intra-group aliasing behaves
//! exactly as unfused), and memory events fire against the constituent's own
//! [`DecodedInst`] — same `ip`, same `icount`, same hook set. A memory fault
//! inside a group leaves precisely the architectural state the unfused
//! sequence would have left.

use crate::vm::{Block, DecodedInst, Next, Vm, VmError};
use tq_isa::{Fused, Inst};

/// One dispatch unit of a block: either a plain instruction (by index into
/// `Block::insts`) or a fused group starting at `base`.
pub(crate) enum BlockOp {
    /// Execute `Block::insts[i]` as-is.
    Single(u16),
    /// Execute the fused group covering `insts[base .. base + f.arity()]`.
    Fused {
        /// The superinstruction.
        f: Fused,
        /// Index of the first constituent in `Block::insts`.
        base: u16,
    },
}

/// Build the fused dispatch plan for a decoded block body.
///
/// A group is never allowed to start at a routine head: the routine-entry
/// event must fire from the plain path before any constituent executes.
pub(crate) fn build_ops(insts: &[DecodedInst]) -> Box<[BlockOp]> {
    let mut ops = Vec::with_capacity(insts.len());
    let mut i = 0usize;
    while i < insts.len() {
        let fusable_here = !(i == 0 && insts[0].rtn_enter);
        if fusable_here {
            let end = (i + 3).min(insts.len());
            let mut w = [Inst::Nop; 3];
            for (k, d) in insts[i..end].iter().enumerate() {
                w[k] = d.inst;
            }
            if let Some((f, n)) = tq_isa::fuse_window(&w[..end - i]) {
                ops.push(BlockOp::Fused { f, base: i as u16 });
                i += n;
                continue;
            }
        }
        ops.push(BlockOp::Single(i as u16));
        i += 1;
    }
    ops.into_boxed_slice()
}

/// Execute one [`BlockOp`] on the *fast* path: the caller has already
/// guaranteed that neither the fuel limit nor a tick boundary can fall
/// inside the remainder of the block, so per-instruction checks are
/// skipped. `seg` locates the block inside the executing trace for buffered
/// event delivery (`BUF = true`); it is ignored otherwise.
#[inline]
pub(crate) fn exec_op<const BUF: bool>(
    vm: &mut Vm,
    block: &Block,
    op: &BlockOp,
    seg: u32,
) -> Result<Next, VmError> {
    match *op {
        BlockOp::Single(i) => {
            let d = &block.insts[i as usize];
            vm.icount += 1;
            if !BUF {
                vm.fire_rtn_enter(d);
            }
            vm.exec::<BUF>(d, seg, i)
        }
        BlockOp::Fused { ref f, base } => exec_fused::<BUF>(vm, block, f, base, seg),
    }
}

/// Execute a fused group. Register reads happen at each constituent's turn
/// (from the live register file), so intra-group def-use chains and aliasing
/// match the unfused interpreter exactly.
fn exec_fused<const BUF: bool>(
    vm: &mut Vm,
    block: &Block,
    f: &Fused,
    base: u16,
    seg: u32,
) -> Result<Next, VmError> {
    let merr = |pc: u64| move |err| VmError::Mem { pc, err };
    match *f {
        Fused::AddrLd {
            a_rd,
            a_rs1,
            a_imm,
            rd,
            off,
            width,
        } => {
            vm.icount += 1;
            let addr = vm.regs[a_rs1.idx()].wrapping_add(a_imm as i64 as u64);
            vm.regs[a_rd.idx()] = addr;

            let d = &block.insts[base as usize + 1];
            vm.icount += 1;
            let ea = addr.wrapping_add(off as i64 as u64);
            let size = width.bytes();
            let v = vm.mem.read_uint(ea, size).map_err(merr(d.pc))?;
            vm.regs[rd.idx()] = v;
            vm.fire_mem_read::<BUF>(d, seg, base + 1, ea, size, false);
        }
        Fused::AddrFLd {
            a_rd,
            a_rs1,
            a_imm,
            fd,
            off,
        } => {
            vm.icount += 1;
            let addr = vm.regs[a_rs1.idx()].wrapping_add(a_imm as i64 as u64);
            vm.regs[a_rd.idx()] = addr;

            let d = &block.insts[base as usize + 1];
            vm.icount += 1;
            let ea = addr.wrapping_add(off as i64 as u64);
            let v = vm.mem.read_f64(ea).map_err(merr(d.pc))?;
            vm.fregs[fd.idx()] = v;
            vm.fire_mem_read::<BUF>(d, seg, base + 1, ea, 8, false);
        }
        Fused::LdOp {
            rd,
            base: b,
            off,
            width,
            o_rd,
            o_imm,
        } => {
            let d = &block.insts[base as usize];
            vm.icount += 1;
            let ea = vm.regs[b.idx()].wrapping_add(off as i64 as u64);
            let size = width.bytes();
            let v = vm.mem.read_uint(ea, size).map_err(merr(d.pc))?;
            vm.regs[rd.idx()] = v;
            vm.fire_mem_read::<BUF>(d, seg, base, ea, size, false);

            vm.icount += 1;
            vm.regs[o_rd.idx()] = v.wrapping_add(o_imm as i64 as u64);
        }
        Fused::OpSt {
            a_rd,
            a_rs1,
            a_imm,
            base: b,
            off,
            width,
        } => {
            vm.icount += 1;
            let val = vm.regs[a_rs1.idx()].wrapping_add(a_imm as i64 as u64);
            vm.regs[a_rd.idx()] = val;

            let d = &block.insts[base as usize + 1];
            vm.icount += 1;
            // The store base may alias `a_rd`; read it after the op landed.
            let ea = vm.regs[b.idx()].wrapping_add(off as i64 as u64);
            let size = width.bytes();
            vm.mem.write_uint(ea, size, val).map_err(merr(d.pc))?;
            vm.fire_mem_write::<BUF>(d, seg, base + 1, ea, size);
        }
        Fused::LdOpSt {
            rd,
            base: b,
            off,
            width,
            o_rd,
            o_imm,
            s_base,
            s_off,
            s_width,
        } => {
            let d = &block.insts[base as usize];
            vm.icount += 1;
            let ea = vm.regs[b.idx()].wrapping_add(off as i64 as u64);
            let size = width.bytes();
            let v = vm.mem.read_uint(ea, size).map_err(merr(d.pc))?;
            vm.regs[rd.idx()] = v;
            vm.fire_mem_read::<BUF>(d, seg, base, ea, size, false);

            vm.icount += 1;
            let w = v.wrapping_add(o_imm as i64 as u64);
            vm.regs[o_rd.idx()] = w;

            let d = &block.insts[base as usize + 2];
            vm.icount += 1;
            // The store base may alias `rd` or `o_rd`; read it live.
            let s_ea = vm.regs[s_base.idx()].wrapping_add(s_off as i64 as u64);
            let s_size = s_width.bytes();
            vm.mem.write_uint(s_ea, s_size, w).map_err(merr(d.pc))?;
            vm.fire_mem_write::<BUF>(d, seg, base + 2, s_ea, s_size);
        }
        Fused::IncBr {
            a_rd,
            a_rs1,
            a_imm,
            cond,
            rs1,
            rs2,
            target,
        } => {
            vm.icount += 1;
            vm.regs[a_rd.idx()] = vm.regs[a_rs1.idx()].wrapping_add(a_imm as i64 as u64);

            vm.icount += 1;
            if cond.eval(vm.regs[rs1.idx()], vm.regs[rs2.idx()]) {
                return Ok(Next::Jump(target as u64));
            }
        }
    }
    Ok(Next::Fall)
}
