//! Sparse paged memory.
//!
//! A flat 4 GiB simulated address space backed by lazily-allocated 4 KiB
//! pages behind a single-level page directory (a `Vec` of `Option<Box>`es —
//! one pointer per possible page, ~8 MiB of directory for the whole space,
//! O(1) translation). Fresh pages are zero-filled, which the kernel compiler
//! relies on for BSS-style globals.
//!
//! The hot paths (`read_u64`/`write_u64` and friends) take the in-page fast
//! path when the access does not straddle a page boundary and fall back to a
//! byte loop otherwise, so unaligned accesses are always legal — profilers
//! care about *addresses and sizes*, not alignment faults.

use crate::layout::ADDR_SPACE_END;

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;
const PAGE_SHIFT: u32 = 12;
const NUM_PAGES: usize = (ADDR_SPACE_END >> PAGE_SHIFT) as usize;

/// Error for accesses outside the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfRange {
    /// Offending address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
}

impl std::fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory access at {:#x} ({} bytes) outside the address space",
            self.addr, self.size
        )
    }
}

impl std::error::Error for OutOfRange {}

type Page = Box<[u8; PAGE_SIZE]>;

/// The simulated memory.
pub struct Memory {
    pages: Vec<Option<Page>>,
    /// Bytes of backing store actually allocated (for statistics).
    resident_pages: usize,
}

impl Memory {
    /// Fresh, all-zero memory.
    pub fn new() -> Self {
        let mut pages = Vec::new();
        pages.resize_with(NUM_PAGES, || None);
        Memory {
            pages,
            resident_pages: 0,
        }
    }

    /// Number of 4 KiB pages currently materialised.
    pub fn resident_pages(&self) -> usize {
        self.resident_pages
    }

    #[inline]
    fn check(&self, addr: u64, size: u32) -> Result<(), OutOfRange> {
        if addr
            .checked_add(size as u64)
            .is_some_and(|end| end <= ADDR_SPACE_END)
        {
            Ok(())
        } else {
            Err(OutOfRange { addr, size })
        }
    }

    #[inline]
    fn page_mut(&mut self, page_idx: usize) -> &mut [u8; PAGE_SIZE] {
        let slot = &mut self.pages[page_idx];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE]));
            self.resident_pages += 1;
        }
        slot.as_mut().unwrap()
    }

    /// Read `buf.len()` bytes starting at `addr`. Unmapped pages read as
    /// zero without being materialised.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfRange> {
        self.check(addr, buf.len() as u32)?;
        let mut a = addr;
        let mut rest = buf;
        while !rest.is_empty() {
            let page_idx = (a >> PAGE_SHIFT) as usize;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            match &self.pages[page_idx] {
                Some(p) => rest[..n].copy_from_slice(&p[off..off + n]),
                None => rest[..n].fill(0),
            }
            a += n as u64;
            rest = &mut rest[n..];
        }
        Ok(())
    }

    /// Write `buf` starting at `addr`.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), OutOfRange> {
        self.check(addr, buf.len() as u32)?;
        let mut a = addr;
        let mut rest = buf;
        while !rest.is_empty() {
            let page_idx = (a >> PAGE_SHIFT) as usize;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            self.page_mut(page_idx)[off..off + n].copy_from_slice(&rest[..n]);
            a += n as u64;
            rest = &rest[n..];
        }
        Ok(())
    }

    /// Read an unsigned little-endian integer of `size` ∈ {1,2,4,8} bytes.
    #[inline]
    pub fn read_uint(&self, addr: u64, size: u32) -> Result<u64, OutOfRange> {
        self.check(addr, size)?;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + size as usize <= PAGE_SIZE {
            // Fast path: within one page.
            let page_idx = (addr >> PAGE_SHIFT) as usize;
            let bytes: &[u8] = match &self.pages[page_idx] {
                Some(p) => &p[off..off + size as usize],
                None => return Ok(0),
            };
            Ok(match size {
                1 => bytes[0] as u64,
                2 => u16::from_le_bytes(bytes.try_into().unwrap()) as u64,
                4 => u32::from_le_bytes(bytes.try_into().unwrap()) as u64,
                8 => u64::from_le_bytes(bytes.try_into().unwrap()),
                _ => unreachable!("unsupported access size"),
            })
        } else {
            let mut buf = [0u8; 8];
            self.read(addr, &mut buf[..size as usize])?;
            Ok(u64::from_le_bytes(buf))
        }
    }

    /// Write the low `size` ∈ {1,2,4,8} bytes of `value`, little-endian.
    #[inline]
    pub fn write_uint(&mut self, addr: u64, size: u32, value: u64) -> Result<(), OutOfRange> {
        self.check(addr, size)?;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + size as usize <= PAGE_SIZE {
            let page_idx = (addr >> PAGE_SHIFT) as usize;
            let page = self.page_mut(page_idx);
            let le = value.to_le_bytes();
            page[off..off + size as usize].copy_from_slice(&le[..size as usize]);
            Ok(())
        } else {
            let le = value.to_le_bytes();
            self.write(addr, &le[..size as usize])
        }
    }

    /// Read an `f64`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> Result<f64, OutOfRange> {
        Ok(f64::from_bits(self.read_uint(addr, 8)?))
    }

    /// Write an `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), OutOfRange> {
        self.write_uint(addr, 8, v.to_bits())
    }

    /// Read an `f32`, widened to `f64`.
    #[inline]
    pub fn read_f32(&self, addr: u64) -> Result<f64, OutOfRange> {
        Ok(f32::from_bits(self.read_uint(addr, 4)? as u32) as f64)
    }

    /// Narrow `v` to `f32` and write it.
    #[inline]
    pub fn write_f32(&mut self, addr: u64, v: f64) -> Result<(), OutOfRange> {
        self.write_uint(addr, 4, (v as f32).to_bits() as u64)
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read_uint(0x1234, 8).unwrap(), 0);
        assert_eq!(m.resident_pages(), 0, "reads must not materialise pages");
    }

    #[test]
    fn read_your_writes_all_sizes() {
        let mut m = Memory::new();
        for (size, val) in [
            (1u32, 0xAB),
            (2, 0xBEEF),
            (4, 0xDEAD_BEEF),
            (8, 0x0123_4567_89AB_CDEF),
        ] {
            let addr = 0x10_0000 + size as u64 * 64;
            m.write_uint(addr, size, val).unwrap();
            assert_eq!(m.read_uint(addr, size).unwrap(), val);
        }
    }

    #[test]
    fn narrow_writes_truncate() {
        let mut m = Memory::new();
        m.write_uint(0x2000, 1, 0x1FF).unwrap();
        assert_eq!(m.read_uint(0x2000, 1).unwrap(), 0xFF);
        assert_eq!(m.read_uint(0x2001, 1).unwrap(), 0, "neighbour untouched");
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (PAGE_SIZE as u64) * 7 - 3; // straddles pages 6 and 7
        m.write_uint(addr, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_uint(addr, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_read_write_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write(0x5_0000 - 17, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(0x5_0000 - 17, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn floats_roundtrip() {
        let mut m = Memory::new();
        m.write_f64(0x100, -1234.5e-6).unwrap();
        assert_eq!(m.read_f64(0x100).unwrap(), -1234.5e-6);
        m.write_f32(0x108, 0.5).unwrap();
        assert_eq!(m.read_f32(0x108).unwrap(), 0.5);
        // f32 narrowing loses precision but must be deterministic.
        m.write_f32(0x10C, 1.0 + 1e-12).unwrap();
        assert_eq!(m.read_f32(0x10C).unwrap(), 1.0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Memory::new();
        assert!(m.write_uint(ADDR_SPACE_END - 4, 8, 1).is_err());
        assert!(m.read_uint(u64::MAX - 2, 4).is_err());
        assert!(m.write_uint(ADDR_SPACE_END - 8, 8, 1).is_ok());
    }
}
