//! Reduced-instrumentation modes: per-routine filters, slice-level
//! sampling and convergence gating (`--instr`, DESIGN.md §14).
//!
//! Full instrumentation is the accuracy gold standard — every memory
//! event constructed and delivered. The three reduced modes trade a
//! *measured* amount of accuracy for instrumented-run wall-time:
//!
//! * **filter** — an include/exclude set over routine names; excluded
//!   routines are simply never instrumented (their cached blocks carry no
//!   hooks), so they construct no events at all. An all-routines filter
//!   is byte-identical to full by construction.
//! * **sample** — record every k-th time slice. Slices are phase-aligned
//!   to the virtual clock and the live phase is deterministic from the
//!   run seed, so a sampled run is exactly reproducible. Tools
//!   reconstruct full-run profiles by carrying each sampled slice
//!   forward over the skipped ones.
//! * **converge** — stop delivering a routine's memory events once its
//!   per-slice byte profile has been stable within a tolerance for N
//!   consecutive slices, re-probing periodically and un-gating on drift.
//!   The gating gaps are recorded in [`InstrInfo`] so tools can carry
//!   the last measured slice across each gap.
//!
//! Only **memory events** are gated. Control events (routine entries,
//! calls, returns) and ticks always fire: tools keep exact call stacks
//! and exact slice boundaries under every mode, so the only quantity
//! that degrades is per-slice byte counts — precisely the quantity the
//! accuracy bench ([`docs/ACCURACY.md`]) bounds against the full
//! baseline.
//!
//! The same [`InstrGate`] state machine drives the live VM hot path and
//! the replay-side emulation (`tq-profd` applies a mode to a full
//! capture by feeding the recorded events through a gate): both are pure
//! functions of the instrumented event stream, so a live gated capture
//! replays identically to a gated replay of a full capture.

use tq_isa::RoutineId;

/// Default gating-slice width in instructions (matches the tQUAD tool's
/// default `--interval`, so reconstruction is slice-exact by default).
pub const DEFAULT_SLICE_LEN: u64 = 20_000;

/// Per-routine instrumentation filter: either an include-list (only the
/// named routines are instrumented) or an exclude-list (everything but).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineFilter {
    /// True: `names` are excluded, the rest instrumented. False: only
    /// `names` are instrumented.
    pub exclude: bool,
    /// Routine names; empty with `exclude = false` means "all routines"
    /// (the spelled-out `filter:*`, byte-identical to full).
    pub names: Vec<String>,
}

impl RoutineFilter {
    /// True when the filter keeps every routine instrumented.
    pub fn is_all(&self) -> bool {
        self.names.is_empty()
    }
}

/// Slice-level sampling parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleSpec {
    /// Record every `period`-th slice (must be ≥ 1; 1 degenerates to
    /// full).
    pub period: u64,
    /// Gating-slice width in instructions.
    pub slice_len: u64,
    /// Run seed; the live phase within the period is derived from it
    /// (splitmix-style), so two runs with one seed sample identically.
    pub seed: u64,
}

impl SampleSpec {
    /// The live phase within the period, derived deterministically from
    /// the seed: slice `s` is recorded iff `s % period == offset`.
    pub fn offset(&self) -> u64 {
        if self.period <= 1 {
            return 0;
        }
        // splitmix64 finalizer over the seed (and the parameters, so
        // different configurations decorrelate).
        let mut h = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.period.rotate_left(17))
            .wrapping_add(self.slice_len.rotate_left(41));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        h % self.period
    }
}

/// Convergence-gating parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergeSpec {
    /// Relative tolerance for "stable": two consecutive per-slice byte
    /// counts within `tolerance` of each other extend the streak.
    pub tolerance: f64,
    /// Consecutive stable slices before a routine's memory events stop.
    pub window: u32,
    /// Re-probe every `reprobe` slices: gated routines are measured for
    /// one slice (without emitting) and un-gated if they drifted.
    pub reprobe: u64,
    /// Gating-slice width in instructions.
    pub slice_len: u64,
}

/// A parsed `--instr` mode: a filter composed with at most one of
/// sampling or convergence gating.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct InstrMode {
    /// Per-routine filter, if any.
    pub filter: Option<RoutineFilter>,
    /// Slice sampling, if any (mutually exclusive with `converge`).
    pub sample: Option<SampleSpec>,
    /// Convergence gating, if any (mutually exclusive with `sample`).
    pub converge: Option<ConvergeSpec>,
}

impl InstrMode {
    /// The full-instrumentation mode.
    pub fn full() -> InstrMode {
        InstrMode::default()
    }

    /// True when the mode is observationally full instrumentation: no
    /// gating and a filter (if any) that keeps every routine.
    pub fn is_full(&self) -> bool {
        self.sample.is_none()
            && self.converge.is_none()
            && self.filter.as_ref().map(|f| f.is_all()).unwrap_or(true)
    }

    /// Gating-slice width, or 0 when no slice gating is active.
    pub fn slice_len(&self) -> u64 {
        if let Some(s) = &self.sample {
            s.slice_len
        } else if let Some(c) = &self.converge {
            c.slice_len
        } else {
            0
        }
    }

    /// Parse a `--instr` specification.
    ///
    /// Grammar (parts composable with `+`; `sample` and `converge` are
    /// mutually exclusive):
    ///
    /// ```text
    /// full
    /// filter:*                     all routines (byte-identical to full)
    /// filter:a,b,c                 instrument only these routines
    /// filter:!a,b                  instrument everything but these
    /// sample:K[/SLICE][@SEED]      record every K-th SLICE-instr slice
    /// converge:TOL,N[,R][/SLICE]   gate after N stable slices (rel. TOL),
    ///                              re-probe every R slices (default 8N)
    /// ```
    pub fn parse(spec: &str) -> Result<InstrMode, String> {
        let mut mode = InstrMode::default();
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty --instr spec".into());
        }
        for part in spec.split('+') {
            let part = part.trim();
            if part == "full" {
                continue;
            }
            let (kind, arg) = match part.split_once(':') {
                Some((k, a)) => (k, a),
                None => {
                    return Err(format!(
                        "bad --instr part `{part}` (full|filter:...|sample:...|converge:...)"
                    ))
                }
            };
            match kind {
                "filter" => {
                    if mode.filter.is_some() {
                        return Err("duplicate filter: in --instr".into());
                    }
                    mode.filter = Some(parse_filter(arg)?);
                }
                "sample" => {
                    if mode.sample.is_some() {
                        return Err("duplicate sample: in --instr".into());
                    }
                    mode.sample = Some(parse_sample(arg)?);
                }
                "converge" => {
                    if mode.converge.is_some() {
                        return Err("duplicate converge: in --instr".into());
                    }
                    mode.converge = Some(parse_converge(arg)?);
                }
                other => return Err(format!("unknown --instr part `{other}`")),
            }
        }
        if mode.sample.is_some() && mode.converge.is_some() {
            return Err("sample and converge cannot be combined".into());
        }
        Ok(mode)
    }
}

impl std::fmt::Display for InstrMode {
    /// Canonical spec string — re-parses to an equal mode.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(fl) = &self.filter {
            if fl.names.is_empty() {
                parts.push("filter:*".into());
            } else {
                let bang = if fl.exclude { "!" } else { "" };
                parts.push(format!("filter:{bang}{}", fl.names.join(",")));
            }
        }
        if let Some(s) = &self.sample {
            parts.push(format!("sample:{}/{}@{}", s.period, s.slice_len, s.seed));
        }
        if let Some(c) = &self.converge {
            parts.push(format!(
                "converge:{},{},{}/{}",
                c.tolerance, c.window, c.reprobe, c.slice_len
            ));
        }
        if parts.is_empty() {
            f.write_str("full")
        } else {
            f.write_str(&parts.join("+"))
        }
    }
}

fn parse_filter(arg: &str) -> Result<RoutineFilter, String> {
    if arg == "*" {
        return Ok(RoutineFilter {
            exclude: false,
            names: Vec::new(),
        });
    }
    let (exclude, list) = match arg.strip_prefix('!') {
        Some(rest) => (true, rest),
        None => (false, arg),
    };
    let names: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        return Err("filter: needs `*` or a routine-name list".into());
    }
    Ok(RoutineFilter { exclude, names })
}

/// Split `X[/SLICE]` and parse the optional slice width.
fn split_slice(arg: &str) -> Result<(&str, u64), String> {
    match arg.split_once('/') {
        Some((head, slice)) => {
            let n: u64 = slice
                .parse()
                .map_err(|_| format!("bad slice width `{slice}`"))?;
            if n == 0 {
                return Err("slice width must be positive".into());
            }
            Ok((head, n))
        }
        None => Ok((arg, DEFAULT_SLICE_LEN)),
    }
}

fn parse_sample(arg: &str) -> Result<SampleSpec, String> {
    let (arg, seed) = match arg.split_once('@') {
        Some((head, seed)) => (
            head,
            seed.parse::<u64>()
                .map_err(|_| format!("bad sample seed `{seed}`"))?,
        ),
        None => (arg, 0),
    };
    let (period_s, slice_len) = split_slice(arg)?;
    let period: u64 = period_s
        .parse()
        .map_err(|_| format!("bad sample period `{period_s}`"))?;
    if period == 0 {
        return Err("sample period must be ≥ 1".into());
    }
    Ok(SampleSpec {
        period,
        slice_len,
        seed,
    })
}

fn parse_converge(arg: &str) -> Result<ConvergeSpec, String> {
    let (head, slice_len) = split_slice(arg)?;
    let fields: Vec<&str> = head.split(',').collect();
    if fields.len() < 2 || fields.len() > 3 {
        return Err("converge: needs TOL,N[,R]".into());
    }
    let tolerance: f64 = fields[0]
        .parse()
        .map_err(|_| format!("bad converge tolerance `{}`", fields[0]))?;
    if !(tolerance >= 0.0) || !tolerance.is_finite() {
        return Err("converge tolerance must be a finite non-negative number".into());
    }
    let window: u32 = fields[1]
        .parse()
        .map_err(|_| format!("bad converge window `{}`", fields[1]))?;
    if window == 0 {
        return Err("converge window must be ≥ 1".into());
    }
    let reprobe: u64 = match fields.get(2) {
        Some(r) => {
            let n = r.parse().map_err(|_| format!("bad reprobe `{r}`"))?;
            if n == 0 {
                return Err("reprobe period must be ≥ 1".into());
            }
            n
        }
        None => 8 * window as u64,
    };
    Ok(ConvergeSpec {
        tolerance,
        window,
        reprobe,
        slice_len,
    })
}

/// One convergence-gating gap: routine `rtn` delivered no memory events
/// for gating slices `start_slice .. end_slice` (half-open).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrGap {
    /// Gated routine id (`u32::MAX` for code outside all symbols).
    pub rtn: u32,
    /// First gated slice.
    pub start_slice: u64,
    /// One past the last gated slice.
    pub end_slice: u64,
}

/// What a reduced-instrumentation run actually did — the metadata tools
/// (and captures) need to reconstruct full-run profiles and report their
/// confidence. Delivered to tools via [`crate::Tool::on_instr`]; stored
/// in captures so replay reconstructs identically.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct InstrInfo {
    /// Canonical mode spec (`InstrMode::to_string`).
    pub spec: String,
    /// Gating-slice width in instructions (0 = no slice gating; the
    /// mode was filter-only).
    pub slice_len: u64,
    /// Sampling period (0 when not sampling).
    pub sample_period: u64,
    /// Live phase within the period (slice `s` was recorded iff
    /// `s % sample_period == sample_offset`).
    pub sample_offset: u64,
    /// Routine ids whose instrumentation the filter disabled entirely.
    pub filtered: Vec<u32>,
    /// Convergence-gating gaps, in (rtn, start) order.
    pub gaps: Vec<InstrGap>,
    /// Final virtual clock of the run (set at fini / capture save).
    pub total_icount: u64,
}

impl InstrInfo {
    /// Whether gating slice `s` was recorded under the sampling pattern
    /// (always true when not sampling).
    pub fn sample_live(&self, slice: u64) -> bool {
        self.sample_period <= 1 || slice % self.sample_period == self.sample_offset
    }

    /// Total gating slices of the run (0 when no slice gating).
    pub fn n_slices(&self) -> u64 {
        if self.slice_len == 0 {
            0
        } else {
            self.total_icount.div_ceil(self.slice_len)
        }
    }

    /// Fraction of (routine × slice) cells whose memory events were
    /// recorded — the headline coverage number reports print. 1.0 for
    /// filter-only modes (filtering removes routines, not time).
    pub fn coverage(&self) -> f64 {
        let n = self.n_slices();
        if n == 0 {
            return 1.0;
        }
        if self.sample_period > 1 {
            let live = (0..n).filter(|&s| self.sample_live(s)).count();
            return live as f64 / n as f64;
        }
        // Convergence: subtract gap cells, normalised per gated routine.
        let gap_slices: u64 = self
            .gaps
            .iter()
            .map(|g| g.end_slice.min(n) - g.start_slice.min(n))
            .sum();
        let rtns: std::collections::HashSet<u32> = self.gaps.iter().map(|g| g.rtn).collect();
        if rtns.is_empty() {
            return 1.0;
        }
        1.0 - gap_slices as f64 / (n as f64 * rtns.len() as f64)
    }

    /// Gaps of one routine, in slice order.
    pub fn gaps_of(&self, rtn: u32) -> impl Iterator<Item = &InstrGap> {
        self.gaps.iter().filter(move |g| g.rtn == rtn)
    }

    /// Stable byte encoding (for capture tails and digest folding).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let spec = self.spec.as_bytes();
        out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        out.extend_from_slice(spec);
        for v in [
            self.slice_len,
            self.sample_period,
            self.sample_offset,
            self.total_icount,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.filtered.len() as u32).to_le_bytes());
        for r in &self.filtered {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.gaps.len() as u32).to_le_bytes());
        for g in &self.gaps {
            out.extend_from_slice(&g.rtn.to_le_bytes());
            out.extend_from_slice(&g.start_slice.to_le_bytes());
            out.extend_from_slice(&g.end_slice.to_le_bytes());
        }
        out
    }

    /// Inverse of [`InstrInfo::encode`]. `None` on truncated or
    /// malformed bytes (trailing garbage is rejected).
    pub fn decode(bytes: &[u8]) -> Option<InstrInfo> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let u32_at = |pos: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(pos, 4)?.try_into().ok()?))
        };
        let u64_at = |pos: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let spec_len = u32_at(&mut pos)? as usize;
        if spec_len > bytes.len() {
            return None;
        }
        let spec = String::from_utf8(take(&mut pos, spec_len)?.to_vec()).ok()?;
        let slice_len = u64_at(&mut pos)?;
        let sample_period = u64_at(&mut pos)?;
        let sample_offset = u64_at(&mut pos)?;
        let total_icount = u64_at(&mut pos)?;
        let n_filtered = u32_at(&mut pos)? as usize;
        if n_filtered.checked_mul(4)? > bytes.len() {
            return None;
        }
        let mut filtered = Vec::with_capacity(n_filtered);
        for _ in 0..n_filtered {
            filtered.push(u32_at(&mut pos)?);
        }
        let n_gaps = u32_at(&mut pos)? as usize;
        if n_gaps.checked_mul(20)? > bytes.len() {
            return None;
        }
        let mut gaps = Vec::with_capacity(n_gaps);
        for _ in 0..n_gaps {
            gaps.push(InstrGap {
                rtn: u32_at(&mut pos)?,
                start_slice: u64_at(&mut pos)?,
                end_slice: u64_at(&mut pos)?,
            });
        }
        if pos != bytes.len() {
            return None;
        }
        Some(InstrInfo {
            spec,
            slice_len,
            sample_period,
            sample_offset,
            filtered,
            gaps,
            total_icount,
        })
    }
}

/// Per-routine convergence state. Index `n_routines` stands for code
/// outside all symbols ([`RoutineId::INVALID`]).
struct ConvergeState {
    spec: ConvergeSpec,
    /// Bytes measured this slice (live and probe slices).
    cur: Vec<u64>,
    /// Bytes of the last measured slice.
    prev: Vec<u64>,
    /// Whether `prev` holds a measurement yet.
    seen: Vec<bool>,
    /// Consecutive stable slices.
    streak: Vec<u32>,
    /// Memory events currently suppressed.
    gated: Vec<bool>,
    /// First gated slice of the open gap.
    gap_start: Vec<u64>,
    /// Current slice is a re-probe slice (gated routines measure).
    probing: bool,
}

/// The slice-gating state machine shared by the live VM hot path and
/// the replay-side emulation. Pure function of the instrumented event
/// stream: feed it the same `(icount, rtn, bytes)` sequence and it makes
/// the same drop/emit decisions, which is what makes a live gated
/// capture byte-identical to a gated replay of a full capture.
pub struct InstrGate {
    /// Sampling phase: slice `s` live iff `s % period == offset`.
    period: u64,
    offset: u64,
    slice_len: u64,
    /// First icount of the next slice (`u64::MAX` when inactive) — the
    /// hoisted-check boundary the dispatcher folds into its fast path.
    next_edge: u64,
    /// Slice currently in effect.
    cur_slice: u64,
    /// Sampling verdict for the current slice.
    sample_live: bool,
    conv: Option<ConvergeState>,
    gaps: Vec<InstrGap>,
}

impl InstrGate {
    /// A gate for `mode` over a program with `n_routines` routines.
    /// Inactive (every event admitted, `next_edge == u64::MAX`) when the
    /// mode has no slice gating.
    pub fn new(mode: &InstrMode, n_routines: usize) -> InstrGate {
        let slice_len = mode.slice_len();
        if slice_len == 0 {
            return InstrGate {
                period: 1,
                offset: 0,
                slice_len: 0,
                next_edge: u64::MAX,
                cur_slice: 0,
                sample_live: true,
                conv: None,
                gaps: Vec::new(),
            };
        }
        let (period, offset) = match &mode.sample {
            Some(s) => (s.period, s.offset()),
            None => (1, 0),
        };
        let conv = mode.converge.as_ref().map(|c| {
            let n = n_routines + 1;
            ConvergeState {
                spec: *c,
                cur: vec![0; n],
                prev: vec![0; n],
                seen: vec![false; n],
                streak: vec![0; n],
                gated: vec![false; n],
                gap_start: vec![0; n],
                probing: false,
            }
        });
        let mut gate = InstrGate {
            period,
            offset,
            slice_len,
            next_edge: slice_len + 1,
            cur_slice: 0,
            sample_live: true,
            conv,
            gaps: Vec::new(),
        };
        gate.sample_live = gate.period <= 1 || gate.offset == 0;
        gate
    }

    /// Whether slice gating is active at all (false = every memory event
    /// admitted at zero cost).
    #[inline]
    pub fn active(&self) -> bool {
        self.slice_len != 0
    }

    /// First icount of the next gating slice (`u64::MAX` when inactive):
    /// the dispatcher's hoisted block check must not cross it.
    #[inline]
    pub fn next_edge(&self) -> u64 {
        self.next_edge
    }

    /// Process any slice boundaries up to and including `icount`. Cheap
    /// when no boundary passed.
    #[inline]
    pub fn advance(&mut self, icount: u64) {
        while icount >= self.next_edge {
            self.slice_edge();
        }
    }

    /// Admit or drop one memory event of `size` bytes in `rtn` at the
    /// (already advanced) current slice. Accumulates convergence
    /// measurements as a side effect; `measure = false` skips them
    /// (prefetches — gated like any event but never measured, since the
    /// tools ignore them).
    #[inline]
    pub fn admit(&mut self, rtn: RoutineId, size: u32, measure: bool) -> bool {
        if !self.sample_live {
            return false;
        }
        match &mut self.conv {
            None => true,
            Some(c) => {
                let gi = gate_idx(rtn, c.gated.len());
                if c.gated[gi] {
                    if c.probing && measure {
                        // Probe: measure silently; never emit.
                        c.cur[gi] += size as u64;
                    }
                    false
                } else {
                    if measure {
                        c.cur[gi] += size as u64;
                    }
                    true
                }
            }
        }
    }

    /// One slice boundary: evaluate sampling and convergence for the
    /// slice that begins at `next_edge`.
    fn slice_edge(&mut self) {
        let ending = self.cur_slice;
        self.cur_slice += 1;
        self.next_edge = self.next_edge.saturating_add(self.slice_len);
        if self.period > 1 {
            self.sample_live = self.cur_slice % self.period == self.offset;
        }
        let Some(c) = &mut self.conv else { return };
        let was_probe = c.probing;
        for gi in 0..c.cur.len() {
            if c.gated[gi] {
                if was_probe {
                    // A probe slice just ended: compare the silent
                    // measurement against the pre-gap level.
                    if !within_tol(c.prev[gi], c.cur[gi], c.spec.tolerance) {
                        // Drift: close the gap and resume instrumenting.
                        c.gated[gi] = false;
                        c.streak[gi] = 0;
                        c.prev[gi] = c.cur[gi];
                        self.gaps.push(InstrGap {
                            rtn: ungate_idx(gi, c.gated.len()),
                            start_slice: c.gap_start[gi],
                            end_slice: self.cur_slice,
                        });
                    }
                }
            } else if c.seen[gi] || c.cur[gi] > 0 {
                // A measured slice ended for a live routine.
                if c.seen[gi] && within_tol(c.prev[gi], c.cur[gi], c.spec.tolerance) {
                    c.streak[gi] += 1;
                    if c.streak[gi] >= c.spec.window {
                        c.gated[gi] = true;
                        c.gap_start[gi] = self.cur_slice;
                        c.streak[gi] = 0;
                    }
                } else {
                    c.streak[gi] = 0;
                }
                c.prev[gi] = c.cur[gi];
                c.seen[gi] = true;
            }
        }
        for v in c.cur.iter_mut() {
            *v = 0;
        }
        // The slice now beginning is a probe slice every `reprobe`
        // slices (skipping slice 0, which is always measured anyway).
        let _ = ending;
        c.probing = self.cur_slice % c.spec.reprobe == 0;
    }

    /// Close the run: flush open gaps and return the gap log. The gate
    /// is spent afterwards.
    pub fn finish(&mut self, total_icount: u64) -> Vec<InstrGap> {
        let n_slices = if self.slice_len == 0 {
            0
        } else {
            total_icount.div_ceil(self.slice_len)
        };
        if let Some(c) = &mut self.conv {
            for gi in 0..c.gated.len() {
                if c.gated[gi] {
                    self.gaps.push(InstrGap {
                        rtn: ungate_idx(gi, c.gated.len()),
                        start_slice: c.gap_start[gi],
                        end_slice: n_slices,
                    });
                }
            }
        }
        self.gaps.sort_by_key(|g| (g.rtn, g.start_slice));
        std::mem::take(&mut self.gaps)
    }
}

/// Replay-side emulation of a reduced instrumentation mode: wraps an
/// analysis tool and feeds a **full** capture's event stream through the
/// same [`InstrGate`] the live VM drives, dropping exactly the events a
/// live run under `mode` would never have constructed. Because the gate
/// is a pure function of the instrumented event stream, the wrapped
/// tool's profile is byte-identical to the one a live `--instr` run
/// produces — which is how `tq-profd` serves reduced-mode jobs from its
/// one shared full capture instead of re-running the VM per mode.
///
/// The gate is one sequential state machine, so emulated replays cannot
/// be sharded; callers must drive a plain sequential replay.
pub struct InstrEmulator<T: crate::Tool + 'static> {
    inner: T,
    mode: InstrMode,
    gate: InstrGate,
    /// Per-routine "never instrumented" verdicts (indexed by routine id;
    /// empty when no filter restricts anything).
    filtered: Vec<bool>,
    error: Option<String>,
}

impl<T: crate::Tool + 'static> InstrEmulator<T> {
    /// Wrap `inner` so it observes the capture as a live run under
    /// `mode` would have instrumented it.
    pub fn new(inner: T, mode: InstrMode) -> InstrEmulator<T> {
        InstrEmulator {
            inner,
            gate: InstrGate::new(&mode, 0),
            mode,
            filtered: Vec::new(),
            error: None,
        }
    }

    /// Unwrap the finished tool. Errors when the mode named routines the
    /// program does not define, or the capture itself was recorded under
    /// a reduced mode (emulating a reduction on top of another is
    /// ill-defined — re-record the capture full).
    pub fn finish(self) -> Result<T, String> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.inner),
        }
    }

    #[inline]
    fn is_filtered(&self, rtn: RoutineId) -> bool {
        // Code outside all symbols (`RoutineId::INVALID`) is always
        // instrumented, exactly as in `Vm::set_instr_mode`.
        self.filtered.get(rtn.idx()).copied().unwrap_or(false)
    }
}

impl<T: crate::Tool + 'static> crate::Tool for InstrEmulator<T> {
    fn name(&self) -> &str {
        "instr-emulator"
    }

    fn on_attach(&mut self, info: &crate::ProgramInfo) {
        self.gate = InstrGate::new(&self.mode, info.routines.len());
        if let Some(f) = &self.mode.filter {
            if !f.is_all() {
                let mut named = vec![false; info.routines.len()];
                for name in &f.names {
                    match info.routine_named(name) {
                        Some(id) => named[id.idx()] = true,
                        None => {
                            self.error =
                                Some(format!("unknown routine `{name}` in --instr filter"));
                        }
                    }
                }
                self.filtered = if f.exclude {
                    named
                } else {
                    named.iter().map(|&n| !n).collect()
                };
            }
        }
        self.inner.on_attach(info);
    }

    fn instrument_ins(&mut self, ins: &crate::InsContext<'_>) -> crate::HookMask {
        self.inner.instrument_ins(ins)
    }

    fn tick_interval(&self) -> Option<u64> {
        self.inner.tick_interval()
    }

    fn event_mask(&self) -> crate::HookMask {
        self.inner.event_mask()
    }

    fn on_instr(&mut self, _info: &InstrInfo) {
        self.error = Some(
            "capture was recorded under a reduced instrumentation mode; \
             emulating another mode on top is ill-defined (re-record full)"
                .into(),
        );
    }

    fn on_event(&mut self, ev: &crate::Event) {
        use crate::Event;
        // The live dispatcher advances the gate per instruction, before
        // that instruction's events fire; advancing on every event's
        // icount reaches the same slice state at every admit decision
        // (edges between events batch, but nothing observes the interim).
        self.gate.advance(ev.icount());
        match *ev {
            Event::MemRead {
                size,
                rtn,
                is_prefetch,
                ..
            } => {
                if self.is_filtered(rtn)
                    || (self.gate.active() && !self.gate.admit(rtn, size, !is_prefetch))
                {
                    return;
                }
            }
            Event::MemWrite { size, rtn, .. } => {
                if self.is_filtered(rtn)
                    || (self.gate.active() && !self.gate.admit(rtn, size, true))
                {
                    return;
                }
            }
            // Control events of a filtered routine were never constructed
            // live (its cached blocks carry no hooks); ticks are VM-level
            // and always fire.
            Event::Call { rtn, .. } | Event::Ret { rtn, .. } | Event::RoutineEnter { rtn, .. } => {
                if self.is_filtered(rtn) {
                    return;
                }
            }
            Event::Tick { .. } => {}
        }
        self.inner.on_event(ev);
    }

    fn on_fini(&mut self, final_icount: u64) {
        // Mirror the live fini order: mode metadata first, then Fini,
        // so reconstruction happens with the final gap log in hand.
        if !self.mode.is_full() {
            let info = InstrInfo {
                spec: self.mode.to_string(),
                slice_len: self.mode.slice_len(),
                sample_period: self.mode.sample.map(|s| s.period).unwrap_or(0),
                sample_offset: self.mode.sample.map(|s| s.offset()).unwrap_or(0),
                filtered: self
                    .filtered
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &f)| f.then_some(i as u32))
                    .collect(),
                gaps: self.gate.finish(final_icount),
                total_icount: final_icount,
            };
            self.inner.on_instr(&info);
        }
        self.inner.on_fini(final_icount);
    }
}

#[inline]
fn gate_idx(rtn: RoutineId, len: usize) -> usize {
    if rtn == RoutineId::INVALID {
        len - 1
    } else {
        (rtn.idx()).min(len - 1)
    }
}

fn ungate_idx(gi: usize, len: usize) -> u32 {
    if gi == len - 1 {
        u32::MAX
    } else {
        gi as u32
    }
}

/// Relative stability test: `a` and `b` within `tol` of their maximum
/// (two zero slices are stable; zero against non-zero is not, unless the
/// tolerance admits it).
#[inline]
fn within_tol(a: u64, b: u64, tol: f64) -> bool {
    let hi = a.max(b) as f64;
    if hi == 0.0 {
        return true;
    }
    (a.abs_diff(b) as f64) <= tol * hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for spec in [
            "full",
            "filter:*",
            "filter:fft1d,AudioIo_setFrames",
            "filter:!memcpy_sim",
            "sample:4/20000@7",
            "converge:0.05,4,32/20000",
            "filter:!memcpy_sim+sample:2/1000@0",
        ] {
            let m = InstrMode::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let canon = m.to_string();
            let again = InstrMode::parse(&canon).unwrap();
            assert_eq!(m, again, "{spec} → {canon}");
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for spec in [
            "",
            "nope",
            "sample:0",
            "sample:x",
            "converge:0.1",
            "converge:-1,4",
            "sample:2+converge:0.1,4",
            "filter:",
            "sample:2/0",
            "filter:a+filter:b",
        ] {
            assert!(InstrMode::parse(spec).is_err(), "{spec} should not parse");
        }
    }

    #[test]
    fn full_and_all_filter_are_full() {
        assert!(InstrMode::parse("full").unwrap().is_full());
        assert!(InstrMode::parse("filter:*").unwrap().is_full());
        assert!(!InstrMode::parse("filter:!x").unwrap().is_full());
        assert!(!InstrMode::parse("sample:2").unwrap().is_full());
    }

    #[test]
    fn sample_offset_is_deterministic_and_in_range() {
        let s = SampleSpec {
            period: 5,
            slice_len: 1000,
            seed: 42,
        };
        assert_eq!(s.offset(), s.offset());
        assert!(s.offset() < 5);
        let s2 = SampleSpec { seed: 43, ..s };
        // Different seeds usually pick different phases (not guaranteed,
        // but these two differ).
        assert!(s.offset() < 5 && s2.offset() < 5);
    }

    #[test]
    fn gate_samples_every_kth_slice() {
        let mode = InstrMode::parse("sample:3/100@0").unwrap();
        let off = mode.sample.unwrap().offset();
        let mut gate = InstrGate::new(&mode, 4);
        assert!(gate.active());
        let mut live_slices = Vec::new();
        for s in 0..9u64 {
            let icount = s * 100 + 1; // first instruction of slice s
            gate.advance(icount);
            if gate.admit(RoutineId(0), 8, true) {
                live_slices.push(s);
            }
        }
        let expect: Vec<u64> = (0..9).filter(|s| s % 3 == off).collect();
        assert_eq!(live_slices, expect);
        assert!(gate.finish(900).is_empty(), "sampling records no gaps");
    }

    #[test]
    fn gate_converges_on_steady_stream_and_reprobes() {
        let mode = InstrMode::parse("converge:0.01,3,8/100").unwrap();
        let mut gate = InstrGate::new(&mode, 2);
        let mut emitted = Vec::new();
        // 40 slices of a perfectly steady routine: 10 events × 8 bytes.
        for s in 0..40u64 {
            for e in 0..10u64 {
                let icount = s * 100 + e + 1;
                gate.advance(icount);
                if gate.admit(RoutineId(1), 8, true) {
                    emitted.push(s);
                }
            }
        }
        let gaps = gate.finish(4000);
        assert_eq!(gaps.len(), 1, "steady stream gates once: {gaps:?}");
        let g = gaps[0];
        assert_eq!(g.rtn, 1);
        // Stable from slice 1 (first comparison) → streak hits 3 at the
        // edge ending slice 3 → gap starts at slice 4.
        assert_eq!(g.start_slice, 4);
        assert_eq!(g.end_slice, 40, "no drift: gap runs to the end");
        assert!(emitted.iter().all(|&s| s < 4), "no events after gating");
    }

    #[test]
    fn gate_ungates_on_drift_at_reprobe() {
        let mode = InstrMode::parse("converge:0.01,2,4/100").unwrap();
        let mut gate = InstrGate::new(&mode, 2);
        // Steady for 8 slices, then the routine's bandwidth doubles.
        let mut emitted_after_drift = false;
        for s in 0..16u64 {
            let events = if s < 8 { 5 } else { 10 };
            for e in 0..events {
                let icount = s * 100 + e + 1;
                gate.advance(icount);
                if gate.admit(RoutineId(0), 8, true) && s >= 9 {
                    emitted_after_drift = true;
                }
            }
        }
        let gaps = gate.finish(1600);
        assert!(
            emitted_after_drift,
            "drift at a re-probe slice must un-gate: {gaps:?}"
        );
        assert!(gaps.iter().all(|g| g.end_slice <= 16));
        // The first gap closed before the end (the drift re-probe).
        assert!(gaps[0].end_slice < 16, "{gaps:?}");
    }

    #[test]
    fn gate_never_fires_on_phase_shifting_stream() {
        let mode = InstrMode::parse("converge:0.05,3,16/100").unwrap();
        let mut gate = InstrGate::new(&mode, 1);
        // Alternating heavy/light slices: never two consecutive stable
        // comparisons, so the streak never reaches the window.
        let mut total = 0u64;
        let mut emitted = 0u64;
        for s in 0..50u64 {
            let events = if s % 2 == 0 { 20 } else { 2 };
            for e in 0..events {
                let icount = s * 100 + e + 1;
                gate.advance(icount);
                total += 1;
                if gate.admit(RoutineId(0), 8, true) {
                    emitted += 1;
                }
            }
        }
        assert_eq!(emitted, total, "phase-shifting stream never gates");
        assert!(gate.finish(5000).is_empty());
    }

    #[test]
    fn instr_info_encode_round_trips() {
        let info = InstrInfo {
            spec: "sample:4/20000@9".into(),
            slice_len: 20000,
            sample_period: 4,
            sample_offset: 2,
            filtered: vec![3, 7],
            gaps: vec![InstrGap {
                rtn: 1,
                start_slice: 5,
                end_slice: 9,
            }],
            total_icount: 1_000_000,
        };
        let bytes = info.encode();
        assert_eq!(InstrInfo::decode(&bytes).as_ref(), Some(&info));
        assert_eq!(InstrInfo::decode(&bytes[..bytes.len() - 1]), None);
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(InstrInfo::decode(&extra), None, "trailing bytes rejected");
    }

    #[test]
    fn coverage_reflects_sampling() {
        let info = InstrInfo {
            spec: "sample:4/100@0".into(),
            slice_len: 100,
            sample_period: 4,
            sample_offset: 0,
            total_icount: 1600,
            ..Default::default()
        };
        assert_eq!(info.n_slices(), 16);
        assert!((info.coverage() - 0.25).abs() < 1e-9);
    }
}
