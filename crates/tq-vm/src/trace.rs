//! Hot-loop trace recording and execution ([`VmOpt::Trace`]).
//!
//! The lifecycle follows the classic trace-JIT arc, minus native codegen:
//!
//! 1. **Profiling** — every back-edge (a jump or taken branch to a lower or
//!    equal address) bumps a counter keyed by the *target* address. At
//!    [`HOT_THRESHOLD`] the target becomes a candidate loop head.
//! 2. **Recorded** — the interpreter keeps running normally, but appends
//!    every dispatched block (with the control-flow direction it actually
//!    took) to a [`Recording`] until control returns to the head. Recording
//!    aborts — permanently, via the [`ABORTED`] sentinel — if the path runs
//!    through an untraceable block (calls, returns, host I/O, routine
//!    heads), revisits an address (an inner loop), or exceeds
//!    [`MAX_TRACE_BLOCKS`].
//! 3. **Lowered** — the closed recording is flattened into an
//!    [`ExecTrace`]: a straight line of segments sharing the cached blocks'
//!    pre-decoded bodies, with every intermediate branch turned into a
//!    *guard* that checks the recorded direction.
//! 4. **Executable** — [`run_trace`] spins iterations of the lowered loop.
//!    A failed guard is a *side-exit*: the trace stops and hands the
//!    other direction's address back to the interpreter. Analysis events
//!    are buffered per iteration and flushed to each tool in one
//!    [`Tool::on_events`] batch, preserving per-tool event order exactly.
//!
//! Fidelity is contractual: an iteration is only entered when it fits
//! entirely below the fuel limit and the next tool tick, so the
//! per-instruction fuel/tick checks the trace skips could never have fired;
//! everything else (event payloads, `icount` stamps, stats) is identical by
//! construction because traces execute the same decoded instructions.

use crate::tool::{Event, HookMask};
use crate::vm::{Block, Next, Vm, VmError};
use std::collections::HashSet;
use std::rc::Rc;
use tq_isa::{BrCond, Fused, Inst, Reg, INST_BYTES};

/// Back-edge executions of a loop head before it is recorded.
pub(crate) const HOT_THRESHOLD: u32 = 64;

/// Longest loop body (in basic blocks) a recording may span.
pub(crate) const MAX_TRACE_BLOCKS: usize = 64;

/// Sentinel in `Vm::hot` marking a head whose recording aborted: never
/// try again.
pub(crate) const ABORTED: u32 = u32::MAX;

/// One analysis event deferred during a trace iteration. `seg`/`inst`
/// locate the originating [`crate::vm::DecodedInst`] (and so its hook
/// list) inside the executing trace.
pub(crate) struct Pending {
    pub(crate) seg: u32,
    pub(crate) inst: u16,
    pub(crate) bit: HookMask,
    pub(crate) ev: Event,
}

/// An in-progress recording: the blocks the interpreter dispatched since
/// the hot head, each with the address it ran at and the address control
/// went to next.
pub(crate) struct Recording {
    pub(crate) head: u64,
    pub(crate) segs: Vec<(Rc<Block>, u64, u64)>,
    /// Addresses already in the recording — a revisit means an inner loop,
    /// which aborts (the inner loop deserves its own trace).
    pub(crate) seen: HashSet<u64>,
}

/// How a lowered segment hands control to the next one.
pub(crate) enum TraceEnd {
    /// The block fell through (no ender instruction): nothing to do.
    Fall,
    /// Unconditional `Jmp`: retire one instruction and continue.
    Count,
    /// Conditional branch turned into a guard: the branch retires one
    /// instruction, then the trace continues only if the condition
    /// evaluates to the recorded direction.
    Guard {
        cond: BrCond,
        rs1: Reg,
        rs2: Reg,
        /// Direction the recording took (`true` = branch taken).
        taken: bool,
        /// Interpreter resume address when the guard fails.
        fail_pc: u64,
    },
}

/// One straight-line segment of a lowered trace: a cached block plus how
/// its ender was resolved at record time.
pub(crate) struct TraceSeg {
    pub(crate) block: Rc<Block>,
    /// Ops of `block.ops` executed as the body (the ender op, if any, is
    /// replayed by `pre_add`/`end` instead).
    pub(crate) n_body: usize,
    /// When the ender op was a fused [`Fused::IncBr`], the absorbed
    /// induction step `(rd, rs1, sign-extended imm)` replayed before the
    /// guard.
    pub(crate) pre_add: Option<(Reg, Reg, u64)>,
    pub(crate) end: TraceEnd,
}

/// An executable lowered trace: one full loop iteration, straightened.
pub(crate) struct ExecTrace {
    /// Loop-head address (trace entry, and the back-edge target).
    pub(crate) head: u64,
    /// Instructions retired by one complete iteration.
    pub(crate) n_instrs: u64,
    pub(crate) segs: Vec<TraceSeg>,
}

/// True when one complete iteration fits below the fuel limit, the next
/// tool tick and the next gating-slice edge — the only condition under
/// which the trace's hoisted per-instruction checks are sound.
pub(crate) fn can_enter(vm: &Vm, tr: &ExecTrace, fuel_limit: u64) -> bool {
    let end = vm.icount.saturating_add(tr.n_instrs);
    end <= fuel_limit && end < vm.next_tick.min(vm.instr_gate.next_edge())
}

/// Post-dispatch bookkeeping for [`crate::vm::VmOpt::Trace`]: extend or
/// close the active recording, or profile back-edges toward the hot
/// threshold. `pc` is the address the block ran at, `next_pc` where
/// control went.
pub(crate) fn after_block(vm: &mut Vm, block: &Rc<Block>, pc: u64, next_pc: u64) {
    // Traces are built from cached blocks; with the cache off the whole
    // hot-loop machinery stays off (see `Vm::set_cache_enabled`).
    if !vm.cache_enabled() {
        return;
    }
    if let Some(mut rec) = vm.recording.take() {
        if !block.traceable || rec.segs.len() >= MAX_TRACE_BLOCKS || rec.seen.contains(&pc) {
            vm.hot.insert(rec.head, ABORTED);
            return;
        }
        rec.seen.insert(pc);
        rec.segs.push((block.clone(), pc, next_pc));
        if next_pc == rec.head {
            let tr = lower(&rec);
            vm.stats.traces_recorded += 1;
            vm.traces.insert(rec.head, Rc::new(tr));
        } else {
            vm.recording = Some(rec);
        }
        return;
    }

    if next_pc <= pc {
        let c = vm.hot.entry(next_pc).or_insert(0);
        if *c == ABORTED || vm.traces.contains_key(&next_pc) {
            return;
        }
        *c += 1;
        if *c >= HOT_THRESHOLD {
            vm.recording = Some(Recording {
                head: next_pc,
                segs: Vec::new(),
                seen: HashSet::new(),
            });
        }
    }
}

/// Flatten a closed recording into an executable trace.
fn lower(rec: &Recording) -> ExecTrace {
    let mut segs = Vec::with_capacity(rec.segs.len());
    let mut n_instrs = 0u64;
    for (block, _pc, next_pc) in &rec.segs {
        n_instrs += block.insts.len() as u64;
        let last = block.insts.last().expect("blocks are non-empty");
        let (n_body, pre_add, end) = match last.inst {
            Inst::Jmp { .. } => (block.ops.len() - 1, None, TraceEnd::Count),
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = *next_pc == target as u64;
                let fail_pc = if taken {
                    last.pc + INST_BYTES
                } else {
                    target as u64
                };
                let pre_add = match block.ops.last() {
                    Some(crate::fuse::BlockOp::Fused {
                        f:
                            Fused::IncBr {
                                a_rd, a_rs1, a_imm, ..
                            },
                        ..
                    }) => Some((*a_rd, *a_rs1, *a_imm as i64 as u64)),
                    _ => None,
                };
                (
                    block.ops.len() - 1,
                    pre_add,
                    TraceEnd::Guard {
                        cond,
                        rs1,
                        rs2,
                        taken,
                        fail_pc,
                    },
                )
            }
            // Traceable blocks only end in `Br`, `Jmp` or fallthrough.
            _ => (block.ops.len(), None, TraceEnd::Fall),
        };
        segs.push(TraceSeg {
            block: block.clone(),
            n_body,
            pre_add,
            end,
        });
    }
    ExecTrace {
        head: rec.head,
        n_instrs,
        segs,
    }
}

/// Run iterations of `tr` until a guard fails or the next iteration no
/// longer fits the fuel/tick windows. Returns the interpreter resume
/// address. The caller must have checked [`can_enter`] for the first
/// iteration.
pub(crate) fn run_trace(vm: &mut Vm, tr: &ExecTrace, fuel_limit: u64) -> Result<u64, VmError> {
    debug_assert!(vm.ev_buf.is_empty());
    loop {
        let iter_start = vm.icount;
        for (si, seg) in tr.segs.iter().enumerate() {
            // Stats parity: the interpreter would have fetched this block
            // from the cache and dispatched it.
            vm.stats.cache_hits += 1;
            vm.stats.block_execs += 1;
            for op in &seg.block.ops[..seg.n_body] {
                match crate::fuse::exec_op::<true>(vm, &seg.block, op, si as u32) {
                    Ok(Next::Fall) => {}
                    Ok(_) => unreachable!("trace body ops cannot redirect control"),
                    Err(e) => {
                        vm.stats.trace_instrs += vm.icount - iter_start;
                        flush_events(vm, tr);
                        return Err(e);
                    }
                }
            }
            match seg.end {
                TraceEnd::Fall => {}
                TraceEnd::Count => vm.icount += 1,
                TraceEnd::Guard {
                    cond,
                    rs1,
                    rs2,
                    taken,
                    fail_pc,
                } => {
                    if let Some((rd, rs1a, imm)) = seg.pre_add {
                        vm.icount += 1;
                        vm.regs[rd.idx()] = vm.regs[rs1a.idx()].wrapping_add(imm);
                    }
                    vm.icount += 1;
                    if cond.eval(vm.regs[rs1.idx()], vm.regs[rs2.idx()]) != taken {
                        vm.stats.trace_side_exits += 1;
                        vm.stats.trace_instrs += vm.icount - iter_start;
                        flush_events(vm, tr);
                        return Ok(fail_pc);
                    }
                }
            }
        }
        vm.stats.trace_instrs += vm.icount - iter_start;
        flush_events(vm, tr);
        if !can_enter(vm, tr, fuel_limit) {
            return Ok(tr.head);
        }
    }
}

/// Flush the iteration's buffered events: one [`Tool::on_events`] batch
/// per subscribed tool, in execution order. Delivery counts and per-tool
/// ordering match what per-event dispatch would have produced.
///
/// [`Tool::on_events`]: crate::tool::Tool::on_events
pub(crate) fn flush_events(vm: &mut Vm, tr: &ExecTrace) {
    if vm.ev_buf.is_empty() {
        return;
    }
    let buf = std::mem::take(&mut vm.ev_buf);
    let mut scratch = std::mem::take(&mut vm.ev_scratch);
    for ti in 0..vm.tools.len() {
        scratch.clear();
        for p in &buf {
            let d = &tr.segs[p.seg as usize].block.insts[p.inst as usize];
            for &(hti, mask) in d.hooks.iter() {
                if hti as usize == ti && mask & p.bit != 0 {
                    scratch.push(p.ev);
                }
            }
        }
        if scratch.is_empty() {
            continue;
        }
        if let Some(tool) = vm.tools[ti].as_mut() {
            vm.stats.events_delivered += scratch.len() as u64;
            tool.on_events(&scratch);
        }
    }
    scratch.clear();
    vm.ev_scratch = scratch;
    vm.ev_buf = buf;
    vm.ev_buf.clear();
}
