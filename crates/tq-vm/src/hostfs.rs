//! The simulated file system and console behind the VM's host calls.
//!
//! The *hArtes wfs* case study runs in off-line mode: audio comes from and
//! goes to files. Pin cannot see kernel-mode code, so the bytes moved by a
//! `read(2)` never appear in the instrumented trace — only the user-level
//! loop that subsequently walks the buffer does. The reproduction keeps that
//! boundary: host calls move bytes between [`HostFs`] files and simulated
//! memory *outside* the instrumented world.

use std::collections::BTreeMap;

/// Open-mode of a file descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsMode {
    /// Reading an existing file.
    Read,
    /// Writing (creates or truncates).
    Write,
}

#[derive(Debug)]
struct OpenFile {
    name: String,
    pos: usize,
    mode: FsMode,
    open: bool,
}

/// An in-memory file system plus a console buffer.
#[derive(Default, Debug)]
pub struct HostFs {
    files: BTreeMap<String, Vec<u8>>,
    fds: Vec<OpenFile>,
    console: String,
}

impl HostFs {
    /// Empty file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a file.
    pub fn add_file(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.files.insert(name.into(), bytes);
    }

    /// Fetch a file's contents.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| v.as_slice())
    }

    /// Names of all files, sorted.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(|s| s.as_str()).collect()
    }

    /// Open `name`; returns a file descriptor or `None` (read of a missing
    /// file).
    pub fn open(&mut self, name: &str, mode: FsMode) -> Option<i64> {
        match mode {
            FsMode::Read => {
                if !self.files.contains_key(name) {
                    return None;
                }
            }
            FsMode::Write => {
                self.files.insert(name.to_string(), Vec::new());
            }
        }
        self.fds.push(OpenFile {
            name: name.to_string(),
            pos: 0,
            mode,
            open: true,
        });
        Some(self.fds.len() as i64 - 1)
    }

    /// Close a descriptor. Closing twice or closing a bad fd is a no-op
    /// returning `false`.
    pub fn close(&mut self, fd: i64) -> bool {
        match self.fds.get_mut(fd as usize) {
            Some(f) if f.open => {
                f.open = false;
                true
            }
            _ => false,
        }
    }

    /// Read up to `buf.len()` bytes from `fd` at its cursor. Returns bytes
    /// read, or −1 for a bad descriptor/mode.
    pub fn read(&mut self, fd: i64, buf: &mut [u8]) -> i64 {
        let Some(f) = self.fds.get_mut(fd as usize) else {
            return -1;
        };
        if !f.open || f.mode != FsMode::Read {
            return -1;
        }
        let data = self.files.get(&f.name).map(|v| v.as_slice()).unwrap_or(&[]);
        let n = buf.len().min(data.len().saturating_sub(f.pos));
        buf[..n].copy_from_slice(&data[f.pos..f.pos + n]);
        f.pos += n;
        n as i64
    }

    /// Append `buf` to `fd`. Returns bytes written, or −1.
    pub fn write(&mut self, fd: i64, buf: &[u8]) -> i64 {
        let Some(f) = self.fds.get_mut(fd as usize) else {
            return -1;
        };
        if !f.open || f.mode != FsMode::Write {
            return -1;
        }
        let data = self
            .files
            .get_mut(&f.name)
            .expect("open write fd has a file");
        data.extend_from_slice(buf);
        f.pos += buf.len();
        buf.len() as i64
    }

    /// Size of the file behind `fd`, or −1.
    pub fn size(&self, fd: i64) -> i64 {
        match self.fds.get(fd as usize) {
            Some(f) if f.open => self.files.get(&f.name).map(|v| v.len() as i64).unwrap_or(0),
            _ => -1,
        }
    }

    /// Append to the console buffer.
    pub fn console_push(&mut self, s: &str) {
        self.console.push_str(s);
    }

    /// Everything printed so far.
    pub fn console(&self) -> &str {
        &self.console
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_missing_file_fails() {
        let mut fs = HostFs::new();
        assert_eq!(fs.open("nope", FsMode::Read), None);
    }

    #[test]
    fn write_then_read_back() {
        let mut fs = HostFs::new();
        let w = fs.open("out.bin", FsMode::Write).unwrap();
        assert_eq!(fs.write(w, b"hello "), 6);
        assert_eq!(fs.write(w, b"world"), 5);
        assert!(fs.close(w));

        let r = fs.open("out.bin", FsMode::Read).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(r, &mut buf), 4);
        assert_eq!(&buf, b"hell");
        assert_eq!(fs.size(r), 11);
        let mut rest = [0u8; 32];
        assert_eq!(fs.read(r, &mut rest), 7);
        assert_eq!(&rest[..7], b"o world");
        assert_eq!(fs.read(r, &mut rest), 0, "EOF");
    }

    #[test]
    fn mode_enforcement() {
        let mut fs = HostFs::new();
        fs.add_file("in.bin", vec![1, 2, 3]);
        let r = fs.open("in.bin", FsMode::Read).unwrap();
        assert_eq!(fs.write(r, b"x"), -1);
        let w = fs.open("o", FsMode::Write).unwrap();
        let mut b = [0u8; 1];
        assert_eq!(fs.read(w, &mut b), -1);
    }

    #[test]
    fn close_semantics() {
        let mut fs = HostFs::new();
        fs.add_file("f", vec![9]);
        let fd = fs.open("f", FsMode::Read).unwrap();
        assert!(fs.close(fd));
        assert!(!fs.close(fd), "double close");
        assert!(!fs.close(42), "bad fd");
        let mut b = [0u8; 1];
        assert_eq!(fs.read(fd, &mut b), -1, "read after close");
    }

    #[test]
    fn write_mode_truncates() {
        let mut fs = HostFs::new();
        fs.add_file("f", vec![1, 2, 3, 4]);
        let w = fs.open("f", FsMode::Write).unwrap();
        fs.write(w, &[9]);
        assert_eq!(fs.file("f").unwrap(), &[9]);
    }

    #[test]
    fn console_accumulates() {
        let mut fs = HostFs::new();
        fs.console_push("a=");
        fs.console_push("1\n");
        assert_eq!(fs.console(), "a=1\n");
    }
}
