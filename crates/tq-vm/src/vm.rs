//! The virtual machine: loader, interpreter, code cache and tool dispatch.
//!
//! Execution follows Pin's architecture (Fig. 2 of the paper): a dispatcher
//! pulls *basic blocks* out of a code cache; a block is decoded (and
//! instrumented — every attached tool is asked once per instruction which
//! events it wants) the first time control reaches it, then re-executed from
//! the cache with only the *analysis* callbacks paid per execution. Host
//! calls play the role of system calls handled by the emulator: their memory
//! traffic is invisible to tools, as kernel-mode code is to Pin.

use crate::hostfs::{FsMode, HostFs};
use crate::instr::{InstrGate, InstrInfo, InstrMode};
use crate::layout;
use crate::mem::{Memory, OutOfRange};
use crate::tool::{hooks, Event, HookMask, InsContext, ProgramInfo, RoutineMeta, Tool};
use std::collections::HashMap;
use std::rc::Rc;
use tq_isa::{abi, DecodeError, HostFn, Inst, Program, RoutineId, INST_BYTES};

/// Largest block copy one `BCpy` may perform (1 MiB).
pub const MAX_BLOCK_COPY: u64 = 1 << 20;

/// Handle returned by [`Vm::attach_tool`], used to get the tool back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ToolHandle(usize);

/// Why a run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitReason {
    /// A `Halt` instruction executed.
    Halted,
    /// The program called `Host Exit` with this code.
    Exited(i64),
}

/// Successful run result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunExit {
    /// How the program stopped.
    pub reason: ExitReason,
    /// Total instructions executed (the final virtual clock).
    pub icount: u64,
}

/// Fatal execution error.
#[derive(Debug)]
pub enum VmError {
    /// The program failed validation at load time.
    Load(String),
    /// Control reached an address outside every image.
    BadPc(u64),
    /// An instruction word failed to decode.
    Decode {
        /// Address of the bad word.
        pc: u64,
        /// Underlying decode error.
        err: DecodeError,
    },
    /// A data access left the simulated address space.
    Mem {
        /// Address of the faulting instruction.
        pc: u64,
        /// Underlying range error.
        err: OutOfRange,
    },
    /// The stack grew past [`layout::STACK_LIMIT`].
    StackOverflow {
        /// Stack pointer at the failed push.
        sp: u64,
    },
    /// The per-run instruction budget ran out.
    FuelExhausted {
        /// Virtual clock when fuel ran out.
        icount: u64,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Load(m) => write!(f, "load error: {m}"),
            VmError::BadPc(pc) => write!(f, "control reached unmapped address {pc:#x}"),
            VmError::Decode { pc, err } => write!(f, "at {pc:#x}: {err}"),
            VmError::Mem { pc, err } => write!(f, "at {pc:#x}: {err}"),
            VmError::StackOverflow { sp } => write!(f, "stack overflow (sp={sp:#x})"),
            VmError::FuelExhausted { icount } => {
                write!(
                    f,
                    "instruction budget exhausted after {icount} instructions"
                )
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Execution statistics — drives the overhead experiment (§V.A of the
/// paper) and the code-cache ablation.
///
/// The first seven fields are *mode-invariant*: they must come out
/// byte-identical whichever [`VmOpt`] level the VM runs at (the
/// differential test suite enforces this). The trailing fields describe the
/// optimisation machinery itself and are naturally zero below the mode that
/// introduces them.
#[derive(Clone, Copy, Default, Debug)]
pub struct VmStats {
    /// Basic blocks decoded (and instrumented).
    pub blocks_built: u64,
    /// Basic block executions dispatched.
    pub block_execs: u64,
    /// Code-cache hits.
    pub cache_hits: u64,
    /// `Tool::instrument_ins` invocations (instrumentation-time work).
    pub instrument_calls: u64,
    /// Analysis events delivered to tools (analysis-time work).
    pub events_delivered: u64,
    /// Data-memory reads executed (prefetches excluded).
    pub mem_reads: u64,
    /// Data-memory writes executed.
    pub mem_writes: u64,
    /// Blocks whose decode produced at least one fused superinstruction
    /// ([`VmOpt::Fuse`] and above).
    pub blocks_fused: u64,
    /// Hot-loop traces recorded and installed ([`VmOpt::Trace`]).
    pub traces_recorded: u64,
    /// Guard failures that fell back from a trace to the interpreter.
    pub trace_side_exits: u64,
    /// Instructions retired inside lowered traces.
    pub trace_instrs: u64,
    /// Memory events suppressed by a reduced instrumentation mode
    /// (`--instr sample|converge`); always 0 under full instrumentation.
    pub instr_suppressed: u64,
}

impl VmStats {
    /// Fraction of all retired instructions that ran inside lowered traces
    /// (0.0 when nothing ran). `final_icount` is the run's total
    /// instruction count, e.g. [`RunExit::icount`].
    pub fn trace_instr_share(&self, final_icount: u64) -> f64 {
        if final_icount == 0 {
            0.0
        } else {
            self.trace_instrs as f64 / final_icount as f64
        }
    }
}

/// Hot-loop optimisation level of the interpreter. Every level is
/// observationally identical — fuel accounting, [`VmStats`] core fields,
/// captured traces and tool profiles stay byte-for-byte the same — the
/// levels only trade decode-time work for execution speed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VmOpt {
    /// Block-level pre-decoded dispatch only (the baseline): fuel and tick
    /// checks are hoisted to block granularity when no boundary can fall
    /// inside the block.
    #[default]
    Off,
    /// Adds superinstruction fusion: a peephole pass at block decode time
    /// collapses dominant pairs/triples into single [`tq_isa::Fused`] ops.
    Fuse,
    /// Adds hot-loop trace recording: back-edge-hot loops are lowered to
    /// straight-line traces with entry guards and side-exits, and their
    /// analysis events are flushed to tools once per loop iteration.
    Trace,
}

impl VmOpt {
    /// Parse a `--vm-opt` CLI value.
    pub fn parse(s: &str) -> Result<VmOpt, String> {
        match s {
            "off" => Ok(VmOpt::Off),
            "fuse" => Ok(VmOpt::Fuse),
            "trace" => Ok(VmOpt::Trace),
            other => Err(format!("unknown vm-opt `{other}` (off|fuse|trace)")),
        }
    }
}

impl std::fmt::Display for VmOpt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VmOpt::Off => "off",
            VmOpt::Fuse => "fuse",
            VmOpt::Trace => "trace",
        })
    }
}

/// One decoded, instrumented instruction in the code cache.
pub(crate) struct DecodedInst {
    pub(crate) pc: u64,
    pub(crate) inst: Inst,
    pub(crate) rtn: RoutineId,
    pub(crate) rtn_enter: bool,
    /// Resolved callee for direct calls.
    pub(crate) static_callee: RoutineId,
    /// `(tool index, subscribed events)` — attached at decode time.
    pub(crate) hooks: Box<[(u16, HookMask)]>,
}

/// A cached basic block: the dense pre-decoded instruction array, plus (in
/// [`VmOpt::Fuse`] and above) the fused dispatch plan over it.
pub(crate) struct Block {
    pub(crate) insts: Box<[DecodedInst]>,
    /// Fused dispatch plan ([`crate::fuse::BlockOp`] per dispatch). Empty
    /// in [`VmOpt::Off`]; the slow path always walks `insts` instead.
    pub(crate) ops: Box<[crate::fuse::BlockOp]>,
    /// True when the block may be recorded into a hot-loop trace: it ends
    /// in a branch/jump/fallthrough (not call/return/halt/exit), performs
    /// no host calls, and does not begin a routine.
    pub(crate) traceable: bool,
}

pub(crate) enum Next {
    Fall,
    Jump(u64),
    Exit(ExitReason),
}

/// The virtual machine.
///
/// ```
/// use tq_isa::{Asm, Inst, Reg, Program};
/// use tq_vm::{layout, Vm};
///
/// let mut a = Asm::new();
/// a.begin_routine("main").unwrap();
/// a.emit(Inst::Li { rd: Reg(1), imm: 21 });
/// a.emit(Inst::Add { rd: Reg(1), rs1: Reg(1), rs2: Reg(1) });
/// a.emit(Inst::Halt);
/// let img = a.finish("demo", layout::MAIN_TEXT_BASE, true).unwrap();
/// let entry = img.routines[0].start;
///
/// let mut vm = Vm::new(Program::new(img, entry)).unwrap();
/// let exit = vm.run(None).unwrap();
/// assert_eq!(vm.reg(Reg(1)), 42);
/// assert_eq!(exit.icount, 3);
/// ```
pub struct Vm {
    program: Program,
    info: ProgramInfo,
    /// `(start, end, id)` for every routine, sorted by start.
    rtn_index: Vec<(u64, u64, RoutineId)>,
    pub(crate) mem: Memory,
    pub(crate) regs: [u64; 32],
    pub(crate) fregs: [f64; 32],
    pub(crate) pc: u64,
    pub(crate) icount: u64,
    fs: HostFs,
    pub(crate) tools: Vec<Option<Box<dyn Tool>>>,
    tick_interval: Vec<u64>,
    tick_due: Vec<u64>,
    pub(crate) next_tick: u64,
    cache: HashMap<u64, Rc<Block>>,
    cache_enabled: bool,
    pub(crate) stats: VmStats,
    finished: bool,
    stack_limit: u64,
    /// Hot-loop optimisation level; see [`Vm::set_vm_opt`].
    pub(crate) vm_opt: VmOpt,
    /// Executable lowered traces, keyed by loop-head address.
    pub(crate) traces: HashMap<u64, Rc<crate::trace::ExecTrace>>,
    /// Back-edge execution counters per branch-target address;
    /// [`crate::trace::ABORTED`] marks heads that failed to record.
    pub(crate) hot: HashMap<u64, u32>,
    /// In-progress trace recording, if any.
    pub(crate) recording: Option<crate::trace::Recording>,
    /// Event buffer of the executing trace iteration.
    pub(crate) ev_buf: Vec<crate::trace::Pending>,
    /// Per-tool scratch for batched flushes (kept to reuse its allocation).
    pub(crate) ev_scratch: Vec<Event>,
    /// Instrumentation mode; see [`Vm::set_instr_mode`].
    instr_mode: InstrMode,
    /// Per-routine "never instrument" flags resolved from the mode's
    /// filter (indexed by routine id; empty when no filter restricts
    /// anything).
    instr_filtered: Vec<bool>,
    /// Slice-gating state machine (inactive under full instrumentation).
    pub(crate) instr_gate: InstrGate,
    /// Run metadata computed at fini for non-full modes.
    instr_info: Option<InstrInfo>,
}

impl Vm {
    /// Load a program. Fails if the program does not validate.
    pub fn new(program: Program) -> Result<Vm, VmError> {
        program.validate().map_err(VmError::Load)?;

        let mut routines = Vec::new();
        let mut rtn_index = Vec::new();
        for (img_idx, r) in program.routines() {
            let img = &program.images[img_idx];
            let id = RoutineId(routines.len() as u32);
            routines.push(RoutineMeta {
                id,
                name: r.name.clone(),
                image: img.name.clone(),
                main_image: img.is_main,
                start: r.start,
                end: r.end,
            });
            rtn_index.push((r.start, r.end, id));
        }
        rtn_index.sort_unstable();

        let mut mem = Memory::new();
        for img in &program.images {
            for seg in &img.data {
                mem.write(seg.addr, &seg.bytes)
                    .map_err(|e| VmError::Load(format!("data segment at {:#x}: {e}", seg.addr)))?;
            }
        }

        let mut regs = [0u64; 32];
        regs[abi::SP.idx()] = layout::STACK_BASE;

        let entry = program.entry;
        Ok(Vm {
            info: ProgramInfo {
                routines,
                stack_base: layout::STACK_BASE,
                entry,
            },
            program,
            rtn_index,
            mem,
            regs,
            fregs: [0.0; 32],
            pc: entry,
            icount: 0,
            fs: HostFs::new(),
            tools: Vec::new(),
            tick_interval: Vec::new(),
            tick_due: Vec::new(),
            next_tick: u64::MAX,
            cache: HashMap::new(),
            cache_enabled: true,
            stats: VmStats::default(),
            finished: false,
            stack_limit: layout::STACK_LIMIT,
            vm_opt: VmOpt::default(),
            traces: HashMap::new(),
            hot: HashMap::new(),
            recording: None,
            ev_buf: Vec::new(),
            ev_scratch: Vec::new(),
            instr_mode: InstrMode::default(),
            instr_filtered: Vec::new(),
            instr_gate: InstrGate::new(&InstrMode::default(), 0),
            instr_info: None,
        })
    }

    /// Static program facts (what tools receive at attach time).
    pub fn program_info(&self) -> &ProgramInfo {
        &self.info
    }

    /// The simulated file system.
    pub fn fs(&self) -> &HostFs {
        &self.fs
    }

    /// Mutable access to the simulated file system (to stage input files).
    pub fn fs_mut(&mut self) -> &mut HostFs {
        &mut self.fs
    }

    /// Console output so far.
    pub fn console(&self) -> &str {
        self.fs.console()
    }

    /// Execution statistics.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Current virtual clock.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Read an integer register (for assertions in tests/examples).
    pub fn reg(&self, r: tq_isa::Reg) -> u64 {
        self.regs[r.idx()]
    }

    /// Read a float register.
    pub fn freg(&self, f: tq_isa::FReg) -> f64 {
        self.fregs[f.idx()]
    }

    /// Direct read of simulated memory (host-side, not instrumented).
    pub fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfRange> {
        self.mem.read(addr, buf)
    }

    /// Direct write of simulated memory (host-side, not instrumented).
    pub fn mem_write(&mut self, addr: u64, buf: &[u8]) -> Result<(), OutOfRange> {
        self.mem.write(addr, buf)
    }

    /// Override the maximum stack size (defaults to
    /// [`layout::STACK_LIMIT`]). Useful to bound runaway recursion cheaply
    /// in tests.
    pub fn set_stack_limit(&mut self, bytes: u64) {
        self.stack_limit = bytes.min(layout::STACK_LIMIT);
    }

    /// Disable or re-enable the code cache. With the cache off, every block
    /// is re-decoded *and re-instrumented* on every execution — the naive
    /// instrumentation strategy Pin's design avoids; kept for the ablation
    /// bench.
    ///
    /// Disabling the cache also drops every recorded hot-loop trace, the
    /// back-edge counters and any in-progress recording, and hot-loop
    /// machinery stays off while the cache is off: traces are built *from*
    /// cached blocks, so keeping them alive would let the "naive
    /// re-instrument" baseline silently keep its fastest path and skew the
    /// ablation.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache.clear();
            self.traces.clear();
            self.hot.clear();
            self.recording = None;
        }
    }

    /// Set the hot-loop optimisation level (see [`VmOpt`]). Call before
    /// [`Vm::run`]: changing the level drops the code cache and all
    /// recorded traces so blocks are re-decoded (and re-instrumented)
    /// under the new level — mid-run switches therefore inflate
    /// `blocks_built`/`instrument_calls` relative to a single-level run.
    pub fn set_vm_opt(&mut self, opt: VmOpt) {
        if opt == self.vm_opt {
            return;
        }
        self.vm_opt = opt;
        self.cache.clear();
        self.traces.clear();
        self.hot.clear();
        self.recording = None;
    }

    /// The current hot-loop optimisation level.
    pub fn vm_opt(&self) -> VmOpt {
        self.vm_opt
    }

    /// Set the instrumentation mode (see [`InstrMode`], DESIGN.md §14).
    /// Must be called before execution starts, like [`Vm::attach_tool`]:
    /// filters act at instrumentation time, so blocks cached under another
    /// mode would be wrong. Fails on routine names the program does not
    /// define.
    ///
    /// Filters operate over symbols: code outside every routine
    /// ([`RoutineId::INVALID`]) is always instrumented.
    pub fn set_instr_mode(&mut self, mode: InstrMode) -> Result<(), String> {
        assert!(
            self.cache.is_empty() && self.icount == 0,
            "the instrumentation mode must be set before execution starts"
        );
        let mut filtered = Vec::new();
        if let Some(f) = &mode.filter {
            if !f.is_all() {
                let mut named = vec![false; self.info.routines.len()];
                for name in &f.names {
                    let id = self
                        .info
                        .routine_named(name)
                        .ok_or_else(|| format!("unknown routine `{name}` in --instr filter"))?;
                    named[id.idx()] = true;
                }
                filtered = if f.exclude {
                    named
                } else {
                    named.iter().map(|&n| !n).collect()
                };
            }
        }
        self.instr_gate = InstrGate::new(&mode, self.info.routines.len());
        self.instr_filtered = filtered;
        self.instr_mode = mode;
        Ok(())
    }

    /// The current instrumentation mode.
    pub fn instr_mode(&self) -> &InstrMode {
        &self.instr_mode
    }

    /// What the reduced-instrumentation run actually did. `None` until the
    /// run finishes, and always `None` under (observationally) full
    /// instrumentation.
    pub fn instr_info(&self) -> Option<&InstrInfo> {
        self.instr_info.as_ref()
    }

    /// Whether the code cache is enabled (see [`Vm::set_cache_enabled`]).
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Attach an analysis tool. Must be called before [`Vm::run`]; attaching
    /// after blocks have been cached would miss them (as with Pin, tools
    /// attach at start-up).
    pub fn attach_tool(&mut self, mut tool: Box<dyn Tool>) -> ToolHandle {
        assert!(
            self.cache.is_empty() && self.icount == 0,
            "tools must be attached before execution starts"
        );
        tool.on_attach(&self.info);
        let interval = tool.tick_interval().unwrap_or(u64::MAX);
        let handle = ToolHandle(self.tools.len());
        self.tools.push(Some(tool));
        self.tick_interval.push(interval);
        self.tick_due.push(if interval == u64::MAX {
            u64::MAX
        } else {
            interval
        });
        self.recompute_next_tick();
        handle
    }

    /// Borrow an attached tool, downcast to its concrete type.
    pub fn tool<T: Tool + 'static>(&self, h: ToolHandle) -> Option<&T> {
        self.tools.get(h.0)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Remove an attached tool and return it, downcast. Returns `None` if
    /// the handle is stale or the type does not match.
    pub fn detach_tool<T: Tool + 'static>(&mut self, h: ToolHandle) -> Option<Box<T>> {
        let slot = self.tools.get_mut(h.0)?;
        let tool = slot.take()?;
        tool.into_any().downcast::<T>().ok()
    }

    fn recompute_next_tick(&mut self) {
        self.next_tick = self.tick_due.iter().copied().min().unwrap_or(u64::MAX);
    }

    fn rtn_at(index: &[(u64, u64, RoutineId)], pc: u64) -> RoutineId {
        let i = match index.binary_search_by(|probe| probe.0.cmp(&pc)) {
            Ok(i) => i,
            Err(0) => return RoutineId::INVALID,
            Err(i) => i - 1,
        };
        let (_, end, id) = index[i];
        if pc < end {
            id
        } else {
            RoutineId::INVALID
        }
    }

    fn build_block(&mut self, start: u64) -> Result<Block, VmError> {
        let Some((_, img)) = self.program.image_at(start) else {
            return Err(VmError::BadPc(start));
        };
        let img_base = img.base;
        let img_end = img.text_end();
        let is_main = img.is_main;

        let mut insts = Vec::new();
        let mut pc = start;
        loop {
            // Fetch straight from the image (instruction memory is not data
            // memory; there is no self-modifying code, as Pin also assumes
            // by default).
            let idx = ((pc - img_base) / INST_BYTES) as usize;
            let word = self.program.image_at(pc).unwrap().1.text[idx];
            let inst = tq_isa::decode(word).map_err(|err| VmError::Decode { pc, err })?;

            let rtn = Self::rtn_at(&self.rtn_index, pc);
            let rtn_enter = rtn != RoutineId::INVALID && self.info.routines[rtn.idx()].start == pc;
            let static_callee = match inst {
                Inst::Call { target } => Self::rtn_at(&self.rtn_index, target as u64),
                _ => RoutineId::INVALID,
            };

            // Instrumentation time: ask every tool what it wants.
            let ctx = InsContext {
                pc,
                inst: &inst,
                rtn,
                main_image: is_main,
                is_rtn_start: rtn_enter,
            };
            // Routine filter: an excluded routine is never instrumented —
            // its block carries no hooks, so it constructs no events at
            // all (the cheapest possible mode; an all-routines filter takes
            // this exact code path and stays byte-identical to full).
            let filter_out = !self.instr_filtered.is_empty()
                && rtn != RoutineId::INVALID
                && self.instr_filtered[rtn.idx()];
            let mut hook_list: Vec<(u16, HookMask)> = Vec::new();
            if !filter_out {
                for (ti, slot) in self.tools.iter_mut().enumerate() {
                    if let Some(tool) = slot.as_mut() {
                        self.stats.instrument_calls += 1;
                        let mask = tool.instrument_ins(&ctx);
                        if mask != hooks::NONE {
                            hook_list.push((ti as u16, mask));
                        }
                    }
                }
            }

            let ends = inst.ends_block();
            insts.push(DecodedInst {
                pc,
                inst,
                rtn,
                rtn_enter,
                static_callee,
                hooks: hook_list.into_boxed_slice(),
            });
            if ends {
                break;
            }
            pc += INST_BYTES;
            if pc >= img_end {
                break;
            }
            // Do not flow past a routine boundary: routine-entry events must
            // sit at the head position of their own block.
            if Self::rtn_at(&self.rtn_index, pc) != Self::rtn_at(&self.rtn_index, pc - INST_BYTES) {
                break;
            }
        }
        self.stats.blocks_built += 1;

        // Fused dispatch plan (stage 2). Only built above `Off`: the
        // baseline keeps decode exactly as cheap as it was.
        let ops = if self.vm_opt != VmOpt::Off {
            crate::fuse::build_ops(&insts)
        } else {
            Vec::new().into_boxed_slice()
        };
        if ops
            .iter()
            .any(|op| matches!(op, crate::fuse::BlockOp::Fused { .. }))
        {
            self.stats.blocks_fused += 1;
        }

        let last = insts.last().expect("blocks are non-empty");
        let ender_ok =
            matches!(last.inst, Inst::Br { .. } | Inst::Jmp { .. }) || !last.inst.ends_block();
        let traceable = ender_ok
            && !insts[0].rtn_enter
            && insts.iter().all(|d| !matches!(d.inst, Inst::Host { .. }));

        Ok(Block {
            insts: insts.into_boxed_slice(),
            ops,
            traceable,
        })
    }

    pub(crate) fn fetch_block(&mut self, pc: u64) -> Result<Rc<Block>, VmError> {
        if self.cache_enabled {
            if let Some(b) = self.cache.get(&pc) {
                self.stats.cache_hits += 1;
                return Ok(b.clone());
            }
        }
        let b = Rc::new(self.build_block(pc)?);
        if self.cache_enabled {
            self.cache.insert(pc, b.clone());
        }
        Ok(b)
    }

    #[inline]
    fn dispatch(&mut self, d: &DecodedInst, bit: HookMask, ev: &Event) {
        for &(ti, mask) in d.hooks.iter() {
            if mask & bit != 0 {
                if let Some(tool) = self.tools[ti as usize].as_mut() {
                    self.stats.events_delivered += 1;
                    tool.on_event(ev);
                }
            }
        }
    }

    /// Deliver (or, inside a trace iteration with `BUF = true`, defer) one
    /// analysis event. Buffered events are flushed to tools in execution
    /// order once per trace iteration by [`crate::trace::flush_events`].
    #[inline]
    fn emit<const BUF: bool>(
        &mut self,
        d: &DecodedInst,
        seg: u32,
        idx: u16,
        bit: HookMask,
        ev: Event,
    ) {
        if BUF {
            self.ev_buf.push(crate::trace::Pending {
                seg,
                inst: idx,
                bit,
                ev,
            });
        } else {
            self.dispatch(d, bit, &ev);
        }
    }

    #[inline]
    pub(crate) fn fire_mem_read<const BUF: bool>(
        &mut self,
        d: &DecodedInst,
        seg: u32,
        idx: u16,
        ea: u64,
        size: u32,
        is_prefetch: bool,
    ) {
        if !is_prefetch {
            self.stats.mem_reads += 1;
        }
        if d.hooks.is_empty() {
            return;
        }
        // Slice gating (`--instr sample|converge`): memory events of a
        // dead slice / gated routine are never constructed. Control events
        // and ticks are not gated, so tool call stacks stay exact.
        if self.instr_gate.active() && !self.instr_gate.admit(d.rtn, size, !is_prefetch) {
            self.stats.instr_suppressed += 1;
            return;
        }
        let ev = Event::MemRead {
            ip: d.pc,
            ea,
            size,
            sp: self.regs[abi::SP.idx()],
            is_prefetch,
            icount: self.icount,
            rtn: d.rtn,
        };
        self.emit::<BUF>(d, seg, idx, hooks::MEM_READ, ev);
    }

    #[inline]
    pub(crate) fn fire_mem_write<const BUF: bool>(
        &mut self,
        d: &DecodedInst,
        seg: u32,
        idx: u16,
        ea: u64,
        size: u32,
    ) {
        self.stats.mem_writes += 1;
        if d.hooks.is_empty() {
            return;
        }
        if self.instr_gate.active() && !self.instr_gate.admit(d.rtn, size, true) {
            self.stats.instr_suppressed += 1;
            return;
        }
        let ev = Event::MemWrite {
            ip: d.pc,
            ea,
            size,
            sp: self.regs[abi::SP.idx()],
            icount: self.icount,
            rtn: d.rtn,
        };
        self.emit::<BUF>(d, seg, idx, hooks::MEM_WRITE, ev);
    }

    /// Fire the routine-entry analysis event if this decoded instruction
    /// heads a routine and any tool subscribed. Only the first instruction
    /// of a block can be a routine head (blocks never cross routine
    /// boundaries), and traceable blocks exclude routine heads, so this is
    /// never reached from inside a trace.
    #[inline]
    pub(crate) fn fire_rtn_enter(&mut self, d: &DecodedInst) {
        if d.rtn_enter && !d.hooks.is_empty() {
            let ev = Event::RoutineEnter {
                rtn: d.rtn,
                sp: self.regs[abi::SP.idx()],
                icount: self.icount,
            };
            self.dispatch(d, hooks::RTN_ENTER, &ev);
        }
    }

    pub(crate) fn fire_ticks(&mut self, ip: u64, rtn: RoutineId) {
        for ti in 0..self.tools.len() {
            while self.tick_due[ti] <= self.icount {
                let ev = Event::Tick {
                    icount: self.icount,
                    ip,
                    rtn,
                };
                if let Some(tool) = self.tools[ti].as_mut() {
                    self.stats.events_delivered += 1;
                    tool.on_event(&ev);
                }
                self.tick_due[ti] += self.tick_interval[ti];
            }
        }
        self.recompute_next_tick();
    }

    pub(crate) fn fini(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        crate::obs::publish(&self.stats, self.icount);
        let icount = self.icount;
        // Reduced-instrumentation runs hand every tool the mode metadata
        // (what was dropped, and where) before its Fini callback, so
        // reconstruction happens with the final gap log in hand.
        if !self.instr_mode.is_full() {
            let mut info = InstrInfo {
                spec: self.instr_mode.to_string(),
                slice_len: self.instr_mode.slice_len(),
                sample_period: self.instr_mode.sample.map(|s| s.period).unwrap_or(0),
                sample_offset: self.instr_mode.sample.map(|s| s.offset()).unwrap_or(0),
                filtered: Vec::new(),
                gaps: self.instr_gate.finish(icount),
                total_icount: icount,
            };
            info.filtered = self
                .instr_filtered
                .iter()
                .enumerate()
                .filter_map(|(i, &f)| f.then_some(i as u32))
                .collect();
            for slot in self.tools.iter_mut() {
                if let Some(tool) = slot.as_mut() {
                    tool.on_instr(&info);
                }
            }
            self.instr_info = Some(info);
        }
        for slot in self.tools.iter_mut() {
            if let Some(tool) = slot.as_mut() {
                tool.on_fini(icount);
            }
        }
    }

    #[inline]
    fn r(&self, r: tq_isa::Reg) -> u64 {
        self.regs[r.idx()]
    }

    #[inline]
    fn f(&self, f: tq_isa::FReg) -> f64 {
        self.fregs[f.idx()]
    }

    /// Execute one decoded instruction. `seg`/`idx` locate it inside the
    /// executing trace segment for buffered event delivery (`BUF = true`);
    /// both are ignored on the immediate-dispatch path (`BUF = false`).
    pub(crate) fn exec<const BUF: bool>(
        &mut self,
        d: &DecodedInst,
        seg: u32,
        idx: u16,
    ) -> Result<Next, VmError> {
        use Inst::*;
        let pc = d.pc;
        let merr = |err: OutOfRange| VmError::Mem { pc, err };
        match d.inst {
            Add { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1).wrapping_add(self.r(rs2)),
            Sub { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1).wrapping_sub(self.r(rs2)),
            Mul { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1).wrapping_mul(self.r(rs2)),
            Div { rd, rs1, rs2 } => {
                let (a, b) = (self.r(rs1) as i64, self.r(rs2) as i64);
                self.regs[rd.idx()] = if b == 0 { 0 } else { a.wrapping_div(b) as u64 };
            }
            Rem { rd, rs1, rs2 } => {
                let (a, b) = (self.r(rs1) as i64, self.r(rs2) as i64);
                self.regs[rd.idx()] = if b == 0 { 0 } else { a.wrapping_rem(b) as u64 };
            }
            And { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1) & self.r(rs2),
            Or { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1) | self.r(rs2),
            Xor { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1) ^ self.r(rs2),
            Shl { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1) << (self.r(rs2) & 63),
            Shr { rd, rs1, rs2 } => self.regs[rd.idx()] = self.r(rs1) >> (self.r(rs2) & 63),
            Sra { rd, rs1, rs2 } => {
                self.regs[rd.idx()] = ((self.r(rs1) as i64) >> (self.r(rs2) & 63)) as u64
            }
            Slt { rd, rs1, rs2 } => {
                self.regs[rd.idx()] = ((self.r(rs1) as i64) < (self.r(rs2) as i64)) as u64
            }
            Sltu { rd, rs1, rs2 } => self.regs[rd.idx()] = (self.r(rs1) < self.r(rs2)) as u64,

            AddI { rd, rs1, imm } => {
                self.regs[rd.idx()] = self.r(rs1).wrapping_add(imm as i64 as u64)
            }
            MulI { rd, rs1, imm } => {
                self.regs[rd.idx()] = self.r(rs1).wrapping_mul(imm as i64 as u64)
            }
            AndI { rd, rs1, imm } => self.regs[rd.idx()] = self.r(rs1) & (imm as i64 as u64),
            OrI { rd, rs1, imm } => self.regs[rd.idx()] = self.r(rs1) | (imm as i64 as u64),
            XorI { rd, rs1, imm } => self.regs[rd.idx()] = self.r(rs1) ^ (imm as i64 as u64),
            ShlI { rd, rs1, imm } => self.regs[rd.idx()] = self.r(rs1) << (imm as u32 & 63),
            ShrI { rd, rs1, imm } => self.regs[rd.idx()] = self.r(rs1) >> (imm as u32 & 63),
            SraI { rd, rs1, imm } => {
                self.regs[rd.idx()] = ((self.r(rs1) as i64) >> (imm as u32 & 63)) as u64
            }
            SltI { rd, rs1, imm } => {
                self.regs[rd.idx()] = ((self.r(rs1) as i64) < imm as i64) as u64
            }

            Li { rd, imm } => self.regs[rd.idx()] = imm as i64 as u64,
            OrHi { rd, imm } => {
                self.regs[rd.idx()] = (self.r(rd) & 0xFFFF_FFFF) | (((imm as u32) as u64) << 32)
            }
            Mv { rd, rs } => self.regs[rd.idx()] = self.r(rs),

            FAdd { fd, fs1, fs2 } => self.fregs[fd.idx()] = self.f(fs1) + self.f(fs2),
            FSub { fd, fs1, fs2 } => self.fregs[fd.idx()] = self.f(fs1) - self.f(fs2),
            FMul { fd, fs1, fs2 } => self.fregs[fd.idx()] = self.f(fs1) * self.f(fs2),
            FDiv { fd, fs1, fs2 } => self.fregs[fd.idx()] = self.f(fs1) / self.f(fs2),
            FMin { fd, fs1, fs2 } => self.fregs[fd.idx()] = self.f(fs1).min(self.f(fs2)),
            FMax { fd, fs1, fs2 } => self.fregs[fd.idx()] = self.f(fs1).max(self.f(fs2)),
            FNeg { fd, fs } => self.fregs[fd.idx()] = -self.f(fs),
            FAbs { fd, fs } => self.fregs[fd.idx()] = self.f(fs).abs(),
            FSqrt { fd, fs } => self.fregs[fd.idx()] = self.f(fs).sqrt(),
            FSin { fd, fs } => self.fregs[fd.idx()] = self.f(fs).sin(),
            FCos { fd, fs } => self.fregs[fd.idx()] = self.f(fs).cos(),
            FMv { fd, fs } => self.fregs[fd.idx()] = self.f(fs),
            FLi { fd, value } => self.fregs[fd.idx()] = value as f64,
            ItoF { fd, rs } => self.fregs[fd.idx()] = self.r(rs) as i64 as f64,
            FtoI { rd, fs } => self.regs[rd.idx()] = (self.f(fs) as i64) as u64,
            FLt { rd, fs1, fs2 } => self.regs[rd.idx()] = (self.f(fs1) < self.f(fs2)) as u64,
            FLe { rd, fs1, fs2 } => self.regs[rd.idx()] = (self.f(fs1) <= self.f(fs2)) as u64,
            FEq { rd, fs1, fs2 } => self.regs[rd.idx()] = (self.f(fs1) == self.f(fs2)) as u64,

            Ld {
                rd,
                base,
                off,
                width,
            } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                let size = width.bytes();
                let v = self.mem.read_uint(ea, size).map_err(merr)?;
                self.regs[rd.idx()] = v;
                self.fire_mem_read::<BUF>(d, seg, idx, ea, size, false);
            }
            St {
                rs,
                base,
                off,
                width,
            } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                let size = width.bytes();
                self.mem.write_uint(ea, size, self.r(rs)).map_err(merr)?;
                self.fire_mem_write::<BUF>(d, seg, idx, ea, size);
            }
            FLd { fd, base, off } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                self.fregs[fd.idx()] = self.mem.read_f64(ea).map_err(merr)?;
                self.fire_mem_read::<BUF>(d, seg, idx, ea, 8, false);
            }
            FSt { fs, base, off } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                self.mem.write_f64(ea, self.f(fs)).map_err(merr)?;
                self.fire_mem_write::<BUF>(d, seg, idx, ea, 8);
            }
            FLd4 { fd, base, off } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                self.fregs[fd.idx()] = self.mem.read_f32(ea).map_err(merr)?;
                self.fire_mem_read::<BUF>(d, seg, idx, ea, 4, false);
            }
            FSt4 { fs, base, off } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                self.mem.write_f32(ea, self.f(fs)).map_err(merr)?;
                self.fire_mem_write::<BUF>(d, seg, idx, ea, 4);
            }
            Prefetch { base, off } => {
                let ea = self.r(base).wrapping_add(off as i64 as u64);
                // No architectural effect; the event fires flagged.
                self.fire_mem_read::<BUF>(d, seg, idx, ea, 8, true);
            }
            PLd64 {
                rd,
                base,
                pred,
                off,
            } => {
                if self.r(pred) != 0 {
                    let ea = self.r(base).wrapping_add(off as i64 as u64);
                    self.regs[rd.idx()] = self.mem.read_uint(ea, 8).map_err(merr)?;
                    self.fire_mem_read::<BUF>(d, seg, idx, ea, 8, false);
                }
            }
            PSt64 {
                rs,
                base,
                pred,
                off,
            } => {
                if self.r(pred) != 0 {
                    let ea = self.r(base).wrapping_add(off as i64 as u64);
                    self.mem.write_uint(ea, 8, self.r(rs)).map_err(merr)?;
                    self.fire_mem_write::<BUF>(d, seg, idx, ea, 8);
                }
            }
            BCpy { dst, src, len } => {
                // `rep movsb` analogue: one instruction, one read event and
                // one write event of `len` bytes. Oversized block moves are
                // rejected rather than silently truncated.
                let n = self.r(len);
                if n > MAX_BLOCK_COPY {
                    return Err(VmError::Mem {
                        pc,
                        err: OutOfRange {
                            addr: self.r(src),
                            size: u32::MAX,
                        },
                    });
                }
                if n > 0 {
                    let s_addr = self.r(src);
                    let d_addr = self.r(dst);
                    let mut buf = vec![0u8; n as usize];
                    self.mem.read(s_addr, &mut buf).map_err(merr)?;
                    self.mem.write(d_addr, &buf).map_err(merr)?;
                    self.fire_mem_read::<BUF>(d, seg, idx, s_addr, n as u32, false);
                    self.fire_mem_write::<BUF>(d, seg, idx, d_addr, n as u32);
                }
            }

            Jmp { target } => return Ok(Next::Jump(target as u64)),
            Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.r(rs1), self.r(rs2)) {
                    return Ok(Next::Jump(target as u64));
                }
            }
            Call { target } => {
                let t = target as u64;
                return self.exec_call::<BUF>(d, seg, idx, t, d.static_callee);
            }
            CallR { rs } => {
                let t = self.r(rs);
                let callee = Self::rtn_at(&self.rtn_index, t);
                return self.exec_call::<BUF>(d, seg, idx, t, callee);
            }
            Ret => {
                let sp = self.r(abi::SP);
                let ra = self.mem.read_uint(sp, 8).map_err(merr)?;
                self.fire_mem_read::<BUF>(d, seg, idx, sp, 8, false);
                self.regs[abi::SP.idx()] = sp + 8;
                if !d.hooks.is_empty() {
                    let ev = Event::Ret {
                        ip: d.pc,
                        return_to: ra,
                        icount: self.icount,
                        rtn: d.rtn,
                    };
                    self.emit::<BUF>(d, seg, idx, hooks::RET, ev);
                }
                return Ok(Next::Jump(ra));
            }

            Host { func } => return self.exec_host(func, pc),
            Halt => return Ok(Next::Exit(ExitReason::Halted)),
            Nop => {}
        }
        Ok(Next::Fall)
    }

    fn exec_call<const BUF: bool>(
        &mut self,
        d: &DecodedInst,
        seg: u32,
        idx: u16,
        target: u64,
        callee: RoutineId,
    ) -> Result<Next, VmError> {
        let sp = self.r(abi::SP).wrapping_sub(8);
        if sp < layout::STACK_BASE - self.stack_limit {
            return Err(VmError::StackOverflow { sp });
        }
        let ret_addr = d.pc + INST_BYTES;
        self.mem
            .write_uint(sp, 8, ret_addr)
            .map_err(|err| VmError::Mem { pc: d.pc, err })?;
        self.regs[abi::SP.idx()] = sp;
        self.fire_mem_write::<BUF>(d, seg, idx, sp, 8);
        if !d.hooks.is_empty() {
            let ev = Event::Call {
                ip: d.pc,
                callee,
                icount: self.icount,
                rtn: d.rtn,
            };
            self.emit::<BUF>(d, seg, idx, hooks::CALL, ev);
        }
        Ok(Next::Jump(target))
    }

    fn exec_host(&mut self, func: HostFn, pc: u64) -> Result<Next, VmError> {
        let merr = |err: OutOfRange| VmError::Mem { pc, err };
        match func {
            HostFn::Exit => {
                return Ok(Next::Exit(ExitReason::Exited(self.r(abi::A0) as i64)));
            }
            HostFn::PrintI64 => {
                let v = self.r(abi::A0) as i64;
                self.fs.console_push(&format!("{v}\n"));
            }
            HostFn::PrintF64 => {
                let v = self.f(abi::FA0);
                self.fs.console_push(&format!("{v:.6}\n"));
            }
            HostFn::PrintChar => {
                let c = (self.r(abi::A0) & 0xFF) as u8 as char;
                self.fs.console_push(&c.to_string());
            }
            HostFn::FsOpen => {
                let ptr = self.r(abi::A0);
                let len = self.r(abi::A1) as usize;
                let mode = if self.r(abi::A2) == 0 {
                    FsMode::Read
                } else {
                    FsMode::Write
                };
                let mut buf = vec![0u8; len.min(4096)];
                self.mem.read(ptr, &mut buf).map_err(merr)?;
                let name = String::from_utf8_lossy(&buf).into_owned();
                let fd = self.fs.open(&name, mode).unwrap_or(-1);
                self.regs[abi::A0.idx()] = fd as u64;
            }
            HostFn::FsClose => {
                let ok = self.fs.close(self.r(abi::A0) as i64);
                self.regs[abi::A0.idx()] = if ok { 0 } else { -1i64 as u64 };
            }
            HostFn::FsRead => {
                let fd = self.r(abi::A0) as i64;
                let ptr = self.r(abi::A1);
                let len = self.r(abi::A2) as usize;
                let mut buf = vec![0u8; len];
                let n = self.fs.read(fd, &mut buf);
                if n > 0 {
                    // Host-side copy: invisible to instrumentation, like a
                    // kernel-mode copy under Pin.
                    self.mem.write(ptr, &buf[..n as usize]).map_err(merr)?;
                }
                self.regs[abi::A0.idx()] = n as u64;
            }
            HostFn::FsWrite => {
                let fd = self.r(abi::A0) as i64;
                let ptr = self.r(abi::A1);
                let len = self.r(abi::A2) as usize;
                let mut buf = vec![0u8; len];
                self.mem.read(ptr, &mut buf).map_err(merr)?;
                let n = self.fs.write(fd, &buf);
                self.regs[abi::A0.idx()] = n as u64;
            }
            HostFn::FsSize => {
                let n = self.fs.size(self.r(abi::A0) as i64);
                self.regs[abi::A0.idx()] = n as u64;
            }
            HostFn::Icount => {
                self.regs[abi::A0.idx()] = self.icount;
            }
        }
        Ok(Next::Fall)
    }
}
