//! The interpreter main loop: block-level dispatch with hoisted checks.
//!
//! The original interpreter paid three branches per instruction before even
//! reaching the opcode match: fuel, tick and routine-entry checks. This
//! loop hoists the first two to block granularity: a block whose full body
//! fits below both the fuel limit and the next tool tick executes on a
//! *fast path* with no per-instruction checks at all — over the fused
//! dispatch plan when [`VmOpt`] enables it. Only when a boundary could fall
//! inside the block does the *slow path* replicate the original
//! per-instruction sequence exactly (over the unfused body), so boundary
//! behaviour — which instruction exhausts fuel, where a tick fires — is
//! bit-identical to the baseline by construction.
//!
//! In [`VmOpt::Trace`], the loop additionally checks for an executable
//! trace at the current pc before dispatching, and profiles back-edges
//! after every block (see [`crate::trace`]).

use crate::vm::{Block, Next, RunExit, Vm, VmError, VmOpt};
use tq_isa::INST_BYTES;

impl Vm {
    /// Run until the program halts/exits, a fatal error occurs, or `fuel`
    /// instructions have executed. `None` means unlimited fuel.
    pub fn run(&mut self, fuel: Option<u64>) -> Result<RunExit, VmError> {
        let fuel_limit = fuel
            .map(|f| self.icount.saturating_add(f))
            .unwrap_or(u64::MAX);

        loop {
            if self.vm_opt == VmOpt::Trace && self.recording.is_none() {
                if let Some(tr) = self.traces.get(&self.pc) {
                    let tr = tr.clone();
                    if crate::trace::can_enter(self, &tr, fuel_limit) {
                        self.pc = crate::trace::run_trace(self, &tr, fuel_limit)?;
                        continue;
                    }
                }
            }

            let block = self.fetch_block(self.pc)?;
            self.stats.block_execs += 1;
            let block_pc = self.pc;

            let next_pc = match self.exec_block(&block, fuel_limit)? {
                // Fallthrough off the end of a block that stopped at a
                // routine boundary or image end.
                Next::Fall => block.insts.last().expect("blocks are non-empty").pc + INST_BYTES,
                Next::Jump(t) => t,
                Next::Exit(reason) => {
                    self.fini();
                    return Ok(RunExit {
                        reason,
                        icount: self.icount,
                    });
                }
            };
            if self.vm_opt == VmOpt::Trace {
                crate::trace::after_block(self, &block, block_pc, next_pc);
            }
            self.pc = next_pc;
        }
    }

    /// Execute one cached block body. Picks the checked slow path whenever
    /// the fuel limit or a tool tick could fall inside the block.
    fn exec_block(&mut self, block: &Block, fuel_limit: u64) -> Result<Next, VmError> {
        let n = block.insts.len() as u64;
        let end = self.icount.saturating_add(n);
        // Tick and gating-slice boundaries fold into one hoisted bound so
        // the fast path pays a single compare for both.
        let stop = self.next_tick.min(self.instr_gate.next_edge());
        if end <= fuel_limit && end < stop {
            if self.vm_opt == VmOpt::Off {
                for (i, d) in block.insts.iter().enumerate() {
                    self.icount += 1;
                    self.fire_rtn_enter(d);
                    match self.exec::<false>(d, 0, i as u16)? {
                        Next::Fall => {}
                        other => return Ok(other),
                    }
                }
            } else {
                for op in block.ops.iter() {
                    match crate::fuse::exec_op::<false>(self, block, op, 0)? {
                        Next::Fall => {}
                        other => return Ok(other),
                    }
                }
            }
        } else {
            // Boundary-exact slow path: the original interpreter's
            // per-instruction check sequence, over the unfused body.
            for (i, d) in block.insts.iter().enumerate() {
                if self.icount >= fuel_limit {
                    return Err(VmError::FuelExhausted {
                        icount: self.icount,
                    });
                }
                self.icount += 1;
                if self.icount >= self.next_tick {
                    self.fire_ticks(d.pc, d.rtn);
                }
                // Gating-slice boundaries are hoisted exactly like ticks:
                // the fast path never crosses one.
                self.instr_gate.advance(self.icount);
                self.fire_rtn_enter(d);
                match self.exec::<false>(d, 0, i as u16)? {
                    Next::Fall => {}
                    other => return Ok(other),
                }
            }
        }
        Ok(Next::Fall)
    }
}
