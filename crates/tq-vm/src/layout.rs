//! Address-space layout of the VM.
//!
//! The layout is a fixed convention shared by the loader, the kernel
//! compiler and the profiling tools:
//!
//! ```text
//! 0x0001_0000  main image text
//! 0x0100_0000  library image text ("libsim")
//! 0x1000_0000  globals / initialised data
//! 0x2000_0000  heap (bump-allocated by the compiler's static allocator)
//! 0x3FFF_FF00  stack base — the stack grows DOWN from here
//! ```
//!
//! tQUAD classifies an access as *local stack area* when it falls between
//! the current stack pointer and the stack base ([`is_stack_access`]); the
//! paper's tool receives `REG_STACK_PTR` as an extra analysis-routine
//! argument for exactly this purpose.

/// Base address of the main image's text section.
pub const MAIN_TEXT_BASE: u64 = 0x0001_0000;
/// Base address of the library image's text section.
pub const LIB_TEXT_BASE: u64 = 0x0100_0000;
/// Base address of the globals segment.
pub const GLOBALS_BASE: u64 = 0x1000_0000;
/// Base address of the heap segment.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Stack base: initial stack pointer; the stack grows down.
pub const STACK_BASE: u64 = 0x3FFF_FF00;
/// Maximum stack size in bytes; pushing past this is a stack overflow.
pub const STACK_LIMIT: u64 = 64 << 20;
/// One past the highest valid address (4 GiB simulated address space).
pub const ADDR_SPACE_END: u64 = 1 << 32;

/// True when an access at `ea` counts as a *local stack area* access given
/// the current stack pointer: at or above `sp` (the live frame and its
/// callers) and below the stack base.
#[inline]
pub fn is_stack_access(ea: u64, sp: u64) -> bool {
    // A small grace region below SP covers leaf writes at negative offsets
    // (the compiler addresses outgoing spill slots below SP before moving
    // it); x86 red-zone accesses are classified the same way by tQUAD.
    const RED_ZONE: u64 = 128;
    ea >= sp.saturating_sub(RED_ZONE) && ea < STACK_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_classification() {
        let sp = STACK_BASE - 0x1000;
        assert!(is_stack_access(sp, sp));
        assert!(is_stack_access(sp + 8, sp));
        assert!(is_stack_access(STACK_BASE - 1, sp));
        assert!(!is_stack_access(STACK_BASE, sp));
        assert!(is_stack_access(sp - 8, sp), "red zone counts as stack");
        assert!(!is_stack_access(GLOBALS_BASE, sp));
        assert!(!is_stack_access(HEAP_BASE + 123, sp));
    }

    #[test]
    fn segments_are_ordered_and_disjoint() {
        // Compile-time layout invariants; evaluated in a const block so the
        // checks run even if this test is filtered out.
        const { assert!(MAIN_TEXT_BASE < LIB_TEXT_BASE) };
        const { assert!(LIB_TEXT_BASE < GLOBALS_BASE) };
        const { assert!(GLOBALS_BASE < HEAP_BASE) };
        const { assert!(HEAP_BASE < STACK_BASE - STACK_LIMIT) };
        const { assert!(STACK_BASE < ADDR_SPACE_END) };
    }
}
