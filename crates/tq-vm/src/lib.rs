//! # tq-vm — a Pin-like dynamic binary instrumentation VM
//!
//! tQUAD (ICPP 2010) is implemented on Intel Pin: a JIT-based framework
//! where *instrumentation* code runs once per compiled trace and decides
//! which *analysis* calls to inject, and the injected calls then run on
//! every execution. This crate reproduces that architecture for the
//! [`tq_isa`] instruction set:
//!
//! * [`Vm`] — loader + interpreter with a basic-block **code cache**; blocks
//!   are decoded and instrumented once, executed many times;
//! * [`Tool`] — the plug-in trait mirroring Pin's `INS_AddInstrumentFunction`
//!   / `RTN_AddInstrumentFunction` / `INS_InsertPredicatedCall` API surface;
//! * [`Memory`] — a sparse paged 4 GiB address space;
//! * [`HostFs`] — the simulated OS interface (files + console) whose copies
//!   are invisible to tools, as kernel-mode code is to Pin.
//!
//! See `DESIGN.md` at the workspace root for how this substitutes for Pin in
//! the paper's experiments.

#![warn(missing_docs)]

mod dispatch;
mod fuse;
pub mod hostfs;
pub mod instr;
pub mod layout;
pub mod mem;
mod obs;
pub mod tool;
mod trace;
pub mod vm;

pub use hostfs::{FsMode, HostFs};
pub use instr::{
    ConvergeSpec, InstrEmulator, InstrGap, InstrGate, InstrInfo, InstrMode, RoutineFilter,
    SampleSpec,
};
pub use layout::is_stack_access;
pub use mem::{Memory, OutOfRange};
pub use tool::{
    event_bit, hooks, standard_mask, AsAny, Event, HookMask, InsContext, MergeTool, ProgramInfo,
    RoutineMeta, ShardContext, Tool,
};
pub use vm::{ExitReason, RunExit, ToolHandle, Vm, VmError, VmOpt, VmStats};
