//! Self-profiling counters for the interpreter's optimisation machinery.
//!
//! Published once per VM lifetime at `fini` time (so a run contributes its
//! totals exactly once), cumulatively across VMs in the process — the same
//! shape as the capture/replay counters in `tq-trace`. Scraped through the
//! usual `tq-obs` Prometheus export in `tq serve`.

use crate::vm::VmStats;
use std::sync::OnceLock;
use tq_obs::{Counter, Gauge};

fn blocks_fused() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        tq_obs::counter(
            "tq_vm_blocks_fused_total",
            "Basic blocks whose decode produced at least one fused superinstruction",
        )
    })
}

fn traces_recorded() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        tq_obs::counter(
            "tq_vm_traces_recorded_total",
            "Hot-loop traces recorded and lowered to executable form",
        )
    })
}

fn trace_side_exits() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        tq_obs::counter(
            "tq_vm_trace_side_exits_total",
            "Trace guard failures that fell back to the interpreter",
        )
    })
}

fn trace_instr_share_bp() -> &'static Gauge {
    static G: OnceLock<Gauge> = OnceLock::new();
    G.get_or_init(|| {
        tq_obs::gauge(
            "tq_vm_trace_instr_share_bp",
            "Share of instructions retired inside lowered traces, in basis points (last run)",
        )
    })
}

/// Publish one finished run's optimisation stats.
pub(crate) fn publish(stats: &VmStats, final_icount: u64) {
    blocks_fused().add(stats.blocks_fused);
    traces_recorded().add(stats.traces_recorded);
    trace_side_exits().add(stats.trace_side_exits);
    trace_instr_share_bp().set((stats.trace_instr_share(final_icount) * 10_000.0) as i64);
}
