//! The instrumentation (tool) API — the reproduction of Pin's `INS_*` /
//! `RTN_*` interface that tQUAD, QUAD and the sampling profiler plug into.
//!
//! Pin separates **instrumentation time** (a callback runs once, when the
//! JIT first compiles a piece of code, and decides which analysis calls to
//! inject) from **analysis time** (the injected calls run on every
//! execution). The VM keeps the same split:
//!
//! * [`Tool::instrument_ins`] is invoked once per instruction when its basic
//!   block is first decoded into the code cache; it returns a [`HookMask`]
//!   saying which [`Event`]s to deliver for that instruction;
//! * [`Tool::on_event`] receives the events every time the instruction
//!   executes.
//!
//! Predicated instructions only deliver memory events when their predicate
//! is true (Pin's `INS_InsertPredicatedCall`); prefetches *do* deliver their
//! event, flagged, because the paper's analysis routines are the ones that
//! "return immediately upon detection of a prefetch state" — filtering is
//! the tool's job, and the reproduction keeps the cost in the same place.

use std::any::Any;
use tq_isa::{Inst, RoutineId};

/// Bitmask of analysis events a tool attaches to one instruction.
pub type HookMask = u8;

/// Hook bits for [`Tool::instrument_ins`].
pub mod hooks {
    use super::HookMask;

    /// Deliver [`super::Event::MemRead`] when the instruction reads memory.
    pub const MEM_READ: HookMask = 1 << 0;
    /// Deliver [`super::Event::MemWrite`] when the instruction writes memory.
    pub const MEM_WRITE: HookMask = 1 << 1;
    /// Deliver [`super::Event::Call`] when the instruction is a call.
    pub const CALL: HookMask = 1 << 2;
    /// Deliver [`super::Event::Ret`] when the instruction is a return.
    pub const RET: HookMask = 1 << 3;
    /// Deliver [`super::Event::RoutineEnter`] when this instruction is the
    /// first of a routine (Pin's `RTN_AddInstrumentFunction` granularity).
    pub const RTN_ENTER: HookMask = 1 << 4;

    /// Everything an instruction can produce.
    pub const ALL: HookMask = MEM_READ | MEM_WRITE | CALL | RET | RTN_ENTER;
    /// Nothing.
    pub const NONE: HookMask = 0;

    /// [`super::Event::Tick`] delivery. Not an instruction hook — ticks are
    /// requested via [`super::Tool::tick_interval`] — but part of the
    /// *delivery mask* ([`super::Tool::event_mask`]) replay uses to skip
    /// event kinds a tool never looks at.
    pub const TICK: HookMask = 1 << 5;

    /// Every deliverable event kind (the [`super::Tool::event_mask`]
    /// default).
    pub const EVERY: HookMask = ALL | TICK;
}

/// The delivery-mask bit of one event (see [`Tool::event_mask`]).
pub fn event_bit(ev: &Event) -> HookMask {
    match ev {
        Event::MemRead { .. } => hooks::MEM_READ,
        Event::MemWrite { .. } => hooks::MEM_WRITE,
        Event::Call { .. } => hooks::CALL,
        Event::Ret { .. } => hooks::RET,
        Event::RoutineEnter { .. } => hooks::RTN_ENTER,
        Event::Tick { .. } => hooks::TICK,
    }
}

/// Metadata for one routine, shared with tools at attach time
/// (`PIN_InitSymbols` equivalent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineMeta {
    /// Program-wide routine id.
    pub id: RoutineId,
    /// Symbol name.
    pub name: String,
    /// Name of the image the routine lives in.
    pub image: String,
    /// True when that image is the application's main image — the `flag`
    /// tQUAD's `EnterFC` uses to ignore library/OS routines.
    pub main_image: bool,
    /// First instruction address.
    pub start: u64,
    /// One past the last instruction address.
    pub end: u64,
}

/// Static program facts given to every tool when it is attached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramInfo {
    /// All routines, indexed by [`RoutineId`].
    pub routines: Vec<RoutineMeta>,
    /// The stack base (initial stack pointer); together with the per-event
    /// `sp` this is what classifies stack-area accesses.
    pub stack_base: u64,
    /// Entry address of the program.
    pub entry: u64,
}

impl ProgramInfo {
    /// Routine metadata by id. Panics on `RoutineId::INVALID`.
    pub fn routine(&self, id: RoutineId) -> &RoutineMeta {
        &self.routines[id.idx()]
    }

    /// Find a routine id by name (first match across images).
    pub fn routine_named(&self, name: &str) -> Option<RoutineId> {
        self.routines.iter().find(|r| r.name == name).map(|r| r.id)
    }
}

/// Instrumentation-time view of one instruction.
#[derive(Clone, Copy, Debug)]
pub struct InsContext<'a> {
    /// Instruction address.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: &'a Inst,
    /// Routine containing `pc` ([`RoutineId::INVALID`] if outside symbols).
    pub rtn: RoutineId,
    /// True when the containing image is the main image.
    pub main_image: bool,
    /// True when `pc` is the first instruction of `rtn`.
    pub is_rtn_start: bool,
}

/// An analysis-time event.
///
/// `icount` is the virtual clock: the 1-based index of the executing
/// instruction. `rtn` is the routine *statically containing the instruction*
/// — tools that need dynamic context (e.g. attributing a library callee to
/// its caller) maintain their own call stack from `Call`/`Ret`/
/// `RoutineEnter`, exactly as tQUAD does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A memory read of `size` bytes at `ea`.
    MemRead {
        /// Instruction pointer.
        ip: u64,
        /// Effective address.
        ea: u64,
        /// Access size in bytes.
        size: u32,
        /// Stack pointer at access time (Pin's `REG_STACK_PTR` argument).
        sp: u64,
        /// True for prefetch hints; tQUAD ignores these.
        is_prefetch: bool,
        /// Virtual clock.
        icount: u64,
        /// Routine containing `ip`.
        rtn: RoutineId,
    },
    /// A memory write of `size` bytes at `ea`.
    MemWrite {
        /// Instruction pointer.
        ip: u64,
        /// Effective address.
        ea: u64,
        /// Access size in bytes.
        size: u32,
        /// Stack pointer at access time.
        sp: u64,
        /// Virtual clock.
        icount: u64,
        /// Routine containing `ip`.
        rtn: RoutineId,
    },
    /// A call instruction executed; fires *after* the return address push.
    Call {
        /// Call-site instruction pointer.
        ip: u64,
        /// Resolved callee routine ([`RoutineId::INVALID`] if the target is
        /// outside all symbols).
        callee: RoutineId,
        /// Virtual clock.
        icount: u64,
        /// Routine containing the call site.
        rtn: RoutineId,
    },
    /// A return instruction executed; fires *after* the return-address pop.
    Ret {
        /// Instruction pointer of the `ret`.
        ip: u64,
        /// Address being returned to.
        return_to: u64,
        /// Virtual clock.
        icount: u64,
        /// Routine containing the `ret`.
        rtn: RoutineId,
    },
    /// Control reached the first instruction of a routine (fires before the
    /// instruction executes and before its other events).
    RoutineEnter {
        /// The routine being entered.
        rtn: RoutineId,
        /// Stack pointer on entry.
        sp: u64,
        /// Virtual clock.
        icount: u64,
    },
    /// Periodic virtual-time tick, requested via [`Tool::tick_interval`].
    Tick {
        /// Virtual clock.
        icount: u64,
        /// Instruction pointer about to execute.
        ip: u64,
        /// Routine containing `ip`.
        rtn: RoutineId,
    },
}

impl Event {
    /// The virtual clock of any event.
    pub fn icount(&self) -> u64 {
        match *self {
            Event::MemRead { icount, .. }
            | Event::MemWrite { icount, .. }
            | Event::Call { icount, .. }
            | Event::Ret { icount, .. }
            | Event::RoutineEnter { icount, .. }
            | Event::Tick { icount, .. } => icount,
        }
    }
}

/// Object-safe downcasting support (so finished tools can be detached from
/// the VM and their results read back).
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Consume into `Box<dyn Any>`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A dynamic analysis tool (the tQUAD/QUAD/profiler plug-in interface).
pub trait Tool: AsAny {
    /// Human-readable tool name (diagnostics).
    fn name(&self) -> &str;

    /// Called once when the tool is attached, before execution starts.
    fn on_attach(&mut self, _info: &ProgramInfo) {}

    /// Instrumentation time: decide which events to receive for `ins`.
    /// Called once per instruction per code-cache fill.
    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask;

    /// Request periodic [`Event::Tick`]s every `n` instructions.
    fn tick_interval(&self) -> Option<u64> {
        None
    }

    /// Event kinds this tool ever acts on, as a union of [`hooks`] bits
    /// (including [`hooks::TICK`]). Replay precomputes this once per trace
    /// and skips delivering event kinds outside the mask — the "per-trace
    /// precomputed per-tool event mask" lever (DESIGN.md §14). The default
    /// is everything; a narrower mask is purely an optimisation and must
    /// not change the tool's output (the tool would have ignored those
    /// events anyway).
    fn event_mask(&self) -> HookMask {
        hooks::EVERY
    }

    /// The run (or the capture being replayed) used a reduced
    /// instrumentation mode: `info` says exactly which memory events were
    /// dropped, so the tool can reconstruct full-run estimates and report
    /// its confidence. Called after [`Tool::on_attach`] on replay, and
    /// before [`Tool::on_fini`] on live runs. Never called under full
    /// instrumentation.
    fn on_instr(&mut self, _info: &crate::instr::InstrInfo) {}

    /// Analysis time: an event this tool subscribed to fired.
    fn on_event(&mut self, ev: &Event);

    /// Analysis time, batched: a run of subscribed events delivered
    /// together, in execution order. The VM's trace executor buffers the
    /// events of one hot-loop iteration and hands them over in a single
    /// call, replacing one virtual dispatch *per event* with one per batch
    /// (the per-event calls inside the default body are statically
    /// dispatched in the monomorphised impl). Receiving
    /// `on_events(&[a, b])` must be indistinguishable from receiving
    /// `on_event(&a)` then `on_event(&b)` — the default implementation
    /// guarantees that, and overriders must preserve it, because profile
    /// byte-identity across `--vm-opt` modes depends on it.
    fn on_events(&mut self, evs: &[Event]) {
        for ev in evs {
            self.on_event(ev);
        }
    }

    /// The program finished (Pin's Fini callback). `final_icount` is the
    /// total number of instructions executed.
    fn on_fini(&mut self, _final_icount: u64) {}
}

/// Replay-resume snapshot taken at a trace-chunk boundary — everything a
/// tool needs to start analysing mid-stream as if it had replayed the whole
/// prefix itself.
///
/// Tools maintain an *internal call stack* (tQUAD §IV.A) whose contents
/// depend on the library policy: under a track-everything policy every
/// routine entry pushes a frame, under main-image-only policies library
/// routines never get one. The two variants diverge on returns (a `ret`
/// only pops when the top frame belongs to the returning routine), so a
/// single stack filtered after the fact is *not* faithful — the snapshot
/// therefore carries both stacks, maintained independently, and each tool
/// picks the one matching its policy via [`ShardContext::frames`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardContext {
    /// Index of the first event of the chunk (0-based).
    pub start_event: u64,
    /// Virtual clock after the last event of the prefix (0 at stream start).
    pub icount: u64,
    /// Delta-decoder instruction pointer.
    pub ip: u64,
    /// Delta-decoder effective address.
    pub ea: u64,
    /// Delta-decoder stack pointer.
    pub sp: u64,
    /// Routine of the most recent event ([`RoutineId::INVALID`] at start);
    /// synthesised ticks attribute to it.
    pub last_rtn: RoutineId,
    /// Call stack with a frame `(routine, sp-at-entry)` for *every* routine
    /// entered, outermost first.
    pub frames_all: Vec<(RoutineId, u64)>,
    /// Call stack restricted to main-image routines only.
    pub frames_main: Vec<(RoutineId, u64)>,
}

impl Default for ShardContext {
    fn default() -> Self {
        ShardContext {
            start_event: 0,
            icount: 0,
            ip: 0,
            ea: 0,
            sp: 0,
            last_rtn: RoutineId::INVALID,
            frames_all: Vec::new(),
            frames_main: Vec::new(),
        }
    }
}

impl ShardContext {
    /// The call-stack snapshot matching a tool's tracking policy:
    /// `track_all_images` selects the every-routine stack, otherwise the
    /// main-image-only stack.
    pub fn frames(&self, track_all_images: bool) -> &[(RoutineId, u64)] {
        if track_all_images {
            &self.frames_all
        } else {
            &self.frames_main
        }
    }
}

/// A tool whose state is *mergeable*: the event stream can be split into
/// chunks, each chunk analysed by an independent worker clone, and the
/// partial results reduced back into one — the map/reduce shape behind
/// `Trace::replay_sharded`.
///
/// Contract (what the sharded-equals-sequential determinism test enforces):
///
/// * [`MergeTool::fork`] returns a worker that, fed the chunk's events,
///   behaves exactly as `self` would have from that point — the call stack
///   is seeded from the snapshot (without counting the seeded entries as
///   calls), counters start at zero;
/// * [`MergeTool::absorb`] folds a finished worker back in. Workers must be
///   absorbed in chunk order: ordered state (e.g. QUAD's last-writer shadow
///   memory) resolves cross-chunk references during the fold.
pub trait MergeTool: Tool + Send {
    /// Clone an attached worker for the chunk starting at `ctx`.
    fn fork(&self, info: &ProgramInfo, ctx: &ShardContext) -> Box<dyn MergeTool>;

    /// Fold the next chunk's finished worker into `self`. Panics when
    /// `other` is not the same concrete tool type.
    fn absorb(&mut self, other: Box<dyn MergeTool>);
}

/// A convenience mask builder: subscribe to the memory/call/ret events that
/// `inst` can actually produce, plus routine entries. This is what a
/// "instrument every load, store, call and return" tool like tQUAD asks for.
pub fn standard_mask(ins: &InsContext<'_>) -> HookMask {
    let mut m = hooks::NONE;
    if ins.inst.may_read_memory() {
        m |= hooks::MEM_READ;
    }
    if ins.inst.may_write_memory() {
        m |= hooks::MEM_WRITE;
    }
    if ins.inst.is_call() {
        m |= hooks::CALL;
    }
    if ins.inst.is_ret() {
        m |= hooks::RET;
    }
    if ins.is_rtn_start {
        m |= hooks::RTN_ENTER;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_isa::{Inst, MemWidth, Reg};

    fn ctx<'a>(inst: &'a Inst, is_rtn_start: bool) -> InsContext<'a> {
        InsContext {
            pc: 0x10000,
            inst,
            rtn: RoutineId(0),
            main_image: true,
            is_rtn_start,
        }
    }

    #[test]
    fn standard_mask_covers_the_paper_instruction_set() {
        let ld = Inst::Ld {
            rd: Reg(1),
            base: Reg(2),
            off: 0,
            width: MemWidth::B4,
        };
        assert_eq!(standard_mask(&ctx(&ld, false)), hooks::MEM_READ);

        let st = Inst::St {
            rs: Reg(1),
            base: Reg(2),
            off: 0,
            width: MemWidth::B8,
        };
        assert_eq!(standard_mask(&ctx(&st, false)), hooks::MEM_WRITE);

        // A call both writes memory (return address push) and is a call.
        let call = Inst::Call { target: 0x20000 };
        assert_eq!(
            standard_mask(&ctx(&call, false)),
            hooks::MEM_WRITE | hooks::CALL
        );

        // Ret reads the stack and is a return.
        assert_eq!(
            standard_mask(&ctx(&Inst::Ret, false)),
            hooks::MEM_READ | hooks::RET
        );

        // Plain ALU op at a routine start only reports routine entry.
        let add = Inst::Add {
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        assert_eq!(standard_mask(&ctx(&add, true)), hooks::RTN_ENTER);
        assert_eq!(standard_mask(&ctx(&add, false)), hooks::NONE);
    }

    #[test]
    fn event_icount_accessor() {
        let ev = Event::Tick {
            icount: 42,
            ip: 0,
            rtn: RoutineId::INVALID,
        };
        assert_eq!(ev.icount(), 42);
        let ev = Event::MemRead {
            ip: 0,
            ea: 0,
            size: 8,
            sp: 0,
            is_prefetch: false,
            icount: 7,
            rtn: RoutineId(1),
        };
        assert_eq!(ev.icount(), 7);
    }
}
