//! Randomised tests of the paged memory against a `HashMap<u64, u8>`
//! reference model: arbitrary interleavings of sized reads and writes must
//! behave like a flat byte array.
//!
//! Formerly proptest-based; now deterministic sweeps driven by the vendored
//! [`tq_isa::prng::Rng`] (zero external crates). `heavy-tests` multiplies
//! the iteration counts.

use std::collections::HashMap;
use tq_isa::prng::Rng;
use tq_vm::Memory;

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 16
    } else {
        base
    }
}

#[derive(Clone, Debug)]
enum Op {
    WriteUint { addr: u64, size: u32, value: u64 },
    ReadUint { addr: u64, size: u32 },
    WriteBulk { addr: u64, bytes: Vec<u8> },
    ReadBulk { addr: u64, len: usize },
}

// Confined to a few page-straddling hot spots so collisions happen.
fn addr(rng: &mut Rng) -> u64 {
    match rng.index(4) {
        0 => rng.u64_in(0, 63),
        1 => rng.u64_in(4090, 4109), // page boundary
        2 => rng.u64_in(0x1000_0000, 0x1000_003F),
        _ => rng.u64_in(0xFFFF_FE00, 0xFFFF_FE3F), // near (not at) the top
    }
}

fn op(rng: &mut Rng) -> Op {
    let size = [1u32, 2, 4, 8][rng.index(4)];
    match rng.index(4) {
        0 => Op::WriteUint {
            addr: addr(rng),
            size,
            value: rng.next_u64(),
        },
        1 => Op::ReadUint {
            addr: addr(rng),
            size,
        },
        2 => {
            let mut bytes = vec![0u8; rng.index(40)];
            rng.fill_bytes(&mut bytes);
            Op::WriteBulk {
                addr: addr(rng),
                bytes,
            }
        }
        _ => Op::ReadBulk {
            addr: addr(rng),
            len: rng.index(40),
        },
    }
}

fn ref_read(model: &HashMap<u64, u8>, addr: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| model.get(&(addr + i as u64)).copied().unwrap_or(0))
        .collect()
}

#[test]
fn memory_matches_flat_byte_model() {
    let mut rng = Rng::new(0x4D45_4D00);
    for _ in 0..cases(256) {
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for _ in 0..1 + rng.index(120) {
            match op(&mut rng) {
                Op::WriteUint { addr, size, value } => {
                    mem.write_uint(addr, size, value).expect("in range");
                    for (i, b) in value.to_le_bytes().iter().take(size as usize).enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
                Op::ReadUint { addr, size } => {
                    let got = mem.read_uint(addr, size).expect("in range");
                    let mut buf = [0u8; 8];
                    buf[..size as usize].copy_from_slice(&ref_read(&model, addr, size as usize));
                    assert_eq!(got, u64::from_le_bytes(buf));
                }
                Op::WriteBulk { addr, bytes } => {
                    mem.write(addr, &bytes).expect("in range");
                    for (i, b) in bytes.iter().enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
                Op::ReadBulk { addr, len } => {
                    let mut got = vec![0u8; len];
                    mem.read(addr, &mut got).expect("in range");
                    assert_eq!(got, ref_read(&model, addr, len));
                }
            }
        }
    }
}

#[test]
fn float_roundtrips_anywhere() {
    let mut rng = Rng::new(0xF10A_7000);
    for n in 0..cases(512) {
        let addr = rng.u64_in(0, 0xFFFE_FFFF);
        // Exercise ordinary values, all-bits patterns and NaN payloads.
        let v = match n % 3 {
            0 => f64::from_bits(rng.next_u64()),
            1 => rng.f64_in(-1.0e18, 1.0e18),
            _ => f64::from_bits(0x7FF8_0000_0000_0000 | rng.u64_in(0, 0xF_FFFF)),
        };
        let mut mem = Memory::new();
        mem.write_f64(addr, v).expect("in range");
        let back = mem.read_f64(addr).expect("in range");
        assert_eq!(back.to_bits(), v.to_bits(), "bit-exact incl. NaN payloads");
    }
}
