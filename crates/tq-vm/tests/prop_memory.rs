//! Property-based tests of the paged memory against a `HashMap<u64, u8>`
//! reference model: arbitrary interleavings of sized reads and writes must
//! behave like a flat byte array.

use proptest::prelude::*;
use std::collections::HashMap;
use tq_vm::Memory;

#[derive(Clone, Debug)]
enum Op {
    WriteUint { addr: u64, size: u32, value: u64 },
    ReadUint { addr: u64, size: u32 },
    WriteBulk { addr: u64, bytes: Vec<u8> },
    ReadBulk { addr: u64, len: usize },
}

fn op() -> impl Strategy<Value = Op> {
    // Confined to a few page-straddling hot spots so collisions happen.
    let addr = prop_oneof![
        0u64..64,
        4090u64..4110,        // page boundary
        0x1000_0000u64..0x1000_0040,
        0xFFFF_FE00u64..0xFFFF_FE40, // near (not at) the top of the space
    ];
    let size = prop_oneof![Just(1u32), Just(2), Just(4), Just(8)];
    prop_oneof![
        (addr.clone(), size.clone(), any::<u64>())
            .prop_map(|(addr, size, value)| Op::WriteUint { addr, size, value }),
        (addr.clone(), size).prop_map(|(addr, size)| Op::ReadUint { addr, size }),
        (addr.clone(), prop::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(addr, bytes)| Op::WriteBulk { addr, bytes }),
        (addr, 0usize..40).prop_map(|(addr, len)| Op::ReadBulk { addr, len }),
    ]
}

fn ref_read(model: &HashMap<u64, u8>, addr: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| model.get(&(addr + i as u64)).copied().unwrap_or(0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn memory_matches_flat_byte_model(ops in prop::collection::vec(op(), 1..120)) {
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for o in ops {
            match o {
                Op::WriteUint { addr, size, value } => {
                    mem.write_uint(addr, size, value).expect("in range");
                    for (i, b) in value.to_le_bytes().iter().take(size as usize).enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
                Op::ReadUint { addr, size } => {
                    let got = mem.read_uint(addr, size).expect("in range");
                    let mut buf = [0u8; 8];
                    buf[..size as usize]
                        .copy_from_slice(&ref_read(&model, addr, size as usize));
                    prop_assert_eq!(got, u64::from_le_bytes(buf));
                }
                Op::WriteBulk { addr, bytes } => {
                    mem.write(addr, &bytes).expect("in range");
                    for (i, b) in bytes.iter().enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
                Op::ReadBulk { addr, len } => {
                    let mut got = vec![0u8; len];
                    mem.read(addr, &mut got).expect("in range");
                    prop_assert_eq!(got, ref_read(&model, addr, len));
                }
            }
        }
    }

    #[test]
    fn float_roundtrips_anywhere(addr in 0u64..0xFFFF_0000, v in any::<f64>()) {
        let mut mem = Memory::new();
        mem.write_f64(addr, v).expect("in range");
        let back = mem.read_f64(addr).expect("in range");
        prop_assert_eq!(back.to_bits(), v.to_bits(), "bit-exact incl. NaN payloads");
    }
}
