//! Differential tests of the interpreter optimisation levels.
//!
//! Every [`VmOpt`] level must be observationally identical: same exit, same
//! virtual clock, same register file, same analysis event stream (payloads
//! *and* per-tool order), same mode-invariant [`VmStats`] — including at
//! awkward boundaries (fuel running out mid-block and mid-trace, tool ticks
//! landing inside would-be-fast blocks).

use tq_isa::{Asm, BrCond, Inst, MemWidth, Program, Reg};
use tq_vm::{layout, standard_mask, Event, InsContext, Tool, Vm, VmError, VmOpt, VmStats};

/// Records every event it can subscribe to, optionally ticking.
struct Recorder {
    events: Vec<Event>,
    tick: Option<u64>,
    batches: usize,
}

impl Recorder {
    fn new(tick: Option<u64>) -> Recorder {
        Recorder {
            events: Vec::new(),
            tick,
            batches: 0,
        }
    }
}

impl Tool for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }
    fn tick_interval(&self) -> Option<u64> {
        self.tick
    }
    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> u8 {
        standard_mask(ins)
    }
    fn on_event(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
    fn on_events(&mut self, evs: &[Event]) {
        self.batches += 1;
        for ev in evs {
            self.on_event(ev);
        }
    }
}

/// A memory-heavy counted loop (store + load-modify-store + induction
/// branch), hot enough to cross the trace-recording threshold.
fn loop_program(iters: i32) -> Program {
    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li {
        rd: Reg(1),
        imm: layout::GLOBALS_BASE as i32,
    });
    a.emit(Inst::Li { rd: Reg(2), imm: 0 }); // i
    a.emit(Inst::Li {
        rd: Reg(3),
        imm: iters,
    });
    a.label("loop").unwrap();
    // addr compute + store (fuses to OpSt only when the value reg matches —
    // here it exercises AddrLd/LdOpSt shapes instead).
    a.emit(Inst::AddI {
        rd: Reg(4),
        rs1: Reg(1),
        imm: 64,
    });
    a.emit(Inst::St {
        rs: Reg(2),
        base: Reg(4),
        off: 0,
        width: MemWidth::B8,
    });
    // in-place update triple at a second slot
    a.emit(Inst::Ld {
        rd: Reg(5),
        base: Reg(1),
        off: 8,
        width: MemWidth::B8,
    });
    a.emit(Inst::AddI {
        rd: Reg(5),
        rs1: Reg(5),
        imm: 3,
    });
    a.emit(Inst::St {
        rs: Reg(5),
        base: Reg(1),
        off: 8,
        width: MemWidth::B8,
    });
    // induction step + branch (fuses to IncBr)
    a.emit(Inst::AddI {
        rd: Reg(2),
        rs1: Reg(2),
        imm: 1,
    });
    a.br(BrCond::Lt, Reg(2), Reg(3), "loop");
    a.emit(Inst::Halt);
    let img = a.finish("main", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    Program::new(img, entry)
}

struct Outcome {
    result: Result<(tq_vm::ExitReason, u64), String>,
    regs: Vec<u64>,
    events: Vec<Event>,
    batches: usize,
    stats: VmStats,
}

fn run_mode(program: Program, opt: VmOpt, fuel: Option<u64>, tick: Option<u64>) -> Outcome {
    let mut vm = Vm::new(program).unwrap();
    vm.set_vm_opt(opt);
    let h = vm.attach_tool(Box::new(Recorder::new(tick)));
    let result = match vm.run(fuel) {
        Ok(exit) => Ok((exit.reason, exit.icount)),
        Err(e) => Err(e.to_string()),
    };
    let regs = (0..32).map(|i| vm.reg(Reg(i))).collect();
    let stats = *vm.stats();
    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    Outcome {
        result,
        regs,
        events: rec.events,
        batches: rec.batches,
        stats,
    }
}

fn assert_identical(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.result, b.result, "{what}: exit mismatch");
    assert_eq!(a.regs, b.regs, "{what}: register file mismatch");
    assert_eq!(a.events.len(), b.events.len(), "{what}: event count");
    assert_eq!(a.events, b.events, "{what}: event stream mismatch");
    // Mode-invariant stats.
    assert_eq!(a.stats.block_execs, b.stats.block_execs, "{what}");
    assert_eq!(a.stats.cache_hits, b.stats.cache_hits, "{what}");
    assert_eq!(a.stats.events_delivered, b.stats.events_delivered, "{what}");
    assert_eq!(a.stats.mem_reads, b.stats.mem_reads, "{what}");
    assert_eq!(a.stats.mem_writes, b.stats.mem_writes, "{what}");
    assert_eq!(a.stats.blocks_built, b.stats.blocks_built, "{what}");
    assert_eq!(a.stats.instrument_calls, b.stats.instrument_calls, "{what}");
}

#[test]
fn modes_agree_on_memory_loop() {
    let off = run_mode(loop_program(500), VmOpt::Off, None, None);
    let fuse = run_mode(loop_program(500), VmOpt::Fuse, None, None);
    let trace = run_mode(loop_program(500), VmOpt::Trace, None, None);

    assert_identical(&off, &fuse, "off vs fuse");
    assert_identical(&off, &trace, "off vs trace");

    // The machinery actually engaged.
    assert_eq!(off.stats.blocks_fused, 0);
    assert!(fuse.stats.blocks_fused >= 1, "fusion found no blocks");
    assert!(trace.stats.traces_recorded >= 1, "no trace recorded");
    assert!(trace.stats.trace_instrs > 0, "trace never executed");
    assert!(
        trace.batches > 0,
        "trace mode never delivered a batched flush"
    );
    let (_, icount) = trace.result.as_ref().unwrap();
    let share = trace.stats.trace_instr_share(*icount);
    assert!(share > 0.5, "trace share too low: {share}");
}

#[test]
fn fuel_exhaustion_mid_block_is_identical() {
    // Fuel chosen to run out in the middle of the loop body, well past the
    // hot threshold so `trace` mode is executing lowered iterations.
    for fuel in [10, 647, 1201, 2003] {
        let off = run_mode(loop_program(500), VmOpt::Off, Some(fuel), None);
        let fuse = run_mode(loop_program(500), VmOpt::Fuse, Some(fuel), None);
        let trace = run_mode(loop_program(500), VmOpt::Trace, Some(fuel), None);
        assert!(
            off.result.as_ref().is_err(),
            "fuel {fuel} unexpectedly sufficed"
        );
        assert_identical(&off, &fuse, "off vs fuse (fuel)");
        assert_identical(&off, &trace, "off vs trace (fuel)");
    }
    // Sanity: the error really is fuel exhaustion.
    let out = run_mode(loop_program(500), VmOpt::Trace, Some(1201), None);
    assert!(out.result.unwrap_err().contains("budget exhausted"));
}

#[test]
fn tick_boundaries_are_identical() {
    // A prime tick interval lands ticks at every possible offset inside
    // blocks and would-be trace iterations.
    let off = run_mode(loop_program(300), VmOpt::Off, None, Some(7));
    let fuse = run_mode(loop_program(300), VmOpt::Fuse, None, Some(7));
    let trace = run_mode(loop_program(300), VmOpt::Trace, None, Some(7));
    assert!(
        off.events.iter().any(|e| matches!(e, Event::Tick { .. })),
        "test delivered no ticks"
    );
    assert_identical(&off, &fuse, "off vs fuse (ticks)");
    assert_identical(&off, &trace, "off vs trace (ticks)");
}

#[test]
fn disabling_cache_drops_recorded_traces() {
    let mut vm = Vm::new(loop_program(100_000)).unwrap();
    vm.set_vm_opt(VmOpt::Trace);
    // Get the loop hot and traced, then stop mid-run.
    match vm.run(Some(5_000)) {
        Err(VmError::FuelExhausted { .. }) => {}
        other => panic!("expected fuel exhaustion, got {other:?}"),
    }
    assert!(vm.stats().traces_recorded >= 1);
    let instrs_before = vm.stats().trace_instrs;
    assert!(instrs_before > 0);

    // Disabling the cache must also drop the traces: no further
    // trace-mode execution may happen while the cache is off.
    vm.set_cache_enabled(false);
    vm.run(None).unwrap();
    assert_eq!(
        vm.stats().trace_instrs,
        instrs_before,
        "trace executed after the cache (and traces) were disabled"
    );
    assert_eq!(vm.reg(Reg(2)), 100_000);
}

#[test]
fn on_events_default_forwards_in_order() {
    struct Seen(Vec<u64>);
    impl Tool for Seen {
        fn name(&self) -> &str {
            "seen"
        }
        fn instrument_ins(&mut self, _: &InsContext<'_>) -> u8 {
            0
        }
        fn on_event(&mut self, ev: &Event) {
            if let Event::Tick { icount, .. } = ev {
                self.0.push(*icount);
            }
        }
    }
    let mk = |icount| Event::Tick {
        icount,
        ip: 0,
        rtn: tq_isa::RoutineId::INVALID,
    };
    let mut t = Seen(Vec::new());
    t.on_events(&[mk(1), mk(2), mk(3)]);
    assert_eq!(t.0, vec![1, 2, 3]);
}
