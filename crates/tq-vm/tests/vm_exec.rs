//! Execution-level tests of the VM: semantics, instrumentation event
//! delivery, the code cache, host calls and error paths.

use tq_isa::{abi, Asm, BrCond, HostFn, ImageBuilder, Inst, MemWidth, Program, Reg, RoutineId};
use tq_vm::{hooks, layout, standard_mask, Event, InsContext, Tool, Vm, VmError};

/// A tool that records every event it sees, subscribing to everything the
/// instruction can produce (the tQUAD instrumentation footprint).
#[derive(Default)]
struct Recorder {
    events: Vec<Event>,
    attach_routines: Vec<String>,
    fini_called: bool,
}

impl Tool for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }

    fn on_attach(&mut self, info: &tq_vm::ProgramInfo) {
        self.attach_routines = info.routines.iter().map(|r| r.name.clone()).collect();
    }

    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> u8 {
        standard_mask(ins)
    }

    fn on_event(&mut self, ev: &Event) {
        self.events.push(*ev);
    }

    fn on_fini(&mut self, _final_icount: u64) {
        self.fini_called = true;
    }
}

fn run_asm(build: impl FnOnce(&mut Asm)) -> (Vm, tq_vm::ToolHandle) {
    let mut a = Asm::new();
    build(&mut a);
    let img = a.finish("main", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    let mut vm = Vm::new(Program::new(img, entry)).unwrap();
    let h = vm.attach_tool(Box::new(Recorder::default()));
    (vm, h)
}

#[test]
fn arithmetic_and_branching_loop() {
    // Sum 1..=10 with a loop; result in r1.
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li { rd: Reg(1), imm: 0 }); // acc
        a.emit(Inst::Li { rd: Reg(2), imm: 1 }); // i
        a.emit(Inst::Li {
            rd: Reg(3),
            imm: 10,
        }); // limit
        a.label("loop").unwrap();
        a.emit(Inst::Add {
            rd: Reg(1),
            rs1: Reg(1),
            rs2: Reg(2),
        });
        a.emit(Inst::AddI {
            rd: Reg(2),
            rs1: Reg(2),
            imm: 1,
        });
        a.br(BrCond::Ge, Reg(3), Reg(2), "loop");
        a.emit(Inst::Halt);
    });
    let exit = vm.run(None).unwrap();
    assert_eq!(vm.reg(Reg(1)), 55);
    assert_eq!(exit.reason, tq_vm::ExitReason::Halted);
    // 3 li + 10*(add,addi,br) + halt
    assert_eq!(exit.icount, 3 + 30 + 1);
}

#[test]
fn loads_stores_and_event_delivery() {
    let (mut vm, h) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: layout::GLOBALS_BASE as i32,
        });
        a.emit(Inst::Li {
            rd: Reg(2),
            imm: 0x7777,
        });
        a.emit(Inst::St {
            rs: Reg(2),
            base: Reg(1),
            off: 16,
            width: MemWidth::B8,
        });
        a.emit(Inst::Ld {
            rd: Reg(3),
            base: Reg(1),
            off: 16,
            width: MemWidth::B4,
        });
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    assert_eq!(vm.reg(Reg(3)), 0x7777);

    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    assert!(rec.fini_called);
    assert_eq!(rec.attach_routines, vec!["main".to_string()]);
    // Routine entry + write + read.
    let kinds: Vec<&str> = rec
        .events
        .iter()
        .map(|e| match e {
            Event::RoutineEnter { .. } => "enter",
            Event::MemWrite { .. } => "write",
            Event::MemRead { .. } => "read",
            _ => "other",
        })
        .collect();
    assert_eq!(kinds, vec!["enter", "write", "read"]);
    match rec.events[1] {
        Event::MemWrite { ea, size, sp, .. } => {
            assert_eq!(ea, layout::GLOBALS_BASE + 16);
            assert_eq!(size, 8);
            assert_eq!(sp, layout::STACK_BASE);
        }
        ref other => panic!("unexpected {other:?}"),
    }
    match rec.events[2] {
        Event::MemRead {
            ea,
            size,
            is_prefetch,
            ..
        } => {
            assert_eq!(ea, layout::GLOBALS_BASE + 16);
            assert_eq!(size, 4);
            assert!(!is_prefetch);
        }
        ref other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn call_and_ret_maintain_stack_and_fire_events() {
    let (mut vm, h) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.call("callee");
        a.emit(Inst::Halt);
        a.begin_routine("callee").unwrap();
        a.emit(Inst::Li {
            rd: Reg(9),
            imm: 123,
        });
        a.emit(Inst::Ret);
    });
    vm.run(None).unwrap();
    assert_eq!(vm.reg(Reg(9)), 123);
    assert_eq!(
        vm.reg(abi::SP),
        layout::STACK_BASE,
        "stack balanced after ret"
    );

    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    // main enter, call push (write), call, callee enter, ret pop (read), ret.
    let mut calls = 0;
    let mut rets = 0;
    let mut enters = Vec::new();
    for e in &rec.events {
        match e {
            Event::Call { callee, .. } => {
                calls += 1;
                assert_eq!(*callee, RoutineId(1));
            }
            Event::Ret { return_to, .. } => {
                rets += 1;
                assert_eq!(*return_to, layout::MAIN_TEXT_BASE + 8);
            }
            Event::RoutineEnter { rtn, .. } => enters.push(*rtn),
            _ => {}
        }
    }
    assert_eq!((calls, rets), (1, 1));
    assert_eq!(enters, vec![RoutineId(0), RoutineId(1)]);

    // The return-address push/pop are stack-classified memory traffic.
    let stack_writes: Vec<_> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            Event::MemWrite { ea, sp, .. } => Some((*ea, *sp)),
            _ => None,
        })
        .collect();
    assert_eq!(stack_writes.len(), 1);
    let (ea, sp) = stack_writes[0];
    assert_eq!(ea, layout::STACK_BASE - 8);
    assert!(tq_vm::is_stack_access(ea, sp));
}

#[test]
fn prefetch_fires_flagged_event_and_predication_suppresses() {
    let (mut vm, h) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: layout::GLOBALS_BASE as i32,
        });
        a.emit(Inst::Prefetch {
            base: Reg(1),
            off: 64,
        });
        a.emit(Inst::Li { rd: Reg(2), imm: 0 }); // predicate false
        a.emit(Inst::PLd64 {
            rd: Reg(3),
            base: Reg(1),
            pred: Reg(2),
            off: 0,
        });
        a.emit(Inst::Li { rd: Reg(2), imm: 1 }); // predicate true
        a.emit(Inst::PLd64 {
            rd: Reg(3),
            base: Reg(1),
            pred: Reg(2),
            off: 0,
        });
        a.emit(Inst::PSt64 {
            rs: Reg(3),
            base: Reg(1),
            pred: Reg(2),
            off: 8,
        });
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    let mem_events: Vec<_> = rec
        .events
        .iter()
        .filter(|e| matches!(e, Event::MemRead { .. } | Event::MemWrite { .. }))
        .collect();
    // prefetch (flagged), one predicated load (true case only), one store.
    assert_eq!(mem_events.len(), 3);
    assert!(matches!(
        mem_events[0],
        Event::MemRead {
            is_prefetch: true,
            ..
        }
    ));
    assert!(matches!(
        mem_events[1],
        Event::MemRead {
            is_prefetch: false,
            ..
        }
    ));
    assert!(matches!(mem_events[2], Event::MemWrite { .. }));
}

#[test]
fn code_cache_reuses_blocks() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li { rd: Reg(1), imm: 0 });
        a.emit(Inst::Li {
            rd: Reg(2),
            imm: 1000,
        });
        a.label("loop").unwrap();
        a.emit(Inst::AddI {
            rd: Reg(1),
            rs1: Reg(1),
            imm: 1,
        });
        a.br(BrCond::Lt, Reg(1), Reg(2), "loop");
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    let s = *vm.stats();
    assert!(s.blocks_built <= 3, "blocks_built = {}", s.blocks_built);
    assert!(s.cache_hits >= 990, "cache_hits = {}", s.cache_hits);
    // Instrumentation ran once per instruction, not once per execution.
    assert!(
        s.instrument_calls <= 8,
        "instrument_calls = {}",
        s.instrument_calls
    );
}

#[test]
fn disabled_cache_reinstruments_every_execution() {
    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li { rd: Reg(1), imm: 0 });
    a.emit(Inst::Li {
        rd: Reg(2),
        imm: 100,
    });
    a.label("loop").unwrap();
    a.emit(Inst::AddI {
        rd: Reg(1),
        rs1: Reg(1),
        imm: 1,
    });
    a.br(BrCond::Lt, Reg(1), Reg(2), "loop");
    a.emit(Inst::Halt);
    let img = a.finish("main", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    let mut vm = Vm::new(Program::new(img, entry)).unwrap();
    vm.attach_tool(Box::new(Recorder::default()));
    vm.set_cache_enabled(false);
    vm.run(None).unwrap();
    let s = *vm.stats();
    assert_eq!(s.cache_hits, 0);
    assert!(
        s.blocks_built > 100,
        "every dispatch rebuilds: {}",
        s.blocks_built
    );
    assert!(s.instrument_calls > 200);
}

#[test]
fn float_pipeline() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::FLi {
            fd: tq_isa::FReg(1),
            value: 2.0,
        });
        a.emit(Inst::FSqrt {
            fd: tq_isa::FReg(2),
            fs: tq_isa::FReg(1),
        });
        a.emit(Inst::FMul {
            fd: tq_isa::FReg(3),
            fs1: tq_isa::FReg(2),
            fs2: tq_isa::FReg(2),
        });
        a.emit(Inst::Li { rd: Reg(1), imm: 7 });
        a.emit(Inst::ItoF {
            fd: tq_isa::FReg(4),
            rs: Reg(1),
        });
        a.emit(Inst::FtoI {
            rd: Reg(2),
            fs: tq_isa::FReg(4),
        });
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    assert!((vm.freg(tq_isa::FReg(3)) - 2.0).abs() < 1e-12);
    assert_eq!(vm.reg(Reg(2)), 7);
}

#[test]
fn host_fs_roundtrip_is_invisible_to_tools() {
    let path = b"in.dat";
    let (mut vm, h) = run_asm(|a| {
        // Path string in globals.
        a.data(layout::GLOBALS_BASE, path.to_vec());
        a.begin_routine("main").unwrap();
        // fd = open("in.dat", len=6, read)
        a.emit(Inst::Li {
            rd: abi::A0,
            imm: layout::GLOBALS_BASE as i32,
        });
        a.emit(Inst::Li {
            rd: abi::A1,
            imm: path.len() as i32,
        });
        a.emit(Inst::Li {
            rd: abi::A2,
            imm: 0,
        });
        a.emit(Inst::Host {
            func: HostFn::FsOpen,
        });
        a.emit(Inst::Mv {
            rd: Reg(20),
            rs: abi::A0,
        });
        // read(fd, GLOBALS+0x100, 4)
        a.emit(Inst::Li {
            rd: abi::A1,
            imm: (layout::GLOBALS_BASE + 0x100) as i32,
        });
        a.emit(Inst::Li {
            rd: abi::A2,
            imm: 4,
        });
        a.emit(Inst::Host {
            func: HostFn::FsRead,
        });
        a.emit(Inst::Mv {
            rd: Reg(21),
            rs: abi::A0,
        });
        // The *application-level* load of the buffer IS instrumented.
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: (layout::GLOBALS_BASE + 0x100) as i32,
        });
        a.emit(Inst::Ld {
            rd: Reg(22),
            base: Reg(1),
            off: 0,
            width: MemWidth::B4,
        });
        a.emit(Inst::Halt);
    });
    vm.fs_mut().add_file("in.dat", vec![0xDE, 0xAD, 0xBE, 0xEF]);
    vm.run(None).unwrap();
    assert_eq!(vm.reg(Reg(21)), 4, "fs_read returned byte count");
    assert_eq!(vm.reg(Reg(22)), 0xEFBE_ADDE);

    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    let reads: Vec<_> = rec
        .events
        .iter()
        .filter(|e| matches!(e, Event::MemRead { .. }))
        .collect();
    assert_eq!(
        reads.len(),
        1,
        "only the user-level load is visible, not the host copy"
    );
}

#[test]
fn tick_events_fire_at_requested_interval() {
    struct Ticker {
        ticks: Vec<u64>,
    }
    impl Tool for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn instrument_ins(&mut self, _: &InsContext<'_>) -> u8 {
            hooks::NONE
        }
        fn tick_interval(&self) -> Option<u64> {
            Some(10)
        }
        fn on_event(&mut self, ev: &Event) {
            if let Event::Tick { icount, .. } = ev {
                self.ticks.push(*icount);
            }
        }
    }

    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li { rd: Reg(1), imm: 0 });
    a.emit(Inst::Li {
        rd: Reg(2),
        imm: 50,
    });
    a.label("loop").unwrap();
    a.emit(Inst::AddI {
        rd: Reg(1),
        rs1: Reg(1),
        imm: 1,
    });
    a.br(BrCond::Lt, Reg(1), Reg(2), "loop");
    a.emit(Inst::Halt);
    let img = a.finish("main", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    let mut vm = Vm::new(Program::new(img, entry)).unwrap();
    let h = vm.attach_tool(Box::new(Ticker { ticks: Vec::new() }));
    let exit = vm.run(None).unwrap();
    let t = vm.detach_tool::<Ticker>(h).unwrap();
    assert_eq!(t.ticks.len() as u64, exit.icount / 10);
    assert_eq!(t.ticks[0], 10);
    assert!(t.ticks.windows(2).all(|w| w[1] - w[0] == 10));
}

#[test]
fn fuel_exhaustion_is_reported() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.label("spin").unwrap();
        a.jmp("spin");
    });
    match vm.run(Some(1000)) {
        Err(VmError::FuelExhausted { icount }) => assert_eq!(icount, 1000),
        other => panic!("expected fuel exhaustion, got {other:?}"),
    }
}

#[test]
fn jump_outside_text_is_a_bad_pc() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: 0x0DEAD000,
        });
        a.emit(Inst::CallR { rs: Reg(1) });
        a.emit(Inst::Halt);
    });
    match vm.run(None) {
        Err(VmError::BadPc(pc)) => assert_eq!(pc, 0x0DEAD000),
        other => panic!("expected BadPc, got {other:?}"),
    }
}

#[test]
fn exit_code_propagates() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: abi::A0,
            imm: 42,
        });
        a.emit(Inst::Host { func: HostFn::Exit });
    });
    let exit = vm.run(None).unwrap();
    assert_eq!(exit.reason, tq_vm::ExitReason::Exited(42));
}

#[test]
fn console_output() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: abi::A0,
            imm: -7,
        });
        a.emit(Inst::Host {
            func: HostFn::PrintI64,
        });
        a.emit(Inst::Li {
            rd: abi::A0,
            imm: 'x' as i32,
        });
        a.emit(Inst::Host {
            func: HostFn::PrintChar,
        });
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    assert_eq!(vm.console(), "-7\nx");
}

#[test]
fn library_image_routines_are_flagged() {
    let mut main_asm = Asm::new();
    main_asm.begin_routine("main").unwrap();
    main_asm.emit(Inst::Li {
        rd: Reg(5),
        imm: tq_vm::layout::LIB_TEXT_BASE as i32,
    });
    main_asm.emit(Inst::CallR { rs: Reg(5) });
    main_asm.emit(Inst::Halt);
    let main_img = main_asm
        .finish("app", layout::MAIN_TEXT_BASE, true)
        .unwrap();

    let mut lib = ImageBuilder::new("libsim", layout::LIB_TEXT_BASE);
    lib.routine("lib_memcpy", &[Inst::Nop, Inst::Ret]);
    let lib_img = lib.library().build();

    let entry = main_img.routines[0].start;
    let mut vm = Vm::new(Program::new(main_img, entry).with_library(lib_img)).unwrap();
    let h = vm.attach_tool(Box::new(Recorder::default()));

    let info = vm.program_info().clone();
    assert!(info.routine(info.routine_named("main").unwrap()).main_image);
    assert!(
        !info
            .routine(info.routine_named("lib_memcpy").unwrap())
            .main_image
    );

    vm.run(None).unwrap();
    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    let lib_id = info.routine_named("lib_memcpy").unwrap();
    assert!(rec
        .events
        .iter()
        .any(|e| matches!(e, Event::Call { callee, .. } if *callee == lib_id)));
    assert!(rec
        .events
        .iter()
        .any(|e| matches!(e, Event::RoutineEnter { rtn, .. } if *rtn == lib_id)));
}

#[test]
fn deep_recursion_overflows_the_stack() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.call("rec");
        a.emit(Inst::Halt);
        a.begin_routine("rec").unwrap();
        a.call("rec");
        a.emit(Inst::Ret);
    });
    vm.set_stack_limit(1 << 20);
    match vm.run(None) {
        Err(VmError::StackOverflow { .. }) => {}
        other => panic!("expected stack overflow, got {other:?}"),
    }
}

#[test]
fn block_copy_semantics_and_events() {
    let (mut vm, h) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        // Source data staged via stores.
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: layout::GLOBALS_BASE as i32,
        });
        a.emit(Inst::Li {
            rd: Reg(2),
            imm: 0x11223344,
        });
        a.emit(Inst::St {
            rs: Reg(2),
            base: Reg(1),
            off: 0,
            width: MemWidth::B8,
        });
        a.emit(Inst::St {
            rs: Reg(2),
            base: Reg(1),
            off: 8,
            width: MemWidth::B4,
        });
        // dst = GLOBALS + 0x100, src = GLOBALS, len = 12.
        a.emit(Inst::Li {
            rd: Reg(3),
            imm: (layout::GLOBALS_BASE + 0x100) as i32,
        });
        a.emit(Inst::Li {
            rd: Reg(4),
            imm: 12,
        });
        a.emit(Inst::BCpy {
            dst: Reg(3),
            src: Reg(1),
            len: Reg(4),
        });
        // Read back from the destination.
        a.emit(Inst::Ld {
            rd: Reg(5),
            base: Reg(3),
            off: 0,
            width: MemWidth::B8,
        });
        // Zero-length copy: no events.
        a.emit(Inst::Li { rd: Reg(4), imm: 0 });
        a.emit(Inst::BCpy {
            dst: Reg(3),
            src: Reg(1),
            len: Reg(4),
        });
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    assert_eq!(vm.reg(Reg(5)), 0x11223344);

    let rec = vm.detach_tool::<Recorder>(h).unwrap();
    let copies: Vec<(u64, u32, bool)> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            Event::MemRead { ea, size, .. } if *size == 12 => Some((*ea, *size, true)),
            Event::MemWrite { ea, size, .. } if *size == 12 => Some((*ea, *size, false)),
            _ => None,
        })
        .collect();
    assert_eq!(
        copies,
        vec![
            (layout::GLOBALS_BASE, 12, true),
            (layout::GLOBALS_BASE + 0x100, 12, false)
        ],
        "one 12-byte read event + one 12-byte write event; zero-length copy silent"
    );
}

#[test]
fn oversized_block_copy_rejected() {
    let (mut vm, _) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: layout::GLOBALS_BASE as i32,
        });
        a.emit(Inst::Li {
            rd: Reg(2),
            imm: (tq_vm::vm::MAX_BLOCK_COPY + 1) as i32,
        });
        a.emit(Inst::BCpy {
            dst: Reg(1),
            src: Reg(1),
            len: Reg(2),
        });
        a.emit(Inst::Halt);
    });
    assert!(matches!(vm.run(None), Err(VmError::Mem { .. })));
}

#[test]
fn tool_handles_downcast_safely() {
    struct OtherTool;
    impl Tool for OtherTool {
        fn name(&self) -> &str {
            "other"
        }
        fn instrument_ins(&mut self, _: &InsContext<'_>) -> u8 {
            hooks::NONE
        }
        fn on_event(&mut self, _: &Event) {}
    }

    let (mut vm, h) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();

    // Wrong-type downcast returns None and CONSUMES the slot (the tool is
    // gone either way — handles are single-use).
    assert!(vm.detach_tool::<OtherTool>(h).is_none());
    assert!(
        vm.detach_tool::<Recorder>(h).is_none(),
        "slot already taken"
    );
}

#[test]
fn borrowing_tool_without_detaching() {
    let (mut vm, h) = run_asm(|a| {
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li {
            rd: Reg(1),
            imm: layout::GLOBALS_BASE as i32,
        });
        a.emit(Inst::St {
            rs: Reg(1),
            base: Reg(1),
            off: 0,
            width: MemWidth::B8,
        });
        a.emit(Inst::Halt);
    });
    vm.run(None).unwrap();
    let rec: &Recorder = vm.tool(h).expect("still attached");
    assert!(rec.fini_called);
    assert!(!rec.events.is_empty());
    // Still detachable afterwards.
    assert!(vm.detach_tool::<Recorder>(h).is_some());
}

#[test]
fn two_tools_same_type_independent() {
    let mut a = Asm::new();
    a.begin_routine("main").unwrap();
    a.emit(Inst::Li {
        rd: Reg(1),
        imm: layout::GLOBALS_BASE as i32,
    });
    a.emit(Inst::Ld {
        rd: Reg(2),
        base: Reg(1),
        off: 0,
        width: MemWidth::B4,
    });
    a.emit(Inst::Halt);
    let img = a.finish("main", layout::MAIN_TEXT_BASE, true).unwrap();
    let entry = img.routines[0].start;
    let mut vm = Vm::new(Program::new(img, entry)).unwrap();
    let h1 = vm.attach_tool(Box::new(Recorder::default()));
    let h2 = vm.attach_tool(Box::new(Recorder::default()));
    vm.run(None).unwrap();
    let r1 = vm.detach_tool::<Recorder>(h1).unwrap();
    let r2 = vm.detach_tool::<Recorder>(h2).unwrap();
    assert_eq!(r1.events.len(), r2.events.len());
    assert!(r1.fini_called && r2.fini_called);
}
