//! Plain-text table rendering plus CSV/TSV serialisation — used to print
//! the paper-style tables (flat profiles, QUAD bindings, phase summaries).

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A renderable table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    columns: Vec<(String, Align)>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a column.
    pub fn col(mut self, name: impl Into<String>, align: Align) -> Self {
        self.columns.push((name.into(), align));
        self
    }

    /// Append a row; must match the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned monospace text.
    pub fn render(&self) -> String {
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|(n, _)| n.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-");
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, (n, _))| format!("{:<w$}", n, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| match self.columns[i].1 {
                    Align::Left => format!("{:<w$}", c, w = widths[i]),
                    Align::Right => format!("{:>w$}", c, w = widths[i]),
                })
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        let _ = ncols;
        out
    }

    /// Serialise as CSV (RFC-4180-style quoting of commas/quotes/newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .columns
                .iter()
                .map(|(n, _)| quote(n))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Serialise as TSV (tabs stripped from cells).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|(n, _)| n.replace('\t', " "))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| c.replace('\t', " "))
                    .collect::<Vec<_>>()
                    .join("\t"),
            );
            out.push('\n');
        }
        out
    }
}

/// Format a float with `p` decimal places (the paper's tables use 4).
pub fn f(v: f64, p: usize) -> String {
    format!("{v:.p$}")
}

/// Format an integer with thousands separators for readability.
pub fn n(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T")
            .col("kernel", Align::Left)
            .col("%time", Align::Right);
        t.row(vec!["wav_store".into(), "31.91".into()]);
        t.row(vec!["fft1d".into(), "28.23".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("kernel"));
        assert!(lines[3].contains("wav_store | 31.91"));
        assert!(lines[4].contains("fft1d     | 28.23"));
    }

    #[test]
    fn csv_quotes_specials() {
        let mut t = Table::new("").col("a", Align::Left).col("b", Align::Left);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn tsv_strips_tabs() {
        let mut t = Table::new("").col("a", Align::Left);
        t.row(vec!["p\tq".into()]);
        assert!(t.to_tsv().contains("p q"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("").col("a", Align::Left).col("b", Align::Left);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(n(0), "0");
        assert_eq!(n(999), "999");
        assert_eq!(n(1000), "1,000");
        assert_eq!(n(64941803), "64,941,803");
        assert_eq!(f(21.5553, 4), "21.5553");
    }
}
