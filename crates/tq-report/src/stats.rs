//! Small numeric helpers shared by the profiler reports.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum; 0 for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0f64, f64::max)
}

/// `q`-quantile (0..=1) by linear interpolation on the sorted data; 0 for an
/// empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in profile data"));
    let pos = q.clamp(0.0, 1.0) * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// Geometric mean of strictly positive values; 0 if any value is ≤ 0 or the
/// slice is empty. Used to summarise slowdown factors across configurations.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(max(&[1.0, 5.0, 2.0]), 5.0);
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, -1.0]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
