//! # tq-report — report rendering for the tQUAD reproduction
//!
//! Shared presentation layer: aligned text tables with CSV/TSV export (the
//! paper's Tables I–IV), multi-lane ASCII time-series charts (Figures 6–7),
//! self-contained HTML reports with inline SVG charts, Graphviz DOT export
//! (the QDU graph of QUAD), and small numeric helpers.

pub mod chart;
pub mod dot;
pub mod html;
pub mod json;
pub mod stats;
pub mod table;

pub use chart::{Series, SeriesChart};
pub use dot::Digraph;
pub use html::{HtmlReport, SvgChart};
pub use json::{Json, JsonError};
pub use table::{f, n, Align, Table};
