//! ASCII time-series charts — the terminal rendition of the paper's Fig. 6
//! and Fig. 7 ("memory bandwidth usage of the kernels over time slices",
//! one lane per kernel along the z-axis).

/// One lane of a [`SeriesChart`].
#[derive(Clone, Debug)]
pub struct Series {
    /// Lane label (kernel name).
    pub label: String,
    /// One value per time slice (bytes in that slice).
    pub values: Vec<f64>,
}

/// A multi-lane time-series chart.
#[derive(Clone, Debug)]
pub struct SeriesChart {
    title: String,
    width: usize,
    series: Vec<Series>,
    /// Normalise lanes jointly (comparable intensities, as in the paper's
    /// figures) or per-lane.
    global_scale: bool,
}

const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

impl SeriesChart {
    /// New chart rendered `width` characters wide.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        SeriesChart {
            title: title.into(),
            width: width.max(8),
            series: Vec::new(),
            global_scale: true,
        }
    }

    /// Normalise each lane to its own maximum instead of the global one.
    pub fn per_lane_scale(mut self) -> Self {
        self.global_scale = false;
        self
    }

    /// Add a lane.
    pub fn series(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.series.push(Series {
            label: label.into(),
            values,
        });
    }

    /// Downsample `values` to `width` buckets by taking each bucket's peak
    /// (peaks are what bandwidth plots must not lose).
    fn resample(values: &[f64], width: usize) -> Vec<f64> {
        if values.is_empty() {
            return vec![0.0; width];
        }
        if values.len() <= width {
            let mut out = values.to_vec();
            out.resize(width, 0.0);
            return out;
        }
        let mut out = Vec::with_capacity(width);
        for b in 0..width {
            let lo = b * values.len() / width;
            let hi = (((b + 1) * values.len()) / width).max(lo + 1);
            let peak = values[lo..hi.min(values.len())]
                .iter()
                .copied()
                .fold(0.0f64, f64::max);
            out.push(peak);
        }
        out
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let label_w = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let global_max = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .fold(0.0f64, f64::max);
        for s in &self.series {
            let lane_max = if self.global_scale {
                global_max
            } else {
                s.values.iter().copied().fold(0.0f64, f64::max)
            };
            let resampled = Self::resample(&s.values, self.width);
            let mut line = String::with_capacity(self.width + label_w + 16);
            line.push_str(&format!("{:<w$} |", s.label, w = label_w));
            for v in resampled {
                let idx = if lane_max <= 0.0 || v <= 0.0 {
                    0
                } else {
                    // Non-zero values always render at least level 1 so
                    // brief activity does not vanish.
                    let frac = (v / lane_max).clamp(0.0, 1.0);
                    ((frac * (LEVELS.len() - 1) as f64).ceil() as usize).clamp(1, LEVELS.len() - 1)
                };
                line.push(LEVELS[idx]);
            }
            line.push_str(&format!(
                "| peak {:.4}",
                s.values.iter().copied().fold(0.0f64, f64::max)
            ));
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_render_with_labels_and_peaks() {
        let mut c = SeriesChart::new("Fig", 16);
        c.series("fft1d", vec![0.0, 1.0, 2.0, 4.0]);
        c.series("wav_store", vec![0.0; 4]);
        let s = c.render();
        assert!(s.starts_with("Fig\n"));
        assert!(s.contains("fft1d"));
        assert!(s.contains("wav_store"));
        assert!(s.contains("peak 4.0000"));
        assert!(s.contains("peak 0.0000"));
    }

    #[test]
    fn zero_series_is_blank() {
        let mut c = SeriesChart::new("", 8);
        c.series("quiet", vec![0.0; 100]);
        let line = c.render();
        let bars: String = line
            .split('|')
            .nth(1)
            .unwrap()
            .chars()
            .filter(|ch| *ch != ' ')
            .collect();
        assert!(bars.is_empty(), "zero series must render blank: {line}");
    }

    #[test]
    fn resample_keeps_peaks() {
        let mut values = vec![0.0; 1000];
        values[777] = 42.0;
        let r = SeriesChart::resample(&values, 10);
        assert_eq!(r.len(), 10);
        assert_eq!(r[7], 42.0, "the spike must survive downsampling");
    }

    #[test]
    fn short_series_pad() {
        let r = SeriesChart::resample(&[1.0, 2.0], 8);
        assert_eq!(r.len(), 8);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 2.0);
        assert_eq!(r[7], 0.0);
    }

    #[test]
    fn global_vs_per_lane_scaling() {
        let mut g = SeriesChart::new("", 4);
        g.series("big", vec![8.0; 4]);
        g.series("small", vec![1.0; 4]);
        let gs = g.render();
        // In global scale, "small" is dim (level 1 of 8).
        assert!(gs.lines().nth(1).unwrap().contains('▁'));

        let mut p = SeriesChart::new("", 4).per_lane_scale();
        p.series("big", vec![8.0; 4]);
        p.series("small", vec![1.0; 4]);
        let ps = p.render();
        // Per-lane, both are full intensity.
        assert!(ps.lines().nth(1).unwrap().contains('█'));
    }
}
