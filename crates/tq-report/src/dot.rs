//! Graphviz DOT export — the Quantitative Data Usage (QDU) graph of QUAD is
//! "a large graph" the paper could not include; we regenerate it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A directed graph with labelled, weighted edges.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    name: String,
    nodes: BTreeMap<String, String>,
    edges: Vec<(String, String, String)>,
}

impl Digraph {
    /// New graph.
    pub fn new(name: impl Into<String>) -> Self {
        Digraph {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a node with a display label.
    pub fn node(&mut self, id: impl Into<String>, label: impl Into<String>) {
        self.nodes.insert(id.into(), label.into());
    }

    /// Add an edge with a label (e.g. `"bytes: 1234 / UnMA: 56"`).
    pub fn edge(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        label: impl Into<String>,
    ) {
        self.edges.push((from.into(), to.into(), label.into()));
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn quote(s: &str) -> String {
        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
    }

    /// Render as DOT source.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "digraph {} {{", Self::quote(&self.name)).unwrap();
        writeln!(out, "  rankdir=LR;").unwrap();
        writeln!(out, "  node [shape=box, fontsize=10];").unwrap();
        for (id, label) in &self.nodes {
            writeln!(out, "  {} [label={}];", Self::quote(id), Self::quote(label)).unwrap();
        }
        for (from, to, label) in &self.edges {
            writeln!(
                out,
                "  {} -> {} [label={}];",
                Self::quote(from),
                Self::quote(to),
                Self::quote(label)
            )
            .unwrap();
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = Digraph::new("qdu");
        g.node("fft1d", "fft1d");
        g.node("perm", "perm");
        g.edge("fft1d", "perm", "bytes: 10 / UnMA: 2");
        let s = g.render();
        assert!(s.starts_with("digraph \"qdu\" {"));
        assert!(s.contains("\"fft1d\" -> \"perm\" [label=\"bytes: 10 / UnMA: 2\"];"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn quoting_escapes() {
        let mut g = Digraph::new("g");
        g.node("a\"b", "lab\\el");
        let s = g.render();
        assert!(s.contains("\"a\\\"b\""));
        assert!(s.contains("\"lab\\\\el\""));
    }
}
