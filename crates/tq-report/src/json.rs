//! Hand-rolled JSON value, writer and parser.
//!
//! The workspace builds with zero external crates, so `serde_json` is
//! replaced by this module. It is shared by the machine-readable report
//! emitters (`repro_table4`'s profile dump) and by the `tq-profd` service
//! protocol (JSON-lines over TCP).
//!
//! Design points:
//!
//! * Objects keep **insertion order** (a `Vec` of pairs, not a map), so a
//!   value rendered twice yields byte-identical text — the profd cache
//!   relies on canonical responses.
//! * Integers are kept separate from floats ([`Json::UInt`]/[`Json::Int`]
//!   vs [`Json::Num`]) so `u64` counters round-trip losslessly.
//! * The parser accepts exactly the JSON this writer produces plus
//!   insignificant whitespace; numbers with a fraction or exponent parse
//!   as [`Json::Num`].

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (u64-lossless).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number. Non-finite values render as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// Build an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Append a field to an object; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        match self {
            Json::Obj(pairs) => {
                let key = key.into();
                let value = value.into();
                if let Some(p) = pairs.iter_mut().find(|(k, _)| *k == key) {
                    p.1 = value;
                } else {
                    pairs.push((key, value));
                }
            }
            other => panic!("set() on non-object {other:?}"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer view (accepts non-negative `Int`s too).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Float view (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(v) => Some(v),
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialise to compact JSON text (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trip form; force a
                    // fraction or exponent so the value re-parses as Num.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                what: "trailing characters",
            });
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte position and a short description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub pos: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            pos: *pos,
            what: "unexpected token",
        })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(JsonError {
            pos: *pos,
            what: "unexpected end of input",
        });
    };
    match c {
        b'n' => expect(b, pos, "null").map(|()| Json::Null),
        b't' => expect(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "expected , or ]",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        pos: *pos,
                        what: "expected :",
                    });
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            what: "expected , or }",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(JsonError {
            pos: *pos,
            what: "unexpected character",
        }),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            pos: *pos,
            what: "expected string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(JsonError {
                pos: *pos,
                what: "unterminated string",
            });
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else {
                    return Err(JsonError {
                        pos: *pos,
                        what: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(JsonError {
                                pos: *pos,
                                what: "bad \\u escape",
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            pos: *pos,
                            what: "bad \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos - 1,
                            what: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid utf8 input"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    if !is_float {
        if text.starts_with('-') {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        pos: start,
        what: "bad number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_canonical_compact_text() {
        let v = Json::obj([
            ("name", Json::from("wfs")),
            ("count", Json::from(3u64)),
            ("neg", Json::from(-4i64)),
            ("pi", Json::from(3.5f64)),
            ("whole", Json::from(2.0f64)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "items",
                Json::from(vec![Json::from(1u64), Json::from("a\nb")]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"wfs","count":3,"neg":-4,"pi":3.5,"whole":2.0,"ok":true,"none":null,"items":[1,"a\nb"]}"#
        );
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let v = Json::obj([
            (
                "s",
                Json::from("quote \" backslash \\ tab \t unicode \u{1F600}"),
            ),
            ("big", Json::from(u64::MAX)),
            ("i", Json::from(i64::MIN)),
            ("f", Json::from(-0.125f64)),
            ("arr", Json::from(vec![Json::Null, Json::Bool(false)])),
            ("obj", Json::obj([("k", Json::from(1u64))])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.render(), text, "canonical form is a fixed point");
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_junk() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 ] ,\n\"b\": null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integer_float_distinction() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn accessors() {
        let mut v = Json::obj([("a", Json::from(1u64))]);
        v.set("b", "x");
        v.set("a", 2u64);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(3).as_u64(), Some(3));
        assert_eq!(Json::Int(-3).as_u64(), None);
        assert_eq!(Json::UInt(4).as_f64(), Some(4.0));
    }
}
