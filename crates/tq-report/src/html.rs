//! Self-contained HTML reports with inline SVG time-series charts — the
//! paper's Figures 6/7 as actual graphics, one lane per kernel.

use std::fmt::Write as _;

/// Escape text for HTML/SVG bodies and attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// One lane of an [`SvgChart`].
struct Lane {
    label: String,
    values: Vec<f64>,
}

/// A multi-lane SVG time-series chart (lanes stacked vertically, shared
/// x-axis — the layout of the paper's figures).
pub struct SvgChart {
    title: String,
    width: u32,
    lane_height: u32,
    lanes: Vec<Lane>,
}

impl SvgChart {
    /// New chart `width` pixels wide with `lane_height`-pixel lanes.
    pub fn new(title: impl Into<String>, width: u32, lane_height: u32) -> Self {
        SvgChart {
            title: title.into(),
            width: width.max(100),
            lane_height: lane_height.max(16),
            lanes: Vec::new(),
        }
    }

    /// Add a lane (one value per time slice).
    pub fn lane(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.lanes.push(Lane {
            label: label.into(),
            values,
        });
    }

    /// Render the `<svg>` element.
    pub fn render(&self) -> String {
        const LABEL_W: u32 = 170;
        const TITLE_H: u32 = 24;
        let plot_w = self.width - LABEL_W;
        let total_h = TITLE_H + self.lanes.len() as u32 * (self.lane_height + 4) + 8;
        let global_max = self
            .lanes
            .iter()
            .flat_map(|l| l.values.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-12);

        let mut svg = String::new();
        write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="monospace" font-size="11">"#,
            w = self.width,
            h = total_h
        )
        .expect("write to String");
        write!(
            svg,
            r#"<text x="4" y="15" font-size="13">{}</text>"#,
            escape(&self.title)
        )
        .expect("write to String");

        for (i, lane) in self.lanes.iter().enumerate() {
            let top = TITLE_H + i as u32 * (self.lane_height + 4);
            let base = top + self.lane_height;
            write!(
                svg,
                r#"<text x="4" y="{y}">{label}</text>"#,
                y = base - 2,
                label = escape(&lane.label)
            )
            .expect("write to String");
            write!(
                svg,
                r##"<rect x="{x}" y="{top}" width="{pw}" height="{lh}" fill="#f6f6f6"/>"##,
                x = LABEL_W,
                top = top,
                pw = plot_w,
                lh = self.lane_height
            )
            .expect("write to String");

            if lane.values.is_empty() {
                continue;
            }
            // Filled step path over the lane; peak-preserving bucket
            // downsampling to one bucket per pixel.
            let n = lane.values.len();
            let mut d = format!("M {x} {y}", x = LABEL_W, y = base);
            for px in 0..plot_w {
                let lo = px as usize * n / plot_w as usize;
                let hi = (((px + 1) as usize * n) / plot_w as usize)
                    .max(lo + 1)
                    .min(n);
                let peak = lane.values[lo..hi].iter().copied().fold(0.0f64, f64::max);
                let y = base as f64 - (peak / global_max) * self.lane_height as f64;
                write!(d, " L {x} {y:.1}", x = LABEL_W + px).expect("write to String");
            }
            write!(d, " L {x} {y} Z", x = LABEL_W + plot_w - 1, y = base).expect("write");
            write!(svg, r##"<path d="{d}" fill="#4878a8" stroke="none"/>"##)
                .expect("write to String");

            let peak = lane.values.iter().copied().fold(0.0f64, f64::max);
            write!(
                svg,
                r##"<text x="{x}" y="{y}" fill="#666">peak {peak:.4}</text>"##,
                x = LABEL_W + plot_w - 80,
                y = top + 11
            )
            .expect("write to String");
        }
        svg.push_str("</svg>");
        svg
    }
}

/// A whole HTML report: title, free paragraphs, charts and pre-rendered
/// monospace blocks (tables), emitted as one self-contained page.
pub struct HtmlReport {
    title: String,
    body: String,
}

impl HtmlReport {
    /// New report.
    pub fn new(title: impl Into<String>) -> Self {
        HtmlReport {
            title: title.into(),
            body: String::new(),
        }
    }

    /// Add a section heading.
    pub fn heading(&mut self, text: &str) {
        write!(self.body, "<h2>{}</h2>", escape(text)).expect("write to String");
    }

    /// Add a paragraph.
    pub fn paragraph(&mut self, text: &str) {
        write!(self.body, "<p>{}</p>", escape(text)).expect("write to String");
    }

    /// Add a monospace block (e.g. a rendered [`crate::Table`]).
    pub fn pre(&mut self, text: &str) {
        write!(self.body, "<pre>{}</pre>", escape(text)).expect("write to String");
    }

    /// Embed a chart.
    pub fn chart(&mut self, chart: &SvgChart) {
        self.body.push_str(&chart.render());
    }

    /// Render the complete page.
    pub fn render(&self) -> String {
        format!(
            "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>{title}</title>\
             <style>body{{font-family:sans-serif;margin:2em;max-width:1100px}}\
             pre{{background:#f6f6f6;padding:8px;overflow-x:auto}}</style>\
             </head><body><h1>{title}</h1>{body}</body></html>",
            title = escape(&self.title),
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn svg_renders_lanes_and_peaks() {
        let mut c = SvgChart::new("Fig & co", 600, 28);
        c.lane("fft1d", vec![0.0, 1.0, 4.0, 2.0]);
        c.lane("wav_store <odd>", vec![0.0; 4]);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Fig &amp; co"));
        assert!(svg.contains("fft1d"));
        assert!(svg.contains("wav_store &lt;odd&gt;"), "labels escaped");
        assert!(svg.contains("peak 4.0000"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn svg_peak_survives_downsampling() {
        let mut values = vec![0.0; 10_000];
        values[7_777] = 9.0;
        let mut c = SvgChart::new("t", 400, 24);
        c.lane("spiky", values);
        let svg = c.render();
        assert!(svg.contains("peak 9.0000"));
        // Some path point must reach the lane top (y == lane top = 24+0…).
        assert!(svg.contains("L "), "has a path");
    }

    #[test]
    fn html_report_is_self_contained() {
        let mut r = HtmlReport::new("tQUAD report");
        r.heading("Phases");
        r.paragraph("Five phases & counting");
        r.pre("kernel | %time\nfft1d  | 25.58");
        let mut c = SvgChart::new("bandwidth", 500, 24);
        c.lane("k", vec![1.0, 2.0]);
        r.chart(&c);
        let html = r.render();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h2>Phases</h2>"));
        assert!(html.contains("Five phases &amp; counting"));
        assert!(html.contains("fft1d  | 25.58"));
        assert!(html.contains("<svg"));
        assert!(html.ends_with("</body></html>"));
    }

    #[test]
    fn empty_lane_is_safe() {
        let mut c = SvgChart::new("t", 300, 20);
        c.lane("empty", vec![]);
        let svg = c.render();
        assert!(svg.contains("empty"));
    }
}
