//! Fleet-wide telemetry aggregation.
//!
//! A tq-profd fleet has no coordinator, so fleet-level views are built
//! client-side by scraping every roster member and merging:
//!
//! * **distributed traces** — each peer's `trace` endpoint exports its
//!   span ring as a Chrome trace document stamped with the peer's own
//!   monotonic clock ([`tq_obs::now_ns`]). Those clocks share no epoch,
//!   so [`merge_chrome_traces`] first estimates each peer's offset from
//!   the request round-trip (NTP's single-sample estimator,
//!   [`estimate_offset_ns`]), shifts every span onto the scraping
//!   client's timeline, re-homes each peer under its own Chrome `pid`,
//!   and sorts the union. A routed job then shows up as one correlated
//!   set of tracks — submit on the non-owner, route/capture on the
//!   owner, peek-serve back — joined by the `job_id` span argument;
//! * **metrics** — [`merge_prometheus`] concatenates per-peer
//!   expositions into one document, tagging every sample with a
//!   `peer="addr"` label and keeping each `# HELP`/`# TYPE` header once,
//!   which is what `tq fleet-status --metrics` prints;
//! * **health/stats** — [`scrape_fleet`] fetches `stats` + `metrics`
//!   from every member, reporting per-peer errors instead of failing the
//!   whole scrape (a dead peer is a *finding*, not an excuse).

use crate::client::{Client, ClientConfig, TraceExport};
use tq_report::Json;

/// NTP-style single-sample clock-offset estimate.
///
/// The client stamps `t0_ns` before sending a `trace` request and
/// `t1_ns` after the reply; the server reports its own clock
/// `server_now_ns`. Assuming symmetric network delay the server read its
/// clock at client-time `(t0 + t1) / 2`, so the server clock runs ahead
/// of the client clock by roughly:
///
/// ```text
/// offset ≈ server_now_ns − (t0_ns + t1_ns) / 2
/// ```
///
/// The error bound is half the round-trip — microseconds on localhost,
/// which is plenty to line up millisecond-scale job spans.
pub fn estimate_offset_ns(t0_ns: u64, t1_ns: u64, server_now_ns: u64) -> i64 {
    let midpoint = ((t0_ns as u128 + t1_ns as u128) / 2) as i64;
    server_now_ns as i64 - midpoint
}

/// Merge per-peer Chrome trace exports onto the scraping client's
/// timeline: peer `i` becomes Chrome `pid` `i+1` (named by a
/// `process_name` metadata record), every `X` event's `ts` is shifted by
/// that peer's estimated clock offset, and the merged events are sorted
/// by shifted start time. Shifted timestamps can go negative when a peer
/// started before the scraper; trace viewers accept that.
pub fn merge_chrome_traces(peers: &[(String, TraceExport)]) -> Result<String, String> {
    let mut metas: Vec<Json> = Vec::new();
    let mut spans: Vec<(f64, Json)> = Vec::new();
    for (i, (addr, export)) in peers.iter().enumerate() {
        let pid = (i + 1) as u64;
        let offset_us =
            estimate_offset_ns(export.t0_ns, export.t1_ns, export.server_now_ns) as f64 / 1_000.0;
        let doc = Json::parse(&export.doc).map_err(|e| format!("{addr}: trace: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{addr}: trace missing `traceEvents`"))?;
        metas.push(Json::obj([
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(pid)),
            ("tid", Json::from(0u64)),
            ("args", Json::obj([("name", Json::from(addr.as_str()))])),
        ]));
        for ev in events {
            let mut ev = ev.clone();
            ev.set("pid", Json::from(pid));
            if ev.get("ph").and_then(Json::as_str) == Some("X") {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{addr}: X event missing `ts`"))?;
                let shifted = ts - offset_us;
                ev.set("ts", Json::from(shifted));
                spans.push((shifted, ev));
            } else {
                metas.push(ev);
            }
        }
    }
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut events = metas;
    events.extend(spans.into_iter().map(|(_, ev)| ev));
    Ok(Json::obj([("traceEvents", Json::from(events))]).render())
}

/// Scrape the `trace` endpoint of every peer and merge the exports
/// ([`merge_chrome_traces`]). Unreachable peers are skipped with a
/// structured warning — a partial fleet trace beats none — but if *no*
/// peer answers the scrape fails.
pub fn fetch_merged_trace(peers: &[String], config: &ClientConfig) -> Result<String, String> {
    let mut exports: Vec<(String, TraceExport)> = Vec::new();
    let mut last_err = String::from("no peers given");
    for addr in peers {
        match Client::connect_with(addr, config.clone()).and_then(|mut c| c.trace_export()) {
            Ok(export) => exports.push((addr.clone(), export)),
            Err(e) => {
                tq_obs::log::warn(
                    "tq-telemetry",
                    "trace_scrape_failed",
                    &[("peer", addr.as_str().into()), ("error", e.as_str().into())],
                );
                last_err = format!("{addr}: {e}");
            }
        }
    }
    if exports.is_empty() {
        return Err(format!("no peer answered a trace scrape: {last_err}"));
    }
    merge_chrome_traces(&exports)
}

/// One roster member's scrape result: whatever `stats`/`metrics` it
/// answered with, or the error that kept it from answering.
#[derive(Clone, Debug)]
pub struct PeerStatus {
    /// The peer's address.
    pub addr: String,
    /// Its `stats` snapshot, when reachable.
    pub stats: Option<Json>,
    /// Its Prometheus exposition, when reachable.
    pub metrics: Option<String>,
    /// The first transport/protocol error, when not.
    pub error: Option<String>,
}

/// Scrape `stats` and `metrics` from every peer. Never fails as a whole:
/// a peer that cannot be reached yields a [`PeerStatus`] carrying the
/// error, so `tq fleet-status` can render dead peers alongside live ones.
pub fn scrape_fleet(peers: &[String], config: &ClientConfig) -> Vec<PeerStatus> {
    peers
        .iter()
        .map(|addr| {
            let mut status = PeerStatus {
                addr: addr.clone(),
                stats: None,
                metrics: None,
                error: None,
            };
            match Client::connect_with(addr, config.clone()) {
                Ok(mut client) => {
                    match client.stats() {
                        Ok(stats) => status.stats = Some(stats),
                        Err(e) => status.error = Some(e),
                    }
                    match client.metrics() {
                        Ok(metrics) => status.metrics = Some(metrics),
                        Err(e) => {
                            status.error.get_or_insert(e);
                        }
                    }
                }
                Err(e) => status.error = Some(e),
            }
            status
        })
        .collect()
}

/// Merge per-peer Prometheus expositions into one document: every sample
/// line gains a `peer="addr"` label (prepended so it survives existing
/// labels like a histogram's `le`), and each `# HELP`/`# TYPE` header is
/// kept only at its first occurrence. Sample order groups by peer, which
/// Prometheus parsers accept as long as the headers are not repeated.
pub fn merge_prometheus(peers: &[(String, String)]) -> String {
    let mut out = String::new();
    let mut seen_headers: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (addr, text) in peers {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if seen_headers.insert(rest.trim().to_string()) {
                    out.push_str(line);
                    out.push('\n');
                }
                continue;
            }
            out.push_str(&label_sample_line(line, addr));
            out.push('\n');
        }
    }
    out
}

/// Insert `peer="addr"` as the first label of one exposition sample line
/// (`name value` or `name{labels} value`). Lines that do not look like
/// samples pass through untouched.
fn label_sample_line(line: &str, peer: &str) -> String {
    let space = match line.find(' ') {
        Some(i) => i,
        None => return line.to_string(),
    };
    match line.find('{') {
        Some(brace) if brace < space => {
            let (head, rest) = line.split_at(brace + 1);
            format!("{head}peer=\"{peer}\",{rest}")
        }
        _ => {
            let (name, rest) = line.split_at(space);
            format!("{name}{{peer=\"{peer}\"}}{rest}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_is_server_minus_midpoint() {
        // Request left at 100, answer back at 300; the server read 1_000
        // at client-time ~200, so it runs 800ns ahead.
        assert_eq!(estimate_offset_ns(100, 300, 1_000), 800);
        // A server behind the client yields a negative offset.
        assert_eq!(estimate_offset_ns(2_000, 2_400, 200), -2_000);
        // Odd sums round down at the midpoint, never overflow.
        assert_eq!(estimate_offset_ns(1, 2, 10), 9);
        assert_eq!(estimate_offset_ns(u64::MAX, u64::MAX, u64::MAX), 0);
    }

    fn export(t0: u64, t1: u64, server_now: u64, doc: &str) -> TraceExport {
        TraceExport {
            t0_ns: t0,
            t1_ns: t1,
            server_now_ns: server_now,
            doc: doc.to_string(),
        }
    }

    #[test]
    fn merge_rehomes_pids_shifts_clocks_and_sorts() {
        // Peer A's clock matches the client (offset 0); peer B runs
        // 1ms = 1000µs ahead, so its span at server-ts 1500µs lands at
        // client-ts 500µs — *before* A's span at 800µs.
        let a = export(
            0,
            0,
            0,
            r#"{"traceEvents":[{"name":"submit","cat":"profd","ph":"X","pid":1,"tid":7,"ts":800.0,"dur":10.0,"args":{"job_id":"00000000000000aa"}}]}"#,
        );
        let b = export(
            1_000_000,
            1_000_000,
            2_000_000,
            r#"{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"worker-0"}},{"name":"capture","cat":"profd","ph":"X","pid":1,"tid":3,"ts":1500.0,"dur":20.0,"args":{"job_id":"00000000000000aa"}}]}"#,
        );
        let merged = merge_chrome_traces(&[("host-a:1".into(), a), ("host-b:2".into(), b)])
            .expect("merge succeeds");
        let doc = Json::parse(&merged).expect("merged trace parses");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

        let process_names: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").and_then(Json::as_u64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(process_names, vec![(1, "host-a:1"), (2, "host-b:2")]);

        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        // Sorted by shifted time: B's capture (500µs) before A's submit.
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("capture"));
        assert_eq!(spans[0].get("pid").and_then(Json::as_u64), Some(2));
        assert_eq!(spans[0].get("ts").and_then(Json::as_f64), Some(500.0));
        assert_eq!(spans[1].get("name").and_then(Json::as_str), Some("submit"));
        assert_eq!(spans[1].get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(spans[1].get("ts").and_then(Json::as_f64), Some(800.0));
        // Both hops kept their shared correlation key.
        for s in &spans {
            assert_eq!(
                s.get("args")
                    .and_then(|a| a.get("job_id"))
                    .and_then(Json::as_str),
                Some("00000000000000aa")
            );
        }
        // The peer thread-name metadata survived under the new pid.
        let meta = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .expect("thread_name metadata kept");
        assert_eq!(meta.get("pid").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn prometheus_merge_labels_samples_and_dedups_headers() {
        let a = (
            "host-a:1".to_string(),
            "# HELP tq_jobs_total Jobs\n# TYPE tq_jobs_total counter\ntq_jobs_total 3\n\
             tq_lat_bucket{le=\"15\"} 2\n"
                .to_string(),
        );
        let b = (
            "host-b:2".to_string(),
            "# HELP tq_jobs_total Jobs\n# TYPE tq_jobs_total counter\ntq_jobs_total 5\n"
                .to_string(),
        );
        let merged = merge_prometheus(&[a, b]);
        assert_eq!(
            merged.matches("# HELP tq_jobs_total Jobs").count(),
            1,
            "headers kept once:\n{merged}"
        );
        assert!(
            merged.contains("tq_jobs_total{peer=\"host-a:1\"} 3"),
            "{merged}"
        );
        assert!(
            merged.contains("tq_jobs_total{peer=\"host-b:2\"} 5"),
            "{merged}"
        );
        // The peer label composes with existing labels.
        assert!(
            merged.contains("tq_lat_bucket{peer=\"host-a:1\",le=\"15\"} 2"),
            "{merged}"
        );
    }

    #[test]
    fn merge_rejects_garbage_trace_documents() {
        let bad = export(0, 0, 0, "not json");
        let err = merge_chrome_traces(&[("p:1".into(), bad)]).unwrap_err();
        assert!(err.starts_with("p:1: trace:"), "{err}");
    }
}
