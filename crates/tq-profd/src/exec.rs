//! Job execution: capture on a cold workload, replay for every tool.
//!
//! [`record_capture`] is the only function in the service that runs the VM
//! interpreter; everything else is offline replay of the recorded event
//! stream. [`run_tool`] dispatches a [`JobSpec`] over a capture and renders
//! the resulting profile as canonical JSON — the object the server
//! memoizes, so its key order must be deterministic (it is: `tq_report`'s
//! `Json` objects keep insertion order, and every list below is emitted in
//! a sorted or index order, never hash order).

use crate::apps::Workload;
use crate::protocol::{JobSpec, ToolId};
use tq_gprof::{FlatProfile, GprofOptions, GprofTool};
use tq_quad::{QuadOptions, QuadProfile, QuadTool};
use tq_report::Json;
use tq_tquad::{profile_json, LibPolicy, PhaseDetector, TquadOptions, TquadTool};
use tq_trace::{Trace, TraceRecorder};

/// Run the workload under the trace recorder — the one VM execution a
/// content address ever needs. `fuel` bounds the run (a misbehaving
/// workload must not wedge a worker forever). Records at the service's
/// default interpreter level; see [`record_capture_opt`].
pub fn record_capture(workload: &Workload, fuel: Option<u64>) -> Result<Trace, String> {
    record_capture_opt(workload, fuel, tq_vm::VmOpt::Trace).map(|(trace, _)| trace)
}

/// [`record_capture`] with an explicit interpreter optimisation level,
/// also returning the run's [`tq_vm::VmStats`] so the server can fold the
/// optimisation counters into its service stats. The capture bytes are
/// level-invariant — `vm_opt` only changes how fast the run goes.
pub fn record_capture_opt(
    workload: &Workload,
    fuel: Option<u64>,
    vm_opt: tq_vm::VmOpt,
) -> Result<(Trace, tq_vm::VmStats), String> {
    let _span = tq_obs::span("capture", "vm");
    let mut vm = workload.make_vm()?;
    vm.set_vm_opt(vm_opt);
    let h = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(fuel)
        .map_err(|e| format!("capture run failed: {e}"))?;
    let stats = *vm.stats();
    let rec = vm
        .detach_tool::<TraceRecorder>(h)
        .ok_or("trace recorder lost its handle")?;
    // Embed the chunk index while the capture is hot: one scan here buys
    // rescan-free sharded replay for every later analysis of this capture
    // (the index persists through the disk tier, and the content digest
    // deliberately ignores it).
    let trace = rec
        .into_trace()
        .with_chunk_index(tq_trace::DEFAULT_CHUNKS)
        .map_err(|e| format!("chunk indexing failed: {e:?}"))?;
    Ok((trace, stats))
}

/// Replay `trace` under the job's tool and render the profile as canonical
/// JSON. Pure function of `(spec, trace)` — the basis of result memoizing:
/// `n_jobs` shards the replay across threads but never changes the output
/// (sharded partials reduce to the byte-identical sequential profile), so
/// it is deliberately *not* part of the memo key.
pub fn run_tool(spec: &JobSpec, trace: &Trace, n_jobs: usize) -> Result<Json, String> {
    // Fault rehearsal: an artificially slow replay is the chaos tests'
    // lever for forcing queue pressure; free when no plan is installed.
    if tq_faults::sleep_if(tq_faults::FaultPoint::SlowReplay) {
        tq_obs::log::warn(
            "tq-profd",
            "fault_fired",
            &[("point", tq_faults::FaultPoint::SlowReplay.key().into())],
        );
    }
    let mode = tq_vm::InstrMode::parse(&spec.instr)?;
    match spec.tool {
        ToolId::Tquad => {
            let profile = replay_tquad(spec, trace, &mode, n_jobs)?;
            Ok(profile_json(&profile))
        }
        ToolId::Quad => {
            let tool = QuadTool::new(QuadOptions {
                include_stack: spec.stack.include(),
                lib_policy: spec.lib_policy,
            });
            Ok(quad_json(
                &replay_with_mode(trace, tool, &mode, n_jobs)?.into_profile(),
            ))
        }
        ToolId::Gprof => {
            if spec.interval == 0 {
                return Err("gprof requires a positive `interval`".into());
            }
            let tool = GprofTool::new(GprofOptions {
                sample_interval: spec.interval,
                track_libs: matches!(spec.lib_policy, LibPolicy::Track),
                ..Default::default()
            });
            Ok(gprof_json(
                &replay_with_mode(trace, tool, &mode, n_jobs)?.into_profile(),
            ))
        }
        ToolId::Phases => {
            let profile = replay_tquad(spec, trace, &mode, n_jobs)?;
            let detector = PhaseDetector {
                include_stack: spec.stack.include(),
                ..PhaseDetector::default()
            };
            let phases = detector.detect(&profile);
            Ok(phases_json(&profile, &phases))
        }
    }
}

/// Drive `tool` over the capture. Full-instrumentation jobs shard across
/// `n_jobs` replay threads; reduced-mode jobs feed the events through the
/// sequential [`tq_vm::InstrEmulator`] instead — the gate is one state
/// machine over the whole stream, so those replays cannot shard, and the
/// result is byte-identical to a live `--instr` run of the same mode.
fn replay_with_mode<T: tq_vm::MergeTool + 'static>(
    trace: &Trace,
    mut tool: T,
    mode: &tq_vm::InstrMode,
    n_jobs: usize,
) -> Result<T, String> {
    if mode.is_full() {
        trace
            .replay_sharded(&mut tool, n_jobs)
            .map_err(|e| format!("replay failed: {e:?}"))?;
        Ok(tool)
    } else {
        let mut emu = tq_vm::InstrEmulator::new(tool, mode.clone());
        trace
            .replay(&mut emu)
            .map_err(|e| format!("replay failed: {e:?}"))?;
        emu.finish()
    }
}

fn replay_tquad(
    spec: &JobSpec,
    trace: &Trace,
    mode: &tq_vm::InstrMode,
    n_jobs: usize,
) -> Result<tq_tquad::TquadProfile, String> {
    if spec.interval == 0 {
        return Err(format!(
            "{} requires a positive `interval`",
            spec.tool.as_str()
        ));
    }
    let tool = TquadTool::new(
        TquadOptions::default()
            .with_interval(spec.interval)
            .with_lib_policy(spec.lib_policy),
    );
    Ok(replay_with_mode(trace, tool, mode, n_jobs)?.into_profile())
}

fn quad_json(p: &QuadProfile) -> Json {
    let name_of = |rtn: tq_isa::RoutineId| {
        p.rows
            .get(rtn.idx())
            .map(|r| r.name.as_str())
            .unwrap_or("?")
    };
    let rows: Vec<Json> = p
        .rows
        .iter()
        .filter(|r| r.in_bytes > 0 || r.out_bytes > 0 || r.checked_accesses > 0)
        .map(|r| {
            Json::obj([
                ("rtn", Json::from(u64::from(r.rtn.0))),
                ("name", Json::from(r.name.as_str())),
                ("main_image", Json::from(r.main_image)),
                ("in_bytes", Json::from(r.in_bytes)),
                ("in_unma", Json::from(r.in_unma)),
                ("out_bytes", Json::from(r.out_bytes)),
                ("out_unma", Json::from(r.out_unma)),
                ("checked_accesses", Json::from(r.checked_accesses)),
                ("traced_accesses", Json::from(r.traced_accesses)),
            ])
        })
        .collect();
    // Bindings come out of a hash map: sort for a canonical rendering.
    let mut bindings: Vec<_> = p.bindings.iter().collect();
    bindings.sort_by_key(|b| (b.producer.0, b.consumer.0));
    let bindings: Vec<Json> = bindings
        .into_iter()
        .map(|b| {
            Json::obj([
                ("producer", Json::from(name_of(b.producer))),
                ("consumer", Json::from(name_of(b.consumer))),
                ("bytes", Json::from(b.bytes)),
                ("unma", Json::from(b.unma)),
            ])
        })
        .collect();
    Json::obj([
        ("include_stack", Json::from(p.include_stack)),
        ("rows", Json::from(rows)),
        ("bindings", Json::from(bindings)),
    ])
}

fn gprof_json(p: &FlatProfile) -> Json {
    let rows: Vec<Json> = p
        .rows
        .iter()
        .filter(|r| r.self_samples > 0 || r.cum_samples > 0 || r.calls > 0)
        .map(|r| {
            Json::obj([
                ("rtn", Json::from(u64::from(r.rtn.0))),
                ("name", Json::from(r.name.as_str())),
                ("self_samples", Json::from(r.self_samples)),
                ("cum_samples", Json::from(r.cum_samples)),
                ("calls", Json::from(r.calls)),
            ])
        })
        .collect();
    let mut edges: Vec<_> = p.edges.iter().collect();
    edges.sort_by_key(|e| (e.caller.0, e.callee.0));
    let edges: Vec<Json> = edges
        .into_iter()
        .map(|e| {
            Json::obj([
                ("caller", Json::from(e.caller_name.as_str())),
                ("callee", Json::from(e.callee_name.as_str())),
                ("count", Json::from(e.count)),
            ])
        })
        .collect();
    Json::obj([
        ("sample_interval", Json::from(p.sample_interval)),
        ("total_samples", Json::from(p.total_samples)),
        ("rows", Json::from(rows)),
        ("edges", Json::from(edges)),
    ])
}

fn phases_json(profile: &tq_tquad::TquadProfile, phases: &[tq_tquad::Phase]) -> Json {
    let items: Vec<Json> = phases
        .iter()
        .map(|ph| {
            let kernels: Vec<Json> = ph
                .kernels
                .iter()
                .map(|&id| {
                    Json::from(
                        profile
                            .kernels
                            .get(id.idx())
                            .map(|k| k.name.as_str())
                            .unwrap_or("?"),
                    )
                })
                .collect();
            Json::obj([
                ("start", Json::from(ph.span.0)),
                ("end", Json::from(ph.span.1)),
                ("slices", Json::from(ph.len())),
                ("kernels", Json::from(kernels)),
            ])
        })
        .collect();
    Json::obj([
        ("interval", Json::from(profile.interval)),
        ("n_slices", Json::from(profile.n_slices())),
        ("n_phases", Json::from(items.len())),
        ("phases", Json::from(items)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{AppId, Scale};
    use crate::protocol::StackPolicy;

    fn tiny_capture() -> (Workload, Trace) {
        let w = Workload::build(AppId::Wfs, Scale::Tiny);
        let t = record_capture(&w, None).expect("capture");
        (w, t)
    }

    #[test]
    fn every_tool_replays_and_renders() {
        let (_, trace) = tiny_capture();
        for tool in [ToolId::Tquad, ToolId::Quad, ToolId::Gprof, ToolId::Phases] {
            let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, tool);
            let json = run_tool(&spec, &trace, 1).unwrap_or_else(|e| panic!("{tool:?}: {e}"));
            let line = json.render();
            assert!(!line.is_empty());
            // Canonical: render ∘ parse ∘ render is the identity.
            assert_eq!(Json::parse(&line).expect("reparse").render(), line);
        }
    }

    #[test]
    fn replay_is_deterministic_per_spec() {
        let (_, trace) = tiny_capture();
        let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Quad);
        let a = run_tool(&spec, &trace, 1).unwrap().render();
        let b = run_tool(&spec, &trace, 1).unwrap().render();
        assert_eq!(a, b, "same spec, same capture, same bytes");
    }

    #[test]
    fn sharded_replay_renders_identical_json() {
        // n_jobs must be invisible in the output — that is what makes it
        // safe to leave out of the result-memo key.
        let (_, trace) = tiny_capture();
        for tool in [ToolId::Tquad, ToolId::Quad, ToolId::Gprof, ToolId::Phases] {
            let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, tool);
            let seq = run_tool(&spec, &trace, 1).unwrap().render();
            for jobs in [2, 4] {
                let sharded = run_tool(&spec, &trace, jobs).unwrap().render();
                assert_eq!(seq, sharded, "{tool:?} with {jobs} shards");
            }
        }
    }

    #[test]
    fn variants_change_the_answer() {
        let (_, trace) = tiny_capture();
        let base = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Quad);
        let with_stack = run_tool(&base, &trace, 1).unwrap().render();
        let without = run_tool(
            &JobSpec {
                stack: StackPolicy::Exclude,
                ..base.clone()
            },
            &trace,
            1,
        )
        .unwrap()
        .render();
        assert_ne!(
            with_stack, without,
            "stack policy is visible in the profile"
        );
    }

    #[test]
    fn all_routines_filter_is_byte_identical_to_full() {
        let (_, trace) = tiny_capture();
        for tool in [ToolId::Tquad, ToolId::Quad, ToolId::Gprof, ToolId::Phases] {
            let full = JobSpec::new(AppId::Wfs, Scale::Tiny, tool);
            let filtered = JobSpec {
                instr: "filter:*".into(),
                ..full.clone()
            };
            // `filter:*` is observationally full — the emulator is never
            // engaged, so even the (absent) instr note matches.
            assert_eq!(
                run_tool(&full, &trace, 1).unwrap().render(),
                run_tool(&filtered, &trace, 1).unwrap().render(),
                "{tool:?}"
            );
        }
    }

    #[test]
    fn reduced_modes_note_their_spec_and_change_the_series() {
        let (_, trace) = tiny_capture();
        let full = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad);
        let sampled = JobSpec {
            instr: "sample:4/20000@7".into(),
            ..full.clone()
        };
        let a = run_tool(&full, &trace, 1).unwrap().render();
        let b = run_tool(&sampled, &trace, 1).unwrap().render();
        assert_ne!(a, b, "a sampled profile is a different answer");
        assert!(!a.contains("\"instr\""), "full profiles carry no note");
        let note = Json::parse(&b).unwrap();
        let note = note.get("instr").expect("sampled profiles carry a note");
        assert_eq!(note.get("spec").unwrap().as_str(), Some("sample:4/20000@7"));
        assert!(note.get("coverage_ppm").unwrap().as_u64().unwrap() < 1_000_000);
        // Deterministic: same spec, same capture, same bytes (the basis
        // of memoising reduced jobs like any other).
        assert_eq!(b, run_tool(&sampled, &trace, 1).unwrap().render());
    }

    #[test]
    fn gprof_is_exact_under_slice_gating() {
        // Only memory events are gated; gprof never looks at them, so its
        // output is byte-identical under sample and converge.
        let (_, trace) = tiny_capture();
        let full = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Gprof);
        let baseline = run_tool(&full, &trace, 1).unwrap().render();
        for spec in ["sample:4/20000@7", "converge:0.05,4/20000"] {
            let job = JobSpec {
                instr: spec.into(),
                ..full.clone()
            };
            assert_eq!(
                baseline,
                run_tool(&job, &trace, 1).unwrap().render(),
                "{spec}"
            );
        }
    }

    #[test]
    fn unknown_filter_routine_is_an_error() {
        let (_, trace) = tiny_capture();
        let job = JobSpec {
            instr: "filter:no_such_routine".into(),
            ..JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Quad)
        };
        let err = run_tool(&job, &trace, 1).unwrap_err();
        assert!(err.contains("no_such_routine"), "{err}");
    }

    #[test]
    fn zero_interval_is_an_error_not_a_panic() {
        let (_, trace) = tiny_capture();
        let mut spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad);
        spec.interval = 0;
        assert!(run_tool(&spec, &trace, 1).is_err());
        assert!(run_tool(&spec, &trace, 4).is_err());
        spec.tool = ToolId::Gprof;
        assert!(run_tool(&spec, &trace, 1).is_err());
    }
}
