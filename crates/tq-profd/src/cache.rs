//! The content-addressed capture store.
//!
//! Two tiers under one digest key:
//!
//! * an **in-memory LRU** of decoded [`Trace`]s, bounded by a byte budget,
//!   shared across workers via `Arc` so concurrent replays of one capture
//!   cost one copy;
//! * an optional **on-disk tier** (`<state_dir>/captures/<digest>.capture`)
//!   that survives restarts; entries evicted from memory stay on disk and
//!   reload on the next request.
//!
//! Recording is **single-flight**: when several jobs need the same missing
//! capture at once, one worker runs the VM while the rest block on a
//! condvar and pick the result up from the cache — the expensive
//! interpreter run happens exactly once per content address.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use tq_trace::Trace;

/// Where a capture came from, for the stats counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaptureSource {
    /// Served from the in-memory LRU.
    Memory,
    /// Loaded from the on-disk tier.
    Disk,
    /// Recorded by running the VM.
    Recorded,
}

/// Structured record for an injected cache IO failure: every rehearsed
/// degradation leaves an operator-visible trail naming the site it hit.
fn log_fault_fired(site: &str) {
    tq_obs::log::warn(
        "tq-profd",
        "fault_fired",
        &[
            ("point", tq_faults::FaultPoint::CacheIoError.key().into()),
            ("site", site.into()),
        ],
    );
}

/// Estimated resident size of a trace, for the LRU budget.
fn trace_bytes(t: &Trace) -> u64 {
    let names: usize = t
        .info
        .routines
        .iter()
        .map(|r| r.name.len() + r.image.len())
        .sum();
    (t.events.len() + names + t.info.routines.len() * 64 + 128) as u64
}

#[derive(Default)]
struct Inner {
    /// digest → (trace, LRU stamp).
    entries: HashMap<String, (Arc<Trace>, u64)>,
    /// Monotonic recency counter.
    stamp: u64,
    /// Resident bytes.
    bytes: u64,
    /// Digests currently being recorded/loaded by some worker.
    inflight: HashMap<String, Arc<(Mutex<bool>, Condvar)>>,
}

/// The two-tier capture store. All methods take `&self`; the store is
/// shared across worker threads via `Arc`.
pub struct CaptureStore {
    state_dir: Option<PathBuf>,
    budget_bytes: u64,
    inner: Mutex<Inner>,
}

impl CaptureStore {
    /// New store. `state_dir` enables the persistent tier (the directory is
    /// created lazily); `budget_bytes` bounds the in-memory tier.
    pub fn new(state_dir: Option<PathBuf>, budget_bytes: u64) -> CaptureStore {
        CaptureStore {
            state_dir,
            budget_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn capture_path(&self, digest: &str) -> Option<PathBuf> {
        self.state_dir
            .as_ref()
            .map(|d| d.join("captures").join(format!("{digest}.capture")))
    }

    /// Number of captures resident in memory.
    pub fn mem_entries(&self) -> usize {
        self.lock().entries.len()
    }

    /// Bytes resident in memory.
    pub fn mem_bytes(&self) -> u64 {
        self.lock().bytes
    }

    fn touch(inner: &mut Inner, digest: &str) -> Option<Arc<Trace>> {
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.entries.get_mut(digest).map(|(t, s)| {
            *s = stamp;
            Arc::clone(t)
        })
    }

    /// Insert a trace and evict least-recently-used entries over budget.
    /// The inserted entry itself is never evicted by its own insertion.
    fn insert(&self, inner: &mut Inner, digest: &str, trace: Arc<Trace>) {
        let size = trace_bytes(&trace);
        inner.stamp += 1;
        let stamp = inner.stamp;
        if inner
            .entries
            .insert(digest.to_string(), (trace, stamp))
            .is_none()
        {
            inner.bytes += size;
        }
        while inner.bytes > self.budget_bytes && inner.entries.len() > 1 {
            let Some(victim) = inner
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != digest)
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some((t, _)) = inner.entries.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(trace_bytes(&t));
            }
        }
    }

    /// The *encoded* capture image for `digest`, read straight off the
    /// disk tier — no decode, no memory-LRU churn. This is the cheap serve
    /// path for fleet peeks: the bytes on disk are exactly what the peer
    /// will feed `Trace::load` (or stream chunk-by-chunk), so serving them
    /// skips decode + re-encode entirely and keeps the columnar TQTRACE3
    /// form's size advantage on the wire. `None` when there is no disk
    /// tier, the file is absent, or it does not look like a capture (a
    /// torn write must not be handed to a peer as truth).
    pub fn peek_bytes(&self, digest: &str) -> Option<Vec<u8>> {
        // Same fault point as the other disk-tier reads: an injected IO
        // failure degrades to the decode-and-reencode path, never a panic.
        if tq_faults::fail_if(tq_faults::FaultPoint::CacheIoError).is_err() {
            log_fault_fired("peek_bytes");
            return None;
        }
        let path = self.capture_path(digest)?;
        let bytes = std::fs::read(&path).ok()?;
        bytes.starts_with(b"TQTRACE").then_some(bytes)
    }

    /// Fetch the capture for `digest` only if some tier already holds it —
    /// never records. This is the fleet `peek` path for digests this node
    /// does *not* own: a non-owner may hand out what it happens to have,
    /// but only the ring owner is allowed to spend a VM run. A recording
    /// in flight counts as "not cached yet" (the peer falls back rather
    /// than blocking a connection thread on our recorder).
    pub fn get_if_cached(&self, digest: &str) -> Option<(Arc<Trace>, CaptureSource)> {
        {
            let mut inner = self.lock();
            if let Some(t) = Self::touch(&mut inner, digest) {
                return Some((t, CaptureSource::Memory));
            }
            if inner.inflight.contains_key(digest) {
                return None;
            }
        }
        let t = self
            .capture_path(digest)
            .filter(|p| p.is_file())
            .and_then(|p| Trace::load_from_path(&p).ok())
            .map(Arc::new)?;
        let mut inner = self.lock();
        self.insert(&mut inner, digest, Arc::clone(&t));
        Some((t, CaptureSource::Disk))
    }

    /// Fetch the capture for `digest`, recording it with `record` on a cold
    /// miss. Returns the trace and where it came from. Concurrent callers
    /// for the same digest block until the single recording finishes.
    pub fn get_or_record(
        &self,
        digest: &str,
        record: impl FnOnce() -> Result<Trace, String>,
    ) -> Result<(Arc<Trace>, CaptureSource), String> {
        loop {
            let gate = {
                let mut inner = self.lock();
                if let Some(t) = Self::touch(&mut inner, digest) {
                    return Ok((t, CaptureSource::Memory));
                }
                match inner.inflight.get(digest) {
                    Some(g) => Arc::clone(g),
                    None => {
                        let g = Arc::new((Mutex::new(false), Condvar::new()));
                        inner.inflight.insert(digest.to_string(), Arc::clone(&g));
                        drop(inner);
                        return self.fill(digest, record);
                    }
                }
            };
            // Someone else is recording: wait for them, then retry the
            // lookup (their entry may already have been evicted — then we
            // become the recorder ourselves).
            let (done_mu, cv) = &*gate;
            let mut done = done_mu.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
            drop(done);
            let mut inner = self.lock();
            if let Some(t) = Self::touch(&mut inner, digest) {
                return Ok((t, CaptureSource::Memory));
            }
        }
    }

    /// Load from disk or record, then publish and wake waiters. Only the
    /// thread that won the inflight race gets here.
    fn fill(
        &self,
        digest: &str,
        record: impl FnOnce() -> Result<Trace, String>,
    ) -> Result<(Arc<Trace>, CaptureSource), String> {
        // Fault rehearsal: an injected disk-read failure behaves like any
        // unreadable capture file — fall back to recording. Correctness is
        // untouched, only the warm-restart benefit is lost.
        let disk_ok = tq_faults::fail_if(tq_faults::FaultPoint::CacheIoError).is_ok();
        if !disk_ok {
            log_fault_fired("disk_load");
        }
        let loaded = self
            .capture_path(digest)
            .filter(|_| disk_ok)
            .filter(|p| p.is_file())
            .and_then(|p| Trace::load_from_path(&p).ok())
            .map(|t| (Arc::new(t), CaptureSource::Disk));
        let result = match loaded {
            Some(hit) => Ok(hit),
            None => {
                // Contain recorder panics: an unwind escaping here would
                // leave the inflight gate armed forever and hang every
                // waiter for this digest.
                let recorded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(record))
                    .unwrap_or_else(|p| {
                        Err(format!(
                            "capture recording panicked: {}",
                            crate::panic_message(p.as_ref())
                        ))
                    });
                recorded.map(|t| {
                    // Best-effort persistence: a full disk (or an injected
                    // write failure) must not fail the job, it just loses
                    // the warm-restart benefit.
                    if let Some(path) = self.capture_path(digest) {
                        match tq_faults::fail_if(tq_faults::FaultPoint::CacheIoError) {
                            Ok(()) => {
                                let _ = path.parent().map(std::fs::create_dir_all);
                                let _ = t.save_to_path(&path);
                            }
                            Err(_) => log_fault_fired("disk_save"),
                        }
                    }
                    (Arc::new(t), CaptureSource::Recorded)
                })
            }
        };
        let mut inner = self.lock();
        if let Ok((t, _)) = &result {
            self.insert(&mut inner, digest, Arc::clone(t));
        }
        if let Some(gate) = inner.inflight.remove(digest) {
            drop(inner);
            let (done_mu, cv) = &*gate;
            *done_mu.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cv.notify_all();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_isa::RoutineId;
    use tq_trace::TraceRecorder;
    use tq_vm::{Event, ProgramInfo, RoutineMeta, Tool};

    fn info() -> ProgramInfo {
        ProgramInfo {
            routines: vec![RoutineMeta {
                id: RoutineId(0),
                name: "main".into(),
                image: "app".into(),
                main_image: true,
                start: 0x10000,
                end: 0x10100,
            }],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        }
    }

    /// A synthetic trace whose content (and so digest) varies with `n`.
    fn tiny_trace(n: u64) -> Trace {
        let mut rec = TraceRecorder::new();
        rec.on_attach(&info());
        for i in 0..n {
            rec.on_event(&Event::MemWrite {
                ip: 0x10008,
                ea: 0x1000_0000 + 8 * i,
                size: 8,
                sp: 0x3FFF_FE00,
                icount: i + 1,
                rtn: RoutineId(0),
            });
        }
        rec.on_fini(n + 1);
        rec.into_trace()
    }

    struct CountEvents(u64);
    impl Tool for CountEvents {
        fn name(&self) -> &str {
            "count"
        }
        fn instrument_ins(&mut self, ins: &tq_vm::InsContext<'_>) -> tq_vm::HookMask {
            tq_vm::standard_mask(ins)
        }
        fn on_event(&mut self, _ev: &Event) {
            self.0 += 1;
        }
    }

    #[test]
    fn single_flight_records_once() {
        let store = Arc::new(CaptureStore::new(None, 64 << 20));
        let recordings = Arc::new(Mutex::new(0u32));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let recordings = Arc::clone(&recordings);
                std::thread::spawn(move || {
                    store
                        .get_or_record("k", move || {
                            *recordings.lock().unwrap() += 1;
                            Ok(tiny_trace(8))
                        })
                        .expect("capture")
                })
            })
            .collect();
        let results: Vec<_> = threads
            .into_iter()
            .map(|t| t.join().expect("join"))
            .collect();
        assert_eq!(
            *recordings.lock().unwrap(),
            1,
            "one VM run for four requests"
        );
        assert_eq!(
            results
                .iter()
                .filter(|(_, s)| *s == CaptureSource::Recorded)
                .count(),
            1
        );
        let first = &results[0].0;
        for (t, _) in &results {
            assert_eq!(t.digest(), first.digest());
        }
    }

    #[test]
    fn lru_evicts_but_disk_tier_restores() {
        let dir = std::env::temp_dir().join(format!("tq-profd-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Budget below two traces: inserting the second evicts the first.
        let t1 = tiny_trace(100);
        let budget = trace_bytes(&t1) + 16;
        let store = CaptureStore::new(Some(dir.clone()), budget);

        let (_, s1) = store.get_or_record("a", || Ok(t1.clone())).unwrap();
        assert_eq!(s1, CaptureSource::Recorded);
        let (_, s2) = store.get_or_record("b", || Ok(tiny_trace(200))).unwrap();
        assert_eq!(s2, CaptureSource::Recorded);
        assert_eq!(store.mem_entries(), 1, "budget forced an eviction");

        // The evicted capture reloads from disk, not a fresh VM run.
        let (back, s3) = store
            .get_or_record("a", || panic!("must not re-record"))
            .unwrap();
        assert_eq!(s3, CaptureSource::Disk);
        assert_eq!(back.digest(), t1.digest());

        // And a replay of the restored capture behaves like the original.
        let mut live = CountEvents(0);
        let mut restored = CountEvents(0);
        t1.replay(&mut live).unwrap();
        back.replay(&mut restored).unwrap();
        assert_eq!(live.0, restored.0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_if_cached_never_records() {
        let dir = std::env::temp_dir().join(format!("tq-profd-peek-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CaptureStore::new(Some(dir.clone()), 1 << 20);
        assert!(store.get_if_cached("missing").is_none());
        store.get_or_record("k", || Ok(tiny_trace(4))).unwrap();
        let (t, s) = store.get_if_cached("k").expect("cached");
        assert_eq!(s, CaptureSource::Memory);
        assert_eq!(t.digest(), tiny_trace(4).digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_bytes_serves_the_encoded_disk_image_without_decoding() {
        let dir = std::env::temp_dir().join(format!("tq-profd-peekbytes-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CaptureStore::new(Some(dir.clone()), 1 << 20);
        assert!(store.peek_bytes("missing").is_none());
        let t = tiny_trace(16);
        store.get_or_record("k", || Ok(t.clone())).unwrap();
        let bytes = store.peek_bytes("k").expect("disk image");
        // The raw image is exactly what the recorder persisted: it loads
        // back to the same digest without this node decoding it.
        let back = Trace::load(&mut bytes.as_slice()).expect("valid capture");
        assert_eq!(back.digest(), t.digest());
        // A torn or garbage file is refused, never handed to a peer.
        std::fs::write(dir.join("captures").join("bad.capture"), b"not a capture").unwrap();
        assert!(store.peek_bytes("bad").is_none());
        // No disk tier, no raw image (the caller falls back to decoding).
        let mem = CaptureStore::new(None, 1 << 20);
        mem.get_or_record("k", || Ok(tiny_trace(4))).unwrap();
        assert!(mem.peek_bytes("k").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_error_propagates_and_unblocks() {
        let store = CaptureStore::new(None, 1 << 20);
        let e = store.get_or_record("bad", || Err("compile failed".into()));
        assert_eq!(e.err().as_deref(), Some("compile failed"));
        // The digest is not poisoned: a later attempt can succeed.
        let ok = store.get_or_record("bad", || Ok(tiny_trace(4)));
        assert!(ok.is_ok());
    }
}
