//! Fleet coordination: the server-side half of `tq-fleet`.
//!
//! `tq-fleet` decides *where* a content digest lives and *who* looks
//! healthy; this module owns the sockets that act on those decisions for
//! a running daemon:
//!
//! * a **prober** (spawned by [`crate::Server`]) pings every configured
//!   peer on a fixed cadence over the ordinary JSON-lines protocol —
//!   `ping` responses carry `queue_len`/`busy_workers`, so one cheap
//!   round-trip yields both liveness and load;
//! * **peek fetches**: when a routed job lands here for a digest another
//!   node owns, [`FleetState::try_peek`] fetches the owner's capture
//!   (the owner records it on demand — that recording is the one per
//!   fleet) instead of re-recording locally. A dead or failing owner
//!   degrades to a local recording, never to a failed job;
//! * **redirect hints**: a `busy` response names the least-loaded live
//!   peer so shed clients resubmit somewhere useful.
//!
//! Counters for all of it surface in `stats` (under `"fleet"`) and as
//! `tq_fleet_*` metrics in the Prometheus exposition.

use crate::apps::{AppId, Scale};
use crate::client::{Client, ClientConfig, RetryPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tq_fleet::{Health, Ring, Roster};
use tq_report::Json;
use tq_trace::Trace;

/// `target` field of this module's structured log records.
const LOG: &str = "tq-profd";

/// Log a roster health transition (the `Option` returned by the roster's
/// record/mark calls): `info` while a peer degrades or recovers, `warn`
/// when it is declared dead — the event an operator pages on.
fn log_transition(peer: &str, transition: Option<(Health, Health)>) {
    if let Some((from, to)) = transition {
        let level = if to == Health::Dead {
            tq_obs::log::Level::Warn
        } else {
            tq_obs::log::Level::Info
        };
        tq_obs::log::emit(
            level,
            LOG,
            "peer_health",
            &[
                ("peer", peer.into()),
                ("from", from.as_str().into()),
                ("to", to.as_str().into()),
            ],
        );
    }
}

/// Fleet membership and probing knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// This node's advertised address — its name on the ring, and what
    /// peers' rosters call it. Must match what the peers were given in
    /// their `--peers` lists.
    pub self_addr: String,
    /// The other fleet members' advertised addresses.
    pub peers: Vec<String>,
    /// Pause between probe rounds.
    pub probe_interval: Duration,
    /// Connect/read budget for one probe ping.
    pub probe_timeout: Duration,
    /// Connect/read budget for one peek fetch. Generous by default: a
    /// cold owner records the capture inside the peek, and losing the
    /// fetch to a timeout means re-recording locally anyway.
    pub peek_timeout: Duration,
}

impl FleetConfig {
    /// Config with default probing cadence and timeouts.
    pub fn new(self_addr: String, peers: Vec<String>) -> FleetConfig {
        FleetConfig {
            self_addr,
            peers,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(500),
            peek_timeout: Duration::from_secs(120),
        }
    }
}

/// tq-obs handles for the fleet counters (mirroring, not replacing, the
/// snapshot counters below — same discipline as the server's job
/// metrics).
mod obs {
    use std::sync::OnceLock;
    use tq_obs::{Counter, Gauge};

    macro_rules! handle {
        ($fn_name:ident, $kind:ident, $ctor:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static $kind {
                static H: OnceLock<$kind> = OnceLock::new();
                H.get_or_init(|| tq_obs::$ctor($name, $help))
            }
        };
    }

    handle!(
        peek_serves,
        Counter,
        counter,
        "tq_fleet_peek_serves_total",
        "Peek requests answered with a capture (this node was asked as owner or happened to hold it)"
    );
    handle!(
        peek_serve_misses,
        Counter,
        counter,
        "tq_fleet_peek_serve_misses_total",
        "Peek requests this node could not answer (digest not cached and not owned here)"
    );
    handle!(
        peek_fetches,
        Counter,
        counter,
        "tq_fleet_peek_fetches_total",
        "Captures fetched from their ring owner instead of re-recording locally"
    );
    handle!(
        peek_fetch_failures,
        Counter,
        counter,
        "tq_fleet_peek_fetch_failures_total",
        "Peek fetches that failed (dead owner, timeout, bad payload) and fell back to local recording"
    );
    handle!(
        redirects_issued,
        Counter,
        counter,
        "tq_fleet_redirects_issued_total",
        "Busy responses that carried a redirect_to hint naming a live peer"
    );
    handle!(
        remote_owned_jobs,
        Counter,
        counter,
        "tq_fleet_remote_owned_jobs_total",
        "Submits served here for digests another fleet node owns"
    );
    handle!(
        probe_rounds,
        Counter,
        counter,
        "tq_fleet_probe_rounds_total",
        "Completed peer probe rounds"
    );
    handle!(
        peers_alive,
        Gauge,
        gauge,
        "tq_fleet_peers_alive",
        "Configured peers currently not considered dead (updated each probe round)"
    );
}

/// One node's view of the fleet: the deterministic ring, the probed
/// roster, and the coordination counters.
pub struct FleetState {
    config: FleetConfig,
    ring: Ring,
    roster: Mutex<Roster>,
    peek_serves: AtomicU64,
    peek_serve_misses: AtomicU64,
    peek_fetches: AtomicU64,
    peek_fetch_failures: AtomicU64,
    redirects_issued: AtomicU64,
    remote_owned_jobs: AtomicU64,
    probe_rounds: AtomicU64,
}

fn lock_roster(m: &Mutex<Roster>) -> std::sync::MutexGuard<'_, Roster> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FleetState {
    /// Build the fleet view: the ring spans self plus every peer, the
    /// roster tracks only the peers.
    pub fn new(config: FleetConfig) -> FleetState {
        let mut members = config.peers.clone();
        members.push(config.self_addr.clone());
        FleetState {
            ring: Ring::new(members),
            roster: Mutex::new(Roster::new(config.peers.clone())),
            config,
            peek_serves: AtomicU64::new(0),
            peek_serve_misses: AtomicU64::new(0),
            peek_fetches: AtomicU64::new(0),
            peek_fetch_failures: AtomicU64::new(0),
            redirects_issued: AtomicU64::new(0),
            remote_owned_jobs: AtomicU64::new(0),
            probe_rounds: AtomicU64::new(0),
        }
    }

    /// This node's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.config.self_addr
    }

    /// The probing cadence (the server's prober thread sleeps this long
    /// between rounds).
    pub fn probe_interval(&self) -> Duration {
        self.config.probe_interval
    }

    /// The ring owner of a content digest.
    pub fn owner_of(&self, digest: &str) -> &str {
        self.ring
            .owner_of(digest)
            .unwrap_or(self.config.self_addr.as_str())
    }

    /// True when this node owns the digest.
    pub fn is_owner(&self, digest: &str) -> bool {
        self.owner_of(digest) == self.config.self_addr
    }

    fn probe_client_config(&self) -> ClientConfig {
        ClientConfig {
            connect_timeout: self.config.probe_timeout,
            read_timeout: Some(self.config.probe_timeout),
            retry: RetryPolicy::default(),
        }
    }

    /// One probe round: ping every peer, fold liveness and reported load
    /// into the roster. Called by the server's prober thread; also
    /// callable directly (tests, or a fleet-aware client warming its
    /// view).
    pub fn probe_once(&self) {
        let cfg = self.probe_client_config();
        for peer in &self.config.peers {
            let outcome = Client::connect_with(peer, cfg.clone())
                .and_then(|mut c| c.ping())
                .ok()
                .filter(|r| r.is_ok());
            let mut roster = lock_roster(&self.roster);
            let transition = match outcome {
                Some(resp) => {
                    let q = resp.0.get("queue_len").and_then(Json::as_u64).unwrap_or(0);
                    let b = resp
                        .0
                        .get("busy_workers")
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    roster.record_success(peer, q, b)
                }
                None => roster.record_failure(peer),
            };
            drop(roster);
            log_transition(peer, transition);
        }
        self.probe_rounds.fetch_add(1, Ordering::Relaxed);
        obs::probe_rounds().inc();
        obs::peers_alive().set(lock_roster(&self.roster).live_count() as i64);
    }

    /// The least-loaded live peer, for `busy` redirect hints. `None`
    /// when every peer looks dead (then the client's plain backoff is
    /// the best remaining advice).
    pub fn redirect_hint(&self) -> Option<String> {
        let hint = lock_roster(&self.roster)
            .least_loaded_live()
            .map(|p| p.addr.clone());
        if hint.is_some() {
            self.redirects_issued.fetch_add(1, Ordering::Relaxed);
            obs::redirects_issued().inc();
        }
        hint
    }

    /// Fetch the capture for a remotely-owned digest from its owner.
    /// `None` means the owner is dead, unreachable, or answered without
    /// the capture — the caller records locally instead (correctness
    /// never depends on a peer). `job_id` rides the wire so the owner's
    /// peek-side spans join the job's distributed trace.
    pub fn try_peek(&self, app: AppId, scale: Scale, digest: &str, job_id: u64) -> Option<Trace> {
        let owner = self.owner_of(digest).to_string();
        if owner == self.config.self_addr {
            return None;
        }
        if !lock_roster(&self.roster).is_live(&owner) {
            self.peek_fetch_failures.fetch_add(1, Ordering::Relaxed);
            obs::peek_fetch_failures().inc();
            return None;
        }
        let fetched = self.fetch_capture(&owner, app, scale, digest, job_id);
        match fetched {
            Some(trace) => {
                self.peek_fetches.fetch_add(1, Ordering::Relaxed);
                obs::peek_fetches().inc();
                Some(trace)
            }
            None => {
                self.peek_fetch_failures.fetch_add(1, Ordering::Relaxed);
                obs::peek_fetch_failures().inc();
                tq_obs::log::warn(
                    LOG,
                    "peek_fetch_failed",
                    &[
                        ("owner", owner.as_str().into()),
                        ("digest", digest.into()),
                        ("job_id", crate::protocol::job_id_hex(job_id).into()),
                    ],
                );
                None
            }
        }
    }

    fn fetch_capture(
        &self,
        owner: &str,
        app: AppId,
        scale: Scale,
        digest: &str,
        job_id: u64,
    ) -> Option<Trace> {
        let cfg = ClientConfig {
            connect_timeout: self.config.probe_timeout,
            read_timeout: Some(self.config.peek_timeout),
            retry: RetryPolicy::default(),
        };
        let mut client = match Client::connect_with(owner, cfg) {
            Ok(c) => c,
            Err(_) => {
                // Unreachable right now: mark it so routing stops
                // betting on this owner before the prober notices.
                let transition = lock_roster(&self.roster).record_failure(owner);
                log_transition(owner, transition);
                return None;
            }
        };
        // Chunked transfer: bounded frame lines instead of one hex line
        // holding 2× the capture (`Client::peek_fetch` also accepts the
        // legacy single-line answer from a pre-chunking owner).
        let bytes = client
            .peek_fetch_tagged(app, scale, digest, job_id)
            .ok()??;
        // `Trace::load` validates framing and checksums, so a payload
        // mangled in transit fails here rather than poisoning the cache.
        Trace::load(&mut bytes.as_slice()).ok()
    }

    /// Count a peek request this node answered with a capture.
    pub fn note_peek_served(&self) {
        self.peek_serves.fetch_add(1, Ordering::Relaxed);
        obs::peek_serves().inc();
    }

    /// Count a peek request this node had to turn away empty-handed.
    pub fn note_peek_missed(&self) {
        self.peek_serve_misses.fetch_add(1, Ordering::Relaxed);
        obs::peek_serve_misses().inc();
    }

    /// Count a submit served here for a digest another node owns.
    pub fn note_remote_owned_job(&self) {
        self.remote_owned_jobs.fetch_add(1, Ordering::Relaxed);
        obs::remote_owned_jobs().inc();
    }

    /// The `stats` JSON block: membership, per-peer health/load, and the
    /// coordination counters.
    pub fn to_json(&self) -> Json {
        let roster = lock_roster(&self.roster);
        let peers: Vec<Json> = roster
            .peers()
            .iter()
            .map(|p| {
                Json::obj([
                    ("addr", Json::from(p.addr.as_str())),
                    ("health", Json::from(p.health.as_str())),
                    ("probes", Json::from(p.probes)),
                    ("failures", Json::from(p.failures)),
                    ("last_queue_len", Json::from(p.last_queue_len)),
                    ("last_busy_workers", Json::from(p.last_busy_workers)),
                ])
            })
            .collect();
        let live = roster.live_count() as u64;
        drop(roster);
        Json::obj([
            ("self", Json::from(self.config.self_addr.as_str())),
            ("ring_nodes", Json::from(self.ring.len() as u64)),
            ("peers_alive", Json::from(live)),
            ("peers", Json::from(peers)),
            (
                "peek_serves",
                Json::from(self.peek_serves.load(Ordering::Relaxed)),
            ),
            (
                "peek_serve_misses",
                Json::from(self.peek_serve_misses.load(Ordering::Relaxed)),
            ),
            (
                "peek_fetches",
                Json::from(self.peek_fetches.load(Ordering::Relaxed)),
            ),
            (
                "peek_fetch_failures",
                Json::from(self.peek_fetch_failures.load(Ordering::Relaxed)),
            ),
            (
                "redirects_issued",
                Json::from(self.redirects_issued.load(Ordering::Relaxed)),
            ),
            (
                "remote_owned_jobs",
                Json::from(self.remote_owned_jobs.load(Ordering::Relaxed)),
            ),
            (
                "probe_rounds",
                Json::from(self.probe_rounds.load(Ordering::Relaxed)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(self_addr: &str, peers: &[&str]) -> FleetState {
        FleetState::new(FleetConfig::new(
            self_addr.into(),
            peers.iter().map(|s| s.to_string()).collect(),
        ))
    }

    #[test]
    fn every_member_computes_the_same_owner() {
        let a = fleet("127.0.0.1:1", &["127.0.0.1:2", "127.0.0.1:3"]);
        let b = fleet("127.0.0.1:2", &["127.0.0.1:3", "127.0.0.1:1"]);
        for i in 0..200u64 {
            let digest = format!("{:032x}", (i as u128) * 0x9E37_79B9);
            assert_eq!(a.owner_of(&digest), b.owner_of(&digest));
            assert_eq!(
                a.is_owner(&digest),
                a.owner_of(&digest) == "127.0.0.1:1",
                "is_owner consistent with owner_of"
            );
        }
    }

    #[test]
    fn peek_of_self_owned_digest_is_refused_locally() {
        let f = fleet("me:1", &["peer:2"]);
        // Find a digest this node owns; try_peek must not try the wire.
        let mine = (0..500u64)
            .map(|i| format!("{i:032x}"))
            .find(|d| f.is_owner(d))
            .expect("node owns something");
        assert!(f.try_peek(AppId::Wfs, Scale::Tiny, &mine, 0).is_none());
    }

    #[test]
    fn dead_owner_short_circuits_the_fetch() {
        let f = fleet("me:1", &["peer:2"]);
        let theirs = (0..500u64)
            .map(|i| format!("{i:032x}"))
            .find(|d| !f.is_owner(d))
            .expect("peer owns something");
        lock_roster(&f.roster).mark_dead("peer:2");
        assert!(f.try_peek(AppId::Wfs, Scale::Tiny, &theirs, 0).is_none());
        assert_eq!(f.peek_fetch_failures.load(Ordering::Relaxed), 1);
        let j = f.to_json();
        assert_eq!(j.get("peek_fetch_failures").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("peers_alive").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn redirect_hint_requires_a_live_peer() {
        let f = fleet("me:1", &["peer:2"]);
        assert_eq!(f.redirect_hint(), Some("peer:2".into()));
        lock_roster(&f.roster).mark_dead("peer:2");
        assert_eq!(f.redirect_hint(), None);
        assert_eq!(
            f.redirects_issued.load(Ordering::Relaxed),
            1,
            "only issued hints are counted"
        );
    }
}
