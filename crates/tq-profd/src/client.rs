//! The line-oriented client used by `tq submit` and the tests.
//!
//! Resilience lives here, mirrored against the server's overload controls:
//! connects and reads are bounded by [`ClientConfig`] timeouts (a dead
//! server address fails fast instead of hanging forever), and
//! [`Client::submit_with_retry`] resubmits after `busy` responses with
//! capped exponential backoff, jittered by `tq_isa::prng` so a stampede of
//! shed clients does not return in lockstep.

use crate::protocol::{JobSpec, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tq_report::Json;

/// Client-side socket policy.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout per resolved address.
    pub connect_timeout: Duration,
    /// Socket read timeout while waiting for a response line (`None` =
    /// wait forever). Must exceed the server's per-job reply timeout or
    /// slow cold jobs will be misreported as transport errors.
    pub read_timeout: Option<Duration>,
    /// Upper bound on one backoff sleep in [`Client::submit_with_retry`].
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            // The server's default job timeout is 600s; leave headroom so
            // the server's own timeout error reaches us first.
            read_timeout: Some(Duration::from_secs(630)),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// A connected client. One request/response at a time; the connection
/// stays open across requests and transparently reopens inside
/// [`Client::submit_with_retry`] if the server shed it.
pub struct Client {
    addr: String,
    config: ClientConfig,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Jitter source for backoff sleeps; deterministic per process+addr,
    /// decorrelated across client processes.
    rng: tq_isa::prng::Rng,
}

fn open(addr: &str, config: &ClientConfig) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let addrs: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .collect();
    let mut last_err = format!("connect {addr}: no addresses");
    for a in &addrs {
        match TcpStream::connect_timeout(a, config.connect_timeout) {
            Ok(stream) => {
                stream
                    .set_read_timeout(config.read_timeout)
                    .map_err(|e| e.to_string())?;
                let read_half = stream.try_clone().map_err(|e| e.to_string())?;
                return Ok((stream, BufReader::new(read_half)));
            }
            Err(e) => last_err = format!("connect {a}: {e}"),
        }
    }
    Err(last_err)
}

impl Client {
    /// Connect to a running service with default timeouts.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit socket policy.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Client, String> {
        let (writer, reader) = open(addr, &config)?;
        let mut seed = 0xC1E5_7D00u64 ^ u64::from(std::process::id());
        for b in addr.bytes() {
            seed = seed.rotate_left(8) ^ u64::from(b);
        }
        Ok(Client {
            addr: addr.to_string(),
            config,
            writer,
            reader,
            rng: tq_isa::prng::Rng::new(seed),
        })
    }

    /// Drop the current connection and open a fresh one (used after the
    /// server sheds us or the transport dies mid-retry).
    fn reconnect(&mut self) -> Result<(), String> {
        let (writer, reader) = open(&self.addr, &self.config)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Send one request, wait for its response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        let mut line = req.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Response::decode(&reply),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request(&Request::Ping)
    }

    /// Submit a job once; on success returns `(profile, cached)`. A `busy`
    /// shed comes back as a plain `Err` — use [`Client::submit_with_retry`]
    /// to honor the server's backpressure instead.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(Json, bool), String> {
        let resp = self.request(&Request::Submit { spec, attempt: 0 })?;
        Self::parse_submit(resp)
    }

    fn parse_submit(resp: Response) -> Result<(Json, bool), String> {
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        let cached = resp
            .0
            .get("cached")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let profile = resp
            .0
            .get("profile")
            .cloned()
            .ok_or("response missing `profile`")?;
        Ok((profile, cached))
    }

    /// One backoff sleep: exponential in the attempt number, seeded by the
    /// server's `retry_after_ms` hint, capped, and jittered ±50% so shed
    /// clients spread out instead of re-stampeding.
    fn backoff(&mut self, hint_ms: u64, attempt: u32) {
        let base_ms = hint_ms.max(1).saturating_mul(1u64 << attempt.min(16));
        let capped_ms = base_ms.min(self.config.backoff_cap.as_millis() as u64);
        let jittered = (capped_ms as f64 * self.rng.f64_in(0.5, 1.5)).max(1.0);
        std::thread::sleep(Duration::from_millis(jittered as u64));
    }

    /// Submit a job, resubmitting up to `retries` times when the server
    /// sheds us — a `busy` response (queue full, connection limit) or a
    /// dropped connection. Sleeps between attempts per [`Client::backoff`],
    /// honoring the server's `retry_after_ms` hint. Non-busy job errors are
    /// returned immediately: the job failed on its merits and a retry
    /// would fail identically.
    pub fn submit_with_retry(
        &mut self,
        spec: JobSpec,
        retries: u32,
    ) -> Result<(Json, bool), String> {
        let mut attempt: u32 = 0;
        loop {
            let result = self.request(&Request::Submit {
                spec: spec.clone(),
                attempt: u64::from(attempt),
            });
            let (hint_ms, err) = match result {
                Ok(resp) if resp.is_busy() => {
                    let hint = resp.retry_after_ms().unwrap_or(50);
                    (hint, resp.error().unwrap_or("server busy").to_string())
                }
                Ok(resp) => return Self::parse_submit(resp),
                // Transport failure: the server may have shed the whole
                // connection (max-conns reject closes it) or died; only a
                // reconnect can tell.
                Err(e) => (50, e),
            };
            if attempt >= retries {
                return Err(format!("giving up after {attempt} retries: {err}"));
            }
            self.backoff(hint_ms, attempt);
            attempt += 1;
            tq_obs::counter(
                "tq_profd_client_retries_total",
                "Submissions this client retried after busy/shed responses",
            )
            .inc();
            // Best effort: if the old connection is gone, replace it. A
            // failed reconnect burns this attempt and backs off again.
            if self.ping().is_err() {
                let _ = self.reconnect();
            }
        }
    }

    /// Fetch the service stats object.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.request(&Request::Stats)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        resp.0
            .get("stats")
            .cloned()
            .ok_or_else(|| "response missing `stats`".into())
    }

    /// Fetch the Prometheus-style text exposition of the server's
    /// process-wide metrics.
    pub fn metrics(&mut self) -> Result<String, String> {
        let resp = self.request(&Request::Metrics)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        resp.0
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "response missing `metrics`".into())
    }

    /// Request a graceful shutdown.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.request(&Request::Shutdown)
    }
}
