//! The line-oriented client used by `tq submit` and the tests.
//!
//! Resilience lives here, mirrored against the server's overload controls:
//! connects and reads are bounded by [`ClientConfig`] timeouts (a dead
//! server address fails fast instead of hanging forever), and
//! [`Client::submit_with_retry`] resubmits after `busy` responses with
//! capped exponential backoff, jittered by `tq_isa::prng` so a stampede of
//! shed clients does not return in lockstep. Backoff shape is an explicit
//! [`RetryPolicy`] so the fleet bench and operators can tune it.
//!
//! [`FleetClient`] layers routing on top: it computes the same
//! consistent-hash ring as the servers (`tq-fleet`), submits each job to
//! its owner first, honors `redirect_to` hints on `busy`, and fails over
//! around dead or shedding peers.

use crate::apps::{AppId, Scale, Workload};
use crate::protocol::{
    hex_decode, job_id_hex, mint_job_id, JobSpec, Request, Response, PEEK_FRAME_BYTES,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tq_fleet::{Ring, Roster};
use tq_report::Json;

/// Per-process submission sequence, mixed into client-minted job ids so
/// two submissions of the same spec from one process still get distinct
/// distributed-trace ids.
static SUBMISSION_SEQ: AtomicU64 = AtomicU64::new(0);

/// Mint the distributed-trace id for one logical submission. The id is
/// reused verbatim across every retry and failover hop of that
/// submission — that reuse is what lets the fleet trace merger correlate
/// the hops into one track.
fn mint_submission_id(identity: &str) -> u64 {
    let seq = SUBMISSION_SEQ.fetch_add(1, Ordering::Relaxed);
    mint_job_id(
        identity,
        seq ^ u64::from(std::process::id()).rotate_left(32),
    )
}

/// Backoff shape for resubmission after `busy`/shed responses.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Hint to assume when a response carries no `retry_after_ms` (e.g.
    /// the transport died before the server could answer).
    pub fallback_hint_ms: u64,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            fallback_hint_ms: 50,
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// Client-side socket policy.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout per resolved address.
    pub connect_timeout: Duration,
    /// Socket read timeout while waiting for a response line (`None` =
    /// wait forever). Must exceed the server's per-job reply timeout or
    /// slow cold jobs will be misreported as transport errors.
    pub read_timeout: Option<Duration>,
    /// Backoff shape for [`Client::submit_with_retry`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            // The server's default job timeout is 600s; leave headroom so
            // the server's own timeout error reaches us first.
            read_timeout: Some(Duration::from_secs(630)),
            retry: RetryPolicy::default(),
        }
    }
}

/// What a retried submission actually did: how many attempts ran, which
/// peers saw one, and the last backpressure hint. `tq submit` prints this
/// on final failure so an operator sees *where* the job died, not just
/// that it did.
#[derive(Clone, Debug, Default)]
pub struct RetryTrail {
    /// The distributed-trace id minted for this submission (0 before the
    /// first attempt). Every retry and failover hop carries the same id.
    pub job_id: u64,
    /// Total submit attempts made (including the first).
    pub attempts: u32,
    /// Wall-clock milliseconds each attempt spent (request send to
    /// response/error), in attempt order.
    pub attempt_ms: Vec<u64>,
    /// Distinct peer addresses tried, in first-contact order.
    pub peers_tried: Vec<String>,
    /// The last `retry_after_ms` hint a server sent (None: no server ever
    /// answered with one).
    pub last_retry_after_ms: Option<u64>,
    /// The last per-attempt error before success or giving up.
    pub last_error: Option<String>,
}

impl RetryTrail {
    fn note_peer(&mut self, addr: &str) {
        if self.peers_tried.last().map(String::as_str) != Some(addr)
            && !self.peers_tried.iter().any(|p| p == addr)
        {
            self.peers_tried.push(addr.to_string());
        }
    }

    fn note_elapsed(&mut self, started: Instant) {
        self.attempt_ms.push(started.elapsed().as_millis() as u64);
    }

    /// One-line rendering for diagnostics (`attempts=3 peers=a,b last_hint=50ms`).
    pub fn describe(&self) -> String {
        let hint = match self.last_retry_after_ms {
            Some(ms) => format!("{ms}ms"),
            None => "none".into(),
        };
        format!(
            "job_id={} attempts={} peers_tried={} last_retry_after_ms={}",
            job_id_hex(self.job_id),
            self.attempts,
            if self.peers_tried.is_empty() {
                "none".into()
            } else {
                self.peers_tried.join(",")
            },
            hint
        )
    }

    /// Structured rendering: the JSON object `tq submit` logs at debug
    /// level after every submission, successful or not.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("job_id", Json::from(job_id_hex(self.job_id))),
            ("attempts", Json::from(u64::from(self.attempts))),
            (
                "attempt_ms",
                Json::from(
                    self.attempt_ms
                        .iter()
                        .map(|&ms| Json::from(ms))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "peers_tried",
                Json::from(
                    self.peers_tried
                        .iter()
                        .map(|p| Json::from(p.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        if let Some(ms) = self.last_retry_after_ms {
            obj.set("last_retry_after_ms", Json::from(ms));
        }
        if let Some(err) = &self.last_error {
            obj.set("last_error", Json::from(err.as_str()));
        }
        obj
    }
}

/// One peer's span ring as exported by its `trace` endpoint, bracketed by
/// the client-side round-trip timestamps needed to place the peer's
/// clock: `offset ≈ server_now_ns − (t0_ns + t1_ns) / 2` (NTP's
/// single-sample estimator; see `crate::telemetry`).
#[derive(Clone, Debug)]
pub struct TraceExport {
    /// Client clock (`tq_obs::now_ns`) just before the request was sent.
    pub t0_ns: u64,
    /// Client clock just after the response arrived.
    pub t1_ns: u64,
    /// The peer's own `tq_obs::now_ns` when it answered.
    pub server_now_ns: u64,
    /// The peer's retired+live spans as a Chrome trace-event JSON document.
    pub doc: String,
}

/// A connected client. One request/response at a time; the connection
/// stays open across requests and transparently reopens inside
/// [`Client::submit_with_retry`] if the server shed it.
pub struct Client {
    addr: String,
    config: ClientConfig,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Jitter source for backoff sleeps; deterministic per process+addr,
    /// decorrelated across client processes.
    rng: tq_isa::prng::Rng,
}

fn open(addr: &str, config: &ClientConfig) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let addrs: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .collect();
    let mut last_err = format!("connect {addr}: no addresses");
    for a in &addrs {
        match TcpStream::connect_timeout(a, config.connect_timeout) {
            Ok(stream) => {
                stream
                    .set_read_timeout(config.read_timeout)
                    .map_err(|e| e.to_string())?;
                let read_half = stream.try_clone().map_err(|e| e.to_string())?;
                return Ok((stream, BufReader::new(read_half)));
            }
            Err(e) => last_err = format!("connect {a}: {e}"),
        }
    }
    Err(last_err)
}

impl Client {
    /// Connect to a running service with default timeouts.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit socket policy.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Client, String> {
        let (writer, reader) = open(addr, &config)?;
        let mut seed = 0xC1E5_7D00u64 ^ u64::from(std::process::id());
        for b in addr.bytes() {
            seed = seed.rotate_left(8) ^ u64::from(b);
        }
        Ok(Client {
            addr: addr.to_string(),
            config,
            writer,
            reader,
            rng: tq_isa::prng::Rng::new(seed),
        })
    }

    /// Drop the current connection and open a fresh one (used after the
    /// server sheds us or the transport dies mid-retry).
    fn reconnect(&mut self) -> Result<(), String> {
        let (writer, reader) = open(&self.addr, &self.config)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Send one request, wait for its response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        let mut line = req.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Response::decode(&reply),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request(&Request::Ping)
    }

    /// Submit a job once; on success returns `(profile, cached)`. A `busy`
    /// shed comes back as a plain `Err` — use [`Client::submit_with_retry`]
    /// to honor the server's backpressure instead.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(Json, bool), String> {
        let job_id = mint_submission_id(&format!("{spec:?}"));
        let resp = self.request(&Request::Submit {
            spec,
            attempt: 0,
            job_id,
        })?;
        Self::parse_submit(resp)
    }

    fn parse_submit(resp: Response) -> Result<(Json, bool), String> {
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        let cached = resp
            .0
            .get("cached")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let profile = resp
            .0
            .get("profile")
            .cloned()
            .ok_or("response missing `profile`")?;
        Ok((profile, cached))
    }

    /// The address this client is currently connected to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One backoff sleep: exponential in the attempt number, seeded by the
    /// server's `retry_after_ms` hint, capped per [`RetryPolicy`], and
    /// jittered ±50% so shed clients spread out instead of re-stampeding.
    fn backoff(&mut self, hint_ms: u64, attempt: u32) {
        backoff_sleep(&self.config.retry, &mut self.rng, hint_ms, attempt);
    }

    /// Submit a job, resubmitting up to `retries` times when the server
    /// sheds us — a `busy` response (queue full, connection limit) or a
    /// dropped connection. Sleeps between attempts per the backoff policy,
    /// honoring the server's `retry_after_ms` hint. Non-busy job errors are
    /// returned immediately: the job failed on its merits and a retry
    /// would fail identically.
    pub fn submit_with_retry(
        &mut self,
        spec: JobSpec,
        retries: u32,
    ) -> Result<(Json, bool), String> {
        self.submit_with_retry_trail(spec, retries, &mut RetryTrail::default())
    }

    /// [`Client::submit_with_retry`], recording every attempt into `trail`.
    /// A `busy` response carrying a `redirect_to` hint moves the retry to
    /// the hinted peer (the server names its least-loaded live fleet
    /// sibling); if the hinted peer is unreachable the client stays put.
    pub fn submit_with_retry_trail(
        &mut self,
        spec: JobSpec,
        retries: u32,
        trail: &mut RetryTrail,
    ) -> Result<(Json, bool), String> {
        if trail.job_id == 0 {
            trail.job_id = mint_submission_id(&format!("{spec:?}"));
        }
        let mut attempt: u32 = 0;
        loop {
            trail.attempts += 1;
            trail.note_peer(&self.addr);
            let started = Instant::now();
            let result = self.request(&Request::Submit {
                spec: spec.clone(),
                attempt: u64::from(attempt),
                job_id: trail.job_id,
            });
            trail.note_elapsed(started);
            let (hint_ms, redirect, err) = match result {
                Ok(resp) if resp.is_busy() => {
                    let hint = resp
                        .retry_after_ms()
                        .unwrap_or(self.config.retry.fallback_hint_ms);
                    trail.last_retry_after_ms = Some(hint);
                    let redirect = resp.redirect_to().map(str::to_string);
                    (
                        hint,
                        redirect,
                        resp.error().unwrap_or("server busy").to_string(),
                    )
                }
                Ok(resp) => {
                    let parsed = Self::parse_submit(resp);
                    if let Err(e) = &parsed {
                        trail.last_error = Some(e.clone());
                    }
                    return parsed;
                }
                // Transport failure: the server may have shed the whole
                // connection (max-conns reject closes it) or died; only a
                // reconnect can tell.
                Err(e) => (self.config.retry.fallback_hint_ms, None, e),
            };
            trail.last_error = Some(err.clone());
            if attempt >= retries {
                return Err(format!("giving up after {attempt} retries: {err}"));
            }
            self.backoff(hint_ms, attempt);
            attempt += 1;
            tq_obs::counter(
                "tq_profd_client_retries_total",
                "Submissions this client retried after busy/shed responses",
            )
            .inc();
            if let Some(peer) = redirect.filter(|p| *p != self.addr) {
                // Follow the server's hint to its less-loaded sibling; if
                // the sibling is unreachable, fall back to where we were.
                let old = std::mem::replace(&mut self.addr, peer);
                if self.reconnect().is_err() {
                    self.addr = old;
                    let _ = self.reconnect();
                }
                continue;
            }
            // Best effort: if the old connection is gone, replace it. A
            // failed reconnect burns this attempt and backs off again.
            if self.ping().is_err() {
                let _ = self.reconnect();
            }
        }
    }

    /// Fetch the service stats object.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.request(&Request::Stats)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        resp.0
            .get("stats")
            .cloned()
            .ok_or_else(|| "response missing `stats`".into())
    }

    /// Fetch the Prometheus-style text exposition of the server's
    /// process-wide metrics.
    pub fn metrics(&mut self) -> Result<String, String> {
        let resp = self.request(&Request::Metrics)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        resp.0
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "response missing `metrics`".into())
    }

    /// Request a graceful shutdown.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.request(&Request::Shutdown)
    }

    /// Export the peer's span ring as a Chrome trace document, timing the
    /// round-trip on the local `tq_obs` clock so the caller can estimate
    /// the peer's clock offset (see [`TraceExport`]).
    pub fn trace_export(&mut self) -> Result<TraceExport, String> {
        let t0_ns = tq_obs::now_ns();
        let resp = self.request(&Request::Trace)?;
        let t1_ns = tq_obs::now_ns();
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        let server_now_ns = resp
            .0
            .get("now_ns")
            .and_then(Json::as_u64)
            .ok_or("trace response missing `now_ns`")?;
        let doc = resp
            .0
            .get("trace")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or("trace response missing `trace`")?;
        Ok(TraceExport {
            t0_ns,
            t1_ns,
            server_now_ns,
            doc,
        })
    }

    /// Fetch the peer's recent structured-log tail. Returns the peer's
    /// active level name and the JSON-lines records, oldest first.
    pub fn logs_tail(&mut self) -> Result<(String, Vec<String>), String> {
        let resp = self.request(&Request::Logs)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        let level = resp
            .0
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let records = resp
            .0
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("logs response missing `records`")?
            .iter()
            .filter_map(|r| r.as_str().map(str::to_string))
            .collect();
        Ok((level, records))
    }

    /// Fetch the encoded capture for `digest` via a chunked `peek`:
    /// a header line declaring `frames`/`total_bytes`, then that many
    /// bounded frame lines ([`PEEK_FRAME_BYTES`] raw bytes each). A legacy
    /// server that predates the chunked form ignores the flag and answers
    /// with a single `capture_hex` line, which is accepted too, so mixed
    /// fleets keep working during a rolling upgrade.
    ///
    /// `Ok(None)` is a clean miss (the peer does not have the capture);
    /// `Err` is a transport or protocol failure.
    pub fn peek_fetch(
        &mut self,
        app: AppId,
        scale: Scale,
        digest: &str,
    ) -> Result<Option<Vec<u8>>, String> {
        self.peek_fetch_tagged(app, scale, digest, 0)
    }

    /// [`Client::peek_fetch`] carrying the distributed-trace `job_id` of
    /// the submission that triggered the fetch, so the serving peer's
    /// `peek-serve` span joins the same trace (0 = untagged).
    pub fn peek_fetch_tagged(
        &mut self,
        app: AppId,
        scale: Scale,
        digest: &str,
        job_id: u64,
    ) -> Result<Option<Vec<u8>>, String> {
        let header = self.request(&Request::Peek {
            app,
            scale,
            digest: digest.to_string(),
            chunked: true,
            job_id,
        })?;
        if !header.is_ok() {
            return Err(header.error().unwrap_or("unknown server error").to_string());
        }
        if header.0.get("found").and_then(Json::as_bool) != Some(true) {
            return Ok(None);
        }
        // The server echoes the digest it answered for; a mismatch means
        // the response belongs to some other request and is discarded.
        if header.0.get("digest").and_then(Json::as_str) != Some(digest) {
            return Err("peek response digest mismatch".into());
        }
        if let Some(hex) = header.0.get("capture_hex").and_then(Json::as_str) {
            // Legacy single-line answer from a pre-chunking server.
            return hex_decode(hex)
                .map(Some)
                .ok_or_else(|| "peek capture_hex is not valid hex".into());
        }
        if header.0.get("chunked").and_then(Json::as_bool) != Some(true) {
            return Err("peek response carries neither capture_hex nor chunked frames".into());
        }
        let frames = header
            .0
            .get("frames")
            .and_then(Json::as_u64)
            .ok_or("chunked peek header missing `frames`")? as usize;
        let total = header
            .0
            .get("total_bytes")
            .and_then(Json::as_u64)
            .ok_or("chunked peek header missing `total_bytes`")? as usize;
        // The declared sizes must be mutually consistent before any
        // allocation happens — a lying header cannot make us reserve more
        // than the frames it is about to send could ever fill.
        if total.div_ceil(PEEK_FRAME_BYTES).max(1) != frames.max(1) {
            return Err(format!(
                "chunked peek header inconsistent: {frames} frames for {total} bytes"
            ));
        }
        let mut bytes = Vec::with_capacity(total);
        for i in 0..frames {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err(format!("server closed mid-peek at frame {i}/{frames}")),
                Ok(_) => {}
                Err(e) => return Err(format!("recv frame {i}: {e}")),
            }
            let frame = Json::parse(line.trim()).map_err(|e| format!("frame {i}: {e}"))?;
            if frame.get("frame").and_then(Json::as_u64) != Some(i as u64) {
                return Err(format!("peek frames out of order at frame {i}"));
            }
            let hex = frame
                .get("data_hex")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("frame {i} missing `data_hex`"))?;
            let data = hex_decode(hex).ok_or_else(|| format!("frame {i} is not valid hex"))?;
            if data.len() > PEEK_FRAME_BYTES || bytes.len() + data.len() > total {
                return Err(format!("frame {i} overruns the declared transfer size"));
            }
            bytes.extend_from_slice(&data);
        }
        if bytes.len() != total {
            return Err(format!(
                "chunked peek delivered {} bytes, header declared {total}",
                bytes.len()
            ));
        }
        Ok(Some(bytes))
    }
}

fn backoff_sleep(policy: &RetryPolicy, rng: &mut tq_isa::prng::Rng, hint_ms: u64, attempt: u32) {
    let base_ms = hint_ms.max(1).saturating_mul(1u64 << attempt.min(16));
    let capped_ms = base_ms.min(policy.backoff_cap.as_millis() as u64);
    let jittered = (capped_ms as f64 * rng.f64_in(0.5, 1.5)).max(1.0);
    std::thread::sleep(Duration::from_millis(jittered as u64));
}

/// Errors that justify trying the next ring node instead of giving up:
/// the transport died, the server announced it is shutting down and shed
/// the job, or a bounded retry run on one peer was exhausted.
fn is_failover_error(err: &str) -> bool {
    err.starts_with("shed:")
        || err.contains(": shed:")
        || err.contains("server is shutting down")
        || err.starts_with("send:")
        || err.starts_with("recv:")
        || err.starts_with("connect ")
        || err.starts_with("resolve ")
        || err.contains("server closed the connection")
}

/// A ring-aware client for a tq-profd fleet.
///
/// Builds the same consistent-hash ring as the servers (`tq-fleet` is
/// deterministic on the sorted member list, so client and servers agree
/// without any coordination), routes each job to the owner of its content
/// digest first, and walks the ring on failure: dead peers are remembered
/// in a local [`Roster`] and skipped, shedding peers ("shed: …" errors,
/// which the server sends when shutting down) trigger immediate failover,
/// and `busy` responses burn a bounded number of backoff retries before
/// moving on. Digest computation builds the workload once per
/// `(app, scale)` and is memoized.
pub struct FleetClient {
    ring: Ring,
    roster: Roster,
    config: ClientConfig,
    conns: HashMap<String, Client>,
    digests: HashMap<(AppId, Scale), String>,
    rng: tq_isa::prng::Rng,
}

impl FleetClient {
    /// A fleet client over the given member addresses (order-insensitive),
    /// with default socket policy.
    pub fn new(members: Vec<String>) -> FleetClient {
        FleetClient::with_config(members, ClientConfig::default())
    }

    /// A fleet client with explicit socket/backoff policy.
    pub fn with_config(members: Vec<String>, config: ClientConfig) -> FleetClient {
        let mut seed = 0xF1EE_7C11u64 ^ u64::from(std::process::id());
        for m in &members {
            for b in m.bytes() {
                seed = seed.rotate_left(7) ^ u64::from(b);
            }
        }
        FleetClient {
            ring: Ring::new(members.clone()),
            roster: Roster::new(members),
            config,
            conns: HashMap::new(),
            digests: HashMap::new(),
            rng: tq_isa::prng::Rng::new(seed),
        }
    }

    /// The ring owner for a job's content digest.
    pub fn owner_of(&mut self, spec: &JobSpec) -> Option<String> {
        let digest = self.digest_for(spec.app, spec.scale);
        self.ring.owner_of(&digest).map(str::to_string)
    }

    fn digest_for(&mut self, app: AppId, scale: Scale) -> String {
        self.digests
            .entry((app, scale))
            .or_insert_with(|| Workload::build(app, scale).digest())
            .clone()
    }

    fn connection(&mut self, addr: &str) -> Result<&mut Client, String> {
        if !self.conns.contains_key(addr) {
            let client = Client::connect_with(addr, self.config.clone())?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    /// Submit a job to the fleet. Returns `(profile, cached, served_by)`;
    /// `retries` bounds the *total* extra attempts across all peers.
    pub fn submit(&mut self, spec: JobSpec, retries: u32) -> Result<(Json, bool, String), String> {
        self.submit_with_trail(spec, retries, &mut RetryTrail::default())
    }

    /// [`FleetClient::submit`], recording the attempt trail.
    pub fn submit_with_trail(
        &mut self,
        spec: JobSpec,
        retries: u32,
        trail: &mut RetryTrail,
    ) -> Result<(Json, bool, String), String> {
        let digest = self.digest_for(spec.app, spec.scale);
        if trail.job_id == 0 {
            trail.job_id = mint_submission_id(&digest);
        }
        let route: Vec<String> = self
            .ring
            .route(&digest)
            .into_iter()
            .map(str::to_string)
            .collect();
        if route.is_empty() {
            return Err("fleet has no members".into());
        }
        let budget = retries.saturating_add(1); // total attempts allowed
        let mut spent: u32 = 0;
        let mut last_err = String::from("no live fleet member reachable");
        // Walk the ring repeatedly until the attempt budget runs out; a
        // full pass with every peer dead resets the roster so a recovered
        // peer gets another look instead of permanent exile.
        while spent < budget {
            let mut touched_any = false;
            for addr in &route {
                if spent >= budget {
                    break;
                }
                if !self.roster.is_live(addr) {
                    continue;
                }
                touched_any = true;
                let connect_started = Instant::now();
                let client = match self.connection(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        spent += 1;
                        trail.attempts += 1;
                        trail.note_peer(addr);
                        trail.note_elapsed(connect_started);
                        trail.last_error = Some(e.clone());
                        last_err = format!("{addr}: {e}");
                        self.roster.mark_dead(addr);
                        continue;
                    }
                };
                let started = Instant::now();
                let result = client.request(&Request::Submit {
                    spec: spec.clone(),
                    attempt: u64::from(spent),
                    job_id: trail.job_id,
                });
                spent += 1;
                trail.attempts += 1;
                trail.note_peer(addr);
                trail.note_elapsed(started);
                match result {
                    Ok(resp) if resp.is_busy() => {
                        let hint = resp
                            .retry_after_ms()
                            .unwrap_or(self.config.retry.fallback_hint_ms);
                        trail.last_retry_after_ms = Some(hint);
                        last_err = format!("{addr}: {}", resp.error().unwrap_or("server busy"));
                        trail.last_error = Some(last_err.clone());
                        self.roster.record_success(addr, u64::MAX, u64::MAX);
                        let next = resp.redirect_to().map(str::to_string);
                        backoff_sleep(&self.config.retry, &mut self.rng, hint, spent.min(8));
                        // A redirect hint names a less-loaded sibling: jump
                        // there next instead of continuing in ring order —
                        // but only if it is one of ours and alive.
                        if let Some(hinted) = next {
                            if hinted != *addr
                                && route.contains(&hinted)
                                && self.roster.is_live(&hinted)
                                && spent < budget
                            {
                                if let Ok((json, cached)) =
                                    self.try_once(&hinted, &spec, spent, trail)
                                {
                                    return Ok((json, cached, hinted));
                                }
                                spent += 1;
                            }
                        }
                    }
                    Ok(resp) => match Client::parse_submit(resp) {
                        Ok((json, cached)) => {
                            self.roster.record_success(addr, 0, 0);
                            return Ok((json, cached, addr.clone()));
                        }
                        Err(e) if is_failover_error(&e) => {
                            last_err = format!("{addr}: {e}");
                            trail.last_error = Some(last_err.clone());
                            self.roster.record_failure(addr);
                            self.conns.remove(addr);
                        }
                        // The job failed on its merits; every peer would
                        // fail it identically.
                        Err(e) => {
                            trail.last_error = Some(e.clone());
                            return Err(format!("{addr}: {e}"));
                        }
                    },
                    Err(e) => {
                        last_err = format!("{addr}: {e}");
                        trail.last_error = Some(last_err.clone());
                        self.roster.mark_dead(addr);
                        self.conns.remove(addr);
                    }
                }
            }
            if !touched_any {
                // Every member looked dead: forget the verdicts and retry
                // from scratch (the alternative is failing without ever
                // re-checking a peer that may have restarted).
                self.roster = Roster::new(route.clone());
                spent += 1;
            }
        }
        Err(format!("giving up after {spent} attempts: {last_err}"))
    }

    /// One single-shot submit against a specific peer (used to chase a
    /// redirect hint). Failures are recorded but never fatal — the caller
    /// resumes its ring walk.
    fn try_once(
        &mut self,
        addr: &str,
        spec: &JobSpec,
        attempt: u32,
        trail: &mut RetryTrail,
    ) -> Result<(Json, bool), String> {
        trail.attempts += 1;
        trail.note_peer(addr);
        let connect_started = Instant::now();
        let client = match self.connection(addr) {
            Ok(c) => c,
            Err(e) => {
                trail.note_elapsed(connect_started);
                self.roster.mark_dead(addr);
                return Err(e);
            }
        };
        let started = Instant::now();
        let result = client.request(&Request::Submit {
            spec: spec.clone(),
            attempt: u64::from(attempt),
            job_id: trail.job_id,
        });
        trail.note_elapsed(started);
        let resp = match result {
            Ok(r) => r,
            Err(e) => {
                self.roster.mark_dead(addr);
                self.conns.remove(addr);
                return Err(e);
            }
        };
        if resp.is_busy() {
            trail.last_retry_after_ms = resp.retry_after_ms().or(trail.last_retry_after_ms);
            return Err(resp.error().unwrap_or("server busy").to_string());
        }
        Client::parse_submit(resp)
    }
}
