//! The line-oriented client used by `tq submit` and the tests.

use crate::protocol::{JobSpec, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tq_report::Json;

/// A connected client. One request/response at a time; the connection
/// stays open across requests.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running service.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(read_half),
        })
    }

    /// Send one request, wait for its response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        let mut line = req.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Response::decode(&reply),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request(&Request::Ping)
    }

    /// Submit a job; on success returns `(profile, cached)`.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(Json, bool), String> {
        let resp = self.request(&Request::Submit(spec))?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        let cached = resp
            .0
            .get("cached")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let profile = resp
            .0
            .get("profile")
            .cloned()
            .ok_or("response missing `profile`")?;
        Ok((profile, cached))
    }

    /// Fetch the service stats object.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.request(&Request::Stats)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        resp.0
            .get("stats")
            .cloned()
            .ok_or_else(|| "response missing `stats`".into())
    }

    /// Fetch the Prometheus-style text exposition of the server's
    /// process-wide metrics.
    pub fn metrics(&mut self) -> Result<String, String> {
        let resp = self.request(&Request::Metrics)?;
        if !resp.is_ok() {
            return Err(resp.error().unwrap_or("unknown server error").to_string());
        }
        resp.0
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "response missing `metrics`".into())
    }

    /// Request a graceful shutdown.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.request(&Request::Shutdown)
    }
}
