//! The TCP daemon: acceptor, bounded job queue, replay worker pool.
//!
//! One thread per client connection parses JSON-line requests; `submit`
//! requests go through a bounded queue to N worker threads. Workers answer
//! in three tiers, cheapest first:
//!
//! 1. **result memo** — this exact [`JobSpec`] ran before: return the
//!    memoized profile (byte-identical, no replay);
//! 2. **capture cache** — the workload's capture exists (memory or disk):
//!    replay it under the requested tool;
//! 3. **cold** — run the VM once under the trace recorder (single-flight
//!    per content address), then replay.
//!
//! **Overload policy** (see `docs/OPERATIONS.md` and DESIGN.md §10): the
//! server degrades by answering fast, never by queueing unboundedly.
//! A full job queue gets an immediate `busy` + `retry_after_ms` response
//! instead of blocking the submitter; a connection over `max_conns` is
//! told `busy` and closed before a thread is spawned for it; an idle or
//! stalled connection is closed after `read_timeout`; a worker that panics
//! is caught and answers with an error instead of shrinking the pool.
//!
//! Shutdown is graceful for *running* work only: jobs still waiting in the
//! queue are shed with an error reply (counted in `sheds`), in-flight jobs
//! finish and reply, workers exit, the acceptor is woken by a
//! self-connection and joins.
//!
//! Every degradation path above can be rehearsed: `tq-faults` hooks sit at
//! the accept, read, worker, cache-IO and replay points and are free when
//! no fault plan is installed.

use crate::apps::{AppId, Scale, Workload};
use crate::cache::{CaptureSource, CaptureStore};
use crate::exec::{record_capture_opt, run_tool};
use crate::fleet::{FleetConfig, FleetState};
use crate::protocol::{
    hex_encode, job_id_hex, mint_job_id, JobSpec, Request, Response, PEEK_FRAME_BYTES,
    PEEK_SINGLE_LINE_MAX,
};
use crate::stats::ServiceStats;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tq_report::Json;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Replay worker threads.
    pub workers: usize,
    /// State directory for the persistent capture tier (`None` = memory
    /// only).
    pub state_dir: Option<PathBuf>,
    /// In-memory capture budget in bytes.
    pub cache_bytes: u64,
    /// Bounded job-queue depth; a submission against a full queue is
    /// answered immediately with `busy` + `retry_after_ms`, never queued
    /// or blocked.
    pub queue_depth: usize,
    /// Per-job reply timeout. The job keeps running and still populates
    /// the caches; only the waiting client gets an error.
    pub job_timeout: Duration,
    /// Instruction budget for capture runs (`None` = unbounded).
    pub capture_fuel: Option<u64>,
    /// Interpreter optimisation level for capture runs. Every level
    /// produces byte-identical captures (and so identical memoized
    /// results); the long-lived daemon defaults to the fastest.
    pub vm_opt: tq_vm::VmOpt,
    /// Maximum concurrently served connections. One over the limit is
    /// answered with a single `busy` line and closed before a connection
    /// thread exists for it.
    pub max_conns: usize,
    /// Per-connection read/idle timeout: a client that sends nothing for
    /// this long is disconnected (`None` = never). Bounds both idle
    /// connections and read-stalled requests.
    pub read_timeout: Option<Duration>,
    /// Advertised addresses of the *other* fleet members. Empty = this
    /// node serves alone (no ring, no probing, no redirects).
    pub peers: Vec<String>,
    /// This node's own advertised address — its name on the consistent-
    /// hash ring, which must match what peers list in their `--peers`.
    /// `None` uses the bound listen address (fine when `addr` is concrete;
    /// required when binding port 0 behind a fixed roster).
    pub advertise: Option<String>,
    /// Pause between fleet health-probe rounds.
    pub probe_interval: Duration,
    /// Slow-job threshold in milliseconds: a job whose end-to-end latency
    /// reaches it gets a structured `slow_job` warn record with its phase
    /// breakdown (capture vs replay) and counts in `tq_job_slow_total`.
    /// 0 disables the log.
    pub slow_job_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7471".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            state_dir: None,
            cache_bytes: 256 << 20,
            queue_depth: 64,
            job_timeout: Duration::from_secs(600),
            capture_fuel: None,
            vm_opt: tq_vm::VmOpt::Trace,
            max_conns: 256,
            read_timeout: Some(Duration::from_secs(300)),
            peers: Vec::new(),
            advertise: None,
            probe_interval: Duration::from_millis(500),
            slow_job_ms: 30_000,
        }
    }
}

/// `target` field of this crate's structured log records.
const LOG: &str = "tq-profd";

/// Longest accepted request line (a valid request is well under 1 KiB; a
/// client streaming an unbounded "line" must not grow server memory).
const MAX_REQUEST_LINE: u64 = 64 * 1024;

/// One queued job: the spec plus where to send the answer. The reply is
/// the rendered-deterministic profile and whether it was a memo hit.
struct Job {
    spec: JobSpec,
    /// Distributed-trace correlation id (never 0 once enqueued: the
    /// server mints one for legacy clients that sent none).
    job_id: u64,
    reply: mpsc::Sender<Result<(Json, bool), String>>,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    config: ServerConfig,
    started: Instant,
    store: CaptureStore,
    stats: Mutex<ServiceStats>,
    /// `(app, scale)` → content address, so warm jobs skip rebuilding the
    /// workload entirely.
    digests: Mutex<HashMap<(AppId, Scale), String>>,
    /// JobSpec → rendered profile (tier 1).
    results: Mutex<HashMap<JobSpec, Arc<Json>>>,
    queue: Mutex<Queue>,
    /// Signalled when a job arrives or the queue closes.
    not_empty: Condvar,
    /// Workers currently executing a job; the gap to `config.workers` is
    /// idle capacity a running job may borrow as replay shards.
    busy: AtomicUsize,
    /// Connections currently being served (the acceptor rejects above
    /// `config.max_conns`).
    conns: AtomicUsize,
    /// Fleet membership, routing and peeking (None: serving alone).
    fleet: Option<FleetState>,
    shutdown: AtomicBool,
}

/// Why a submit was not enqueued.
enum PushError {
    /// The queue is at `queue_depth`: shed now, client retries later.
    Busy {
        /// Suggested client wait before resubmitting.
        retry_after_ms: u64,
    },
    /// Shutdown has begun; the queue accepts nothing more.
    Closed,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// tq-obs handles for the job lifecycle. These mirror (not replace) the
/// mutex-guarded [`ServiceStats`]: stats are the service's own snapshot
/// protocol, the tq-obs registry feeds the cross-crate `metrics`
/// exposition alongside replay/tool metrics from other crates.
mod obs {
    use std::sync::OnceLock;
    use tq_obs::{Counter, Gauge, Histogram};

    macro_rules! handle {
        ($fn_name:ident, $kind:ident, $ctor:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static $kind {
                static H: OnceLock<$kind> = OnceLock::new();
                H.get_or_init(|| tq_obs::$ctor($name, $help))
            }
        };
    }

    handle!(
        queue_depth,
        Gauge,
        gauge,
        "tq_profd_queue_depth",
        "Jobs currently waiting in the bounded queue"
    );
    handle!(
        uptime_seconds,
        Gauge,
        gauge,
        "tq_profd_uptime_seconds",
        "Seconds since the service started (set at each metrics scrape)"
    );
    handle!(
        jobs_submitted,
        Counter,
        counter,
        "tq_profd_jobs_submitted_total",
        "Valid submit requests received"
    );
    handle!(
        jobs_completed,
        Counter,
        counter,
        "tq_profd_jobs_completed_total",
        "Jobs that produced a profile"
    );
    handle!(
        jobs_failed,
        Counter,
        counter,
        "tq_profd_jobs_failed_total",
        "Jobs that errored"
    );
    handle!(
        result_hits,
        Counter,
        counter,
        "tq_profd_result_hits_total",
        "Result-memo hits (byte-identical replies, no replay)"
    );
    handle!(
        capture_hits,
        Counter,
        counter,
        "tq_profd_capture_hits_total",
        "Captures served from the cache (memory or disk tier)"
    );
    handle!(
        capture_misses,
        Counter,
        counter,
        "tq_profd_capture_misses_total",
        "Cold captures recorded by running the VM"
    );
    handle!(
        job_micros,
        Histogram,
        histogram,
        "tq_profd_job_micros",
        "End-to-end job latency in microseconds"
    );
    handle!(
        sheds,
        Counter,
        counter,
        "tq_profd_sheds_total",
        "Queued jobs shed with an error reply at shutdown"
    );
    handle!(
        rejects,
        Counter,
        counter,
        "tq_profd_rejects_total",
        "Submits answered busy (queue full) plus connections turned away at the limit"
    );
    handle!(
        retries_observed,
        Counter,
        counter,
        "tq_profd_retries_observed_total",
        "Submits that arrived flagged as client retries (attempt > 0)"
    );
    handle!(
        faults_injected,
        Gauge,
        gauge,
        "tq_profd_faults_injected",
        "Faults injected by the active tq-faults plan (set at each metrics scrape)"
    );
    handle!(
        jobs_tagged,
        Counter,
        counter,
        "tq_job_tagged_total",
        "Submits that arrived carrying a client-minted distributed-trace job_id"
    );
    handle!(
        jobs_minted,
        Counter,
        counter,
        "tq_job_minted_total",
        "job_ids minted server-side for legacy submits that carried none"
    );
    handle!(
        jobs_slow,
        Counter,
        counter,
        "tq_job_slow_total",
        "Jobs over the slow-job latency threshold (each also logs a slow_job record)"
    );
}

impl Shared {
    /// The server's `retry_after_ms` hint on a shed: roughly how long the
    /// backlog ahead of this client needs to drain, from the measured mean
    /// job latency (100ms before any job has finished), clamped to
    /// [25ms, 5s].
    fn retry_after_ms(&self, queue_len: usize) -> u64 {
        let mean_ms = lock(&self.stats)
            .mean_job_micros()
            .map(|us| us / 1_000.0)
            .unwrap_or(100.0);
        let workers = self.config.workers.max(1) as f64;
        ((queue_len + 1) as f64 * mean_ms / workers).clamp(25.0, 5_000.0) as u64
    }

    /// Enqueue a job without blocking: a full queue is the client's
    /// problem (it gets `busy` + a retry hint), never the acceptor's or
    /// the connection thread's.
    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut q = lock(&self.queue);
        if q.closed {
            return Err(PushError::Closed);
        }
        if q.jobs.len() >= self.config.queue_depth {
            let len = q.jobs.len();
            drop(q);
            return Err(PushError::Busy {
                retry_after_ms: self.retry_after_ms(len),
            });
        }
        q.jobs.push_back(job);
        obs::queue_depth().set(q.jobs.len() as i64);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the next job; `None` means the queue closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(job) = q.jobs.pop_front() {
                obs::queue_depth().set(q.jobs.len() as i64);
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Begin shutdown: close the queue and shed every job still waiting in
    /// it (oldest first — they have waited longest and would be last to
    /// run). Running jobs are left to finish and reply normally.
    fn close_queue(&self) {
        let shed: Vec<Job> = {
            let mut q = lock(&self.queue);
            q.closed = true;
            q.jobs.drain(..).collect()
        };
        self.not_empty.notify_all();
        obs::queue_depth().set(0);
        if !shed.is_empty() {
            lock(&self.stats).sheds += shed.len() as u64;
            obs::sheds().add(shed.len() as u64);
            tq_obs::log::warn(LOG, "queue_shed", &[("jobs", shed.len().into())]);
            for job in shed {
                let _ = job.reply.send(Err(
                    "shed: server is shutting down; resubmit elsewhere".into()
                ));
            }
        }
    }

    /// The content address for `(app, scale)`, building the workload at
    /// most once per pair per process.
    fn digest_for(&self, app: AppId, scale: Scale) -> (String, Option<Workload>) {
        if let Some(d) = lock(&self.digests).get(&(app, scale)) {
            return (d.clone(), None);
        }
        let w = Workload::build(app, scale);
        let d = w.digest();
        lock(&self.digests).insert((app, scale), d.clone());
        (d, Some(w))
    }

    /// Execute one job through the three answer tiers. Every span opened
    /// on this thread (and the log records below) carries `job_id`, so
    /// the job's work joins its distributed trace.
    fn execute(&self, spec: &JobSpec, job_id: u64) -> Result<(Json, bool), String> {
        let _job = tq_obs::with_job(job_id);
        let _span = tq_obs::span_named(format!("job-{}", spec.tool.as_str()), "profd");
        // Fault rehearsal: a worker may be told to die here; worker_loop
        // contains the unwind and answers with an error.
        tq_faults::panic_if(tq_faults::FaultPoint::WorkerPanic);
        let t0 = Instant::now();
        if let Some(hit) = lock(&self.results).get(spec) {
            let json = (**hit).clone();
            let micros = t0.elapsed().as_micros() as u64;
            let mut st = lock(&self.stats);
            st.result_hits += 1;
            st.jobs_completed += 1;
            st.record_latency(spec.tool, micros);
            drop(st);
            obs::result_hits().inc();
            obs::jobs_completed().inc();
            obs::job_micros().observe(micros);
            tq_obs::log::debug(
                LOG,
                "job_done",
                &[
                    ("job_id", job_id_hex(job_id).into()),
                    ("tool", spec.tool.as_str().into()),
                    ("source", "memo".into()),
                    ("micros", micros.into()),
                ],
            );
            return Ok((json, true));
        }

        let (digest, mut prebuilt) = self.digest_for(spec.app, spec.scale);
        if let Some(f) = &self.fleet {
            if !f.is_owner(&digest) {
                f.note_remote_owned_job();
            }
        }
        let fuel = self.config.capture_fuel;
        let vm_opt = self.config.vm_opt;
        let mut capture_stats = None;
        let mut peeked = false;
        let capture_t0 = Instant::now();
        let (trace, source) = self.store.get_or_record(&digest, || {
            // Fleet cache sharding: a digest another node owns is fetched
            // from that node (which records it on demand — keeping one
            // recording per digest fleet-wide) instead of re-recorded
            // here. A dead or failing owner falls through to a local
            // recording; routing is an optimisation, never a dependency.
            if let Some(f) = &self.fleet {
                if !f.is_owner(&digest) {
                    if let Some(t) = f.try_peek(spec.app, spec.scale, &digest, job_id) {
                        peeked = true;
                        return Ok(t);
                    }
                }
            }
            let w = prebuilt
                .take()
                .unwrap_or_else(|| Workload::build(spec.app, spec.scale));
            let (trace, stats) = record_capture_opt(&w, fuel, vm_opt)?;
            capture_stats = Some(stats);
            Ok(trace)
        })?;
        let capture_micros = capture_t0.elapsed().as_micros() as u64;
        {
            let mut st = lock(&self.stats);
            match source {
                CaptureSource::Memory => st.capture_mem_hits += 1,
                CaptureSource::Disk => st.capture_disk_hits += 1,
                // A peeked capture entered the cache without a VM run; the
                // fleet counters (`peek_fetches`) account for it instead.
                CaptureSource::Recorded if peeked => {}
                CaptureSource::Recorded => st.vm_runs += 1,
            }
            // Interpreter-optimisation counters from the capture run (the
            // service's only VM executions; Prometheus gets the same
            // numbers process-wide via the `tq_vm_*` metrics).
            if let Some(s) = capture_stats {
                st.vm_blocks_fused += s.blocks_fused;
                st.vm_traces_recorded += s.traces_recorded;
                st.vm_trace_side_exits += s.trace_side_exits;
            }
        }
        match source {
            CaptureSource::Memory | CaptureSource::Disk => obs::capture_hits().inc(),
            CaptureSource::Recorded if peeked => {}
            CaptureSource::Recorded => obs::capture_misses().inc(),
        }

        // Borrow idle workers as replay shards: a lone job on a quiet
        // server fans out across the whole pool, a full queue degrades to
        // one shard per worker. `busy` includes this worker, hence `+ 1`.
        let busy = self.busy.load(Ordering::SeqCst).max(1);
        let n_jobs = self.config.workers.max(1).saturating_sub(busy) + 1;
        let replay_t0 = Instant::now();
        let json = run_tool(spec, &trace, n_jobs)?;
        let replay_micros = replay_t0.elapsed().as_micros() as u64;
        lock(&self.results).insert(spec.clone(), Arc::new(json.clone()));
        let micros = t0.elapsed().as_micros() as u64;
        let mut st = lock(&self.stats);
        st.jobs_completed += 1;
        st.bytes_replayed += trace.events.len() as u64;
        st.events_replayed += trace.n_events;
        if spec.instr != "full" {
            // Reduced-mode replays run through the sequential gate
            // emulator whatever `n_jobs` says, so they are counted here
            // and never as sharded.
            st.reduced_jobs += 1;
        } else if n_jobs > 1 {
            st.sharded_replays += 1;
        }
        st.record_latency(spec.tool, micros);
        let source_str = match source {
            _ if peeked => "peek",
            CaptureSource::Memory => "memory",
            CaptureSource::Disk => "disk",
            CaptureSource::Recorded => "recorded",
        };
        let slow = self.config.slow_job_ms > 0 && micros >= self.config.slow_job_ms * 1_000;
        if slow {
            st.slow_jobs += 1;
        }
        drop(st);
        obs::jobs_completed().inc();
        obs::job_micros().observe(micros);
        tq_obs::log::debug(
            LOG,
            "job_done",
            &[
                ("job_id", job_id_hex(job_id).into()),
                ("tool", spec.tool.as_str().into()),
                ("app", spec.app.as_str().into()),
                ("scale", spec.scale.as_str().into()),
                ("source", source_str.into()),
                ("micros", micros.into()),
            ],
        );
        if slow {
            // The slow-job record: the span breakdown an operator needs
            // to tell "cold capture" from "big replay" without fetching
            // the whole trace.
            obs::jobs_slow().inc();
            tq_obs::log::warn(
                LOG,
                "slow_job",
                &[
                    ("job_id", job_id_hex(job_id).into()),
                    ("tool", spec.tool.as_str().into()),
                    ("app", spec.app.as_str().into()),
                    ("scale", spec.scale.as_str().into()),
                    ("source", source_str.into()),
                    ("threshold_ms", self.config.slow_job_ms.into()),
                    ("total_micros", micros.into()),
                    ("capture_micros", capture_micros.into()),
                    ("replay_micros", replay_micros.into()),
                    ("shards", n_jobs.into()),
                ],
            );
        }
        Ok((json, false))
    }

    /// The encoded capture bytes a `peek` for `digest` should serve, or
    /// `Ok(None)` for a clean miss, or `Err(response)` for a refusal. The
    /// rules keep recording work where the ring says it belongs:
    ///
    /// * this node **owns** the digest → serve from cache, recording on
    ///   demand if cold (that recording is the fleet's one recording for
    ///   the digest, and is bookkept exactly like a cold submit);
    /// * this node does **not** own it → answer only if the capture
    ///   happens to be cached; never spend a VM run on another node's
    ///   keyspace.
    ///
    /// When the disk tier holds the capture, its bytes are served as-is
    /// (one `fs::read`, no decode, no re-encode) — the cheap path for
    /// TQTRACE3-sized captures.
    fn peek_capture_bytes(
        &self,
        app: AppId,
        scale: Scale,
        digest: &str,
    ) -> Result<Option<Vec<u8>>, Response> {
        // Validate the address: a peek answered for the wrong digest
        // would poison the requester's cache.
        let (expected, mut prebuilt) = self.digest_for(app, scale);
        if expected != digest {
            return Err(Response::err(format!(
                "peek digest mismatch: {}/{} addresses {expected}",
                app.as_str(),
                scale.as_str()
            )));
        }
        if let Some(bytes) = self.store.peek_bytes(digest) {
            lock(&self.stats).capture_disk_hits += 1;
            obs::capture_hits().inc();
            return Ok(Some(bytes));
        }
        let owned = self
            .fleet
            .as_ref()
            .map(|f| f.is_owner(digest))
            .unwrap_or(true);
        let trace = if owned {
            let fuel = self.config.capture_fuel;
            let vm_opt = self.config.vm_opt;
            let mut capture_stats = None;
            let recorded = self.store.get_or_record(digest, || {
                let w = prebuilt
                    .take()
                    .unwrap_or_else(|| Workload::build(app, scale));
                let (trace, stats) = record_capture_opt(&w, fuel, vm_opt)?;
                capture_stats = Some(stats);
                Ok(trace)
            });
            match recorded {
                Ok((trace, source)) => {
                    let mut st = lock(&self.stats);
                    match source {
                        CaptureSource::Memory => st.capture_mem_hits += 1,
                        CaptureSource::Disk => st.capture_disk_hits += 1,
                        CaptureSource::Recorded => st.vm_runs += 1,
                    }
                    if let Some(s) = capture_stats {
                        st.vm_blocks_fused += s.blocks_fused;
                        st.vm_traces_recorded += s.traces_recorded;
                        st.vm_trace_side_exits += s.trace_side_exits;
                    }
                    drop(st);
                    match source {
                        CaptureSource::Memory | CaptureSource::Disk => obs::capture_hits().inc(),
                        CaptureSource::Recorded => obs::capture_misses().inc(),
                    }
                    Some(trace)
                }
                Err(e) => return Err(Response::err(format!("peek recording failed: {e}"))),
            }
        } else {
            self.store.get_if_cached(digest).map(|(t, _)| t)
        };
        match trace {
            Some(trace) => {
                let mut bytes = Vec::new();
                trace
                    .save(&mut bytes)
                    .map_err(|e| Response::err(format!("peek serialization failed: {e}")))?;
                Ok(Some(bytes))
            }
            None => Ok(None),
        }
    }

    /// Answer a legacy single-line `peek`. Captures over
    /// [`PEEK_SINGLE_LINE_MAX`] are refused with a clean error naming the
    /// chunked form — hex-doubling a huge capture into one response line
    /// would cost 2× its size on each side and an unbounded line on the
    /// wire.
    fn handle_peek(&self, app: AppId, scale: Scale, digest: String, job_id: u64) -> Response {
        let _job = tq_obs::with_job(job_id);
        let _span = tq_obs::span("peek-serve", "profd");
        match self.peek_capture_bytes(app, scale, &digest) {
            Err(resp) => resp,
            Ok(None) => {
                if let Some(f) = &self.fleet {
                    f.note_peek_missed();
                }
                Response::ok([("found", Json::from(false)), ("digest", Json::from(digest))])
            }
            Ok(Some(bytes)) => {
                if bytes.len() > PEEK_SINGLE_LINE_MAX {
                    return Response::err(format!(
                        "capture is {} bytes, over the {PEEK_SINGLE_LINE_MAX}-byte \
                         single-line peek cap; request a chunked peek",
                        bytes.len()
                    ));
                }
                if let Some(f) = &self.fleet {
                    f.note_peek_served();
                }
                Response::ok([
                    ("found", Json::from(true)),
                    ("digest", Json::from(digest)),
                    ("capture_hex", Json::from(hex_encode(&bytes))),
                ])
            }
        }
    }

    /// Answer a chunked `peek` directly on the connection: a header line
    /// declaring `frames` and `total_bytes`, then that many frame lines of
    /// at most [`PEEK_FRAME_BYTES`] raw bytes each. Only one frame's hex
    /// exists at a time on this side, so serving a capture costs its byte
    /// size, not 3× it. An IO error aborts the connection (the client
    /// counts the failed fetch and falls back to recording locally).
    fn stream_peek(
        &self,
        writer: &mut impl Write,
        app: AppId,
        scale: Scale,
        digest: String,
        job_id: u64,
    ) -> std::io::Result<()> {
        let _job = tq_obs::with_job(job_id);
        let _span = tq_obs::span("peek-serve", "profd");
        let (header, bytes) = match self.peek_capture_bytes(app, scale, &digest) {
            Err(resp) => (resp, None),
            Ok(None) => {
                if let Some(f) = &self.fleet {
                    f.note_peek_missed();
                }
                (
                    Response::ok([("found", Json::from(false)), ("digest", Json::from(digest))]),
                    None,
                )
            }
            Ok(Some(bytes)) => {
                if let Some(f) = &self.fleet {
                    f.note_peek_served();
                }
                let header = Response::ok([
                    ("found", Json::from(true)),
                    ("digest", Json::from(digest)),
                    ("chunked", Json::from(true)),
                    (
                        "frames",
                        Json::from(bytes.len().div_ceil(PEEK_FRAME_BYTES) as u64),
                    ),
                    ("total_bytes", Json::from(bytes.len() as u64)),
                ]);
                (header, Some(bytes))
            }
        };
        let mut line = header.encode();
        line.push('\n');
        writer.write_all(line.as_bytes())?;
        if let Some(bytes) = bytes {
            for (i, frame) in bytes.chunks(PEEK_FRAME_BYTES).enumerate() {
                let mut line = Json::obj([
                    ("frame", Json::from(i as u64)),
                    ("data_hex", Json::from(hex_encode(frame))),
                ])
                .render();
                line.push('\n');
                writer.write_all(line.as_bytes())?;
            }
        }
        writer.flush()
    }

    fn stats_json(&self) -> Json {
        let uptime = self.started.elapsed().as_micros() as u64;
        let mut j = lock(&self.stats).to_json(uptime);
        j.set("workers", Json::from(self.config.workers as u64));
        j.set(
            "busy_workers",
            Json::from(self.busy.load(Ordering::SeqCst) as u64),
        );
        j.set("queue_depth", Json::from(self.config.queue_depth as u64));
        j.set("queue_len", Json::from(lock(&self.queue).jobs.len() as u64));
        j.set("max_conns", Json::from(self.config.max_conns as u64));
        j.set(
            "open_conns",
            Json::from(self.conns.load(Ordering::SeqCst) as u64),
        );
        j.set("faults_injected", Json::from(tq_faults::injected()));
        j.set(
            "captures_in_memory",
            Json::from(self.store.mem_entries() as u64),
        );
        j.set(
            "capture_bytes_in_memory",
            Json::from(self.store.mem_bytes()),
        );
        j.set("vm_opt", Json::from(self.config.vm_opt.to_string()));
        j.set(
            "role",
            Json::from(if self.fleet.is_some() {
                "fleet"
            } else {
                "single"
            }),
        );
        if let Some(f) = &self.fleet {
            j.set("fleet", f.to_json());
        }
        j
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.pop() {
        shared.busy.fetch_add(1, Ordering::SeqCst);
        // A panicking job (tool bug, injected worker_panic fault) must not
        // shrink the worker pool or leave its submitter waiting: contain
        // the unwind and answer with an error. Shared state stays sound —
        // every lock in this crate recovers from poisoning.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.execute(&job.spec, job.job_id)
        }))
        .unwrap_or_else(|p| {
            Err(format!(
                "worker panicked while running the job (worker recovered): {}",
                crate::panic_message(p.as_ref())
            ))
        });
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        if let Err(e) = &result {
            lock(&shared.stats).jobs_failed += 1;
            obs::jobs_failed().inc();
            tq_obs::log::warn(
                LOG,
                "job_failed",
                &[
                    ("job_id", job_id_hex(job.job_id).into()),
                    ("tool", job.spec.tool.as_str().into()),
                    ("error", e.as_str().into()),
                ],
            );
        }
        // A submitter that timed out dropped its receiver; the work is
        // done and cached either way.
        let _span = tq_obs::span("respond", "profd");
        let _ = job.reply.send(result);
    }
}

fn handle_request(shared: &Arc<Shared>, addr: SocketAddr, req: Request) -> (Response, bool) {
    match req {
        Request::Ping => (
            // Load rides along so one cheap ping doubles as a fleet
            // health-and-load probe.
            Response::ok([
                ("pong", Json::from(true)),
                (
                    "queue_len",
                    Json::from(lock(&shared.queue).jobs.len() as u64),
                ),
                (
                    "busy_workers",
                    Json::from(shared.busy.load(Ordering::SeqCst) as u64),
                ),
            ]),
            false,
        ),
        Request::Stats => (Response::ok([("stats", shared.stats_json())]), false),
        // `chunked: true` never reaches here — connection_loop intercepts it
        // and streams the frames straight onto the socket.
        Request::Peek {
            app,
            scale,
            digest,
            chunked: _,
            job_id,
        } => (shared.handle_peek(app, scale, digest, job_id), false),
        Request::Route { spec, job_id } => {
            let _job = tq_obs::with_job(job_id);
            let _span = tq_obs::span("route", "profd");
            let (digest, _) = shared.digest_for(spec.app, spec.scale);
            let (owner, self_name) = match &shared.fleet {
                Some(f) => (f.owner_of(&digest).to_string(), f.self_addr().to_string()),
                None => (addr.to_string(), addr.to_string()),
            };
            let is_owner = owner == self_name;
            (
                Response::ok([
                    ("digest", Json::from(digest)),
                    ("owner", Json::from(owner)),
                    ("is_owner", Json::from(is_owner)),
                ]),
                false,
            )
        }
        Request::Trace => (
            // Non-destructive span export plus this process's clock so the
            // requester can estimate the offset (`now_ns` is the server's
            // time at answer-build, the NTP-style midpoint of the
            // requester's round-trip).
            Response::ok([
                ("now_ns", Json::from(tq_obs::now_ns())),
                ("trace", Json::from(tq_obs::snapshot_chrome_trace())),
            ]),
            false,
        ),
        Request::Logs => {
            let records: Vec<Json> = tq_obs::log::tail().into_iter().map(Json::from).collect();
            (
                Response::ok([
                    ("level", Json::from(tq_obs::log::level_name())),
                    ("records", Json::from(records)),
                ]),
                false,
            )
        }
        Request::Metrics => {
            obs::uptime_seconds().set(shared.started.elapsed().as_secs() as i64);
            obs::faults_injected().set(tq_faults::injected() as i64);
            (
                Response::ok([("metrics", Json::from(tq_obs::prometheus_text()))]),
                false,
            )
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.close_queue();
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(addr);
            (Response::ok([("stopping", Json::from(true))]), true)
        }
        Request::Submit {
            spec,
            attempt,
            job_id,
        } => {
            // Every job is traced under a nonzero id: a tagged submit
            // keeps the client's (so its spans correlate fleet-wide), a
            // legacy one gets a server-minted id so local spans still
            // group.
            let job_id = if job_id != 0 {
                obs::jobs_tagged().inc();
                job_id
            } else {
                obs::jobs_minted().inc();
                mint_job_id(&format!("{spec:?}"), attempt)
            };
            let _job = tq_obs::with_job(job_id);
            {
                let mut st = lock(&shared.stats);
                st.jobs_submitted += 1;
                if attempt > 0 {
                    st.retries_observed += 1;
                }
            }
            obs::jobs_submitted().inc();
            if attempt > 0 {
                obs::retries_observed().inc();
            }
            let (tx, rx) = mpsc::channel();
            let pushed = {
                let _span = tq_obs::span("enqueue", "profd");
                shared.try_push(Job {
                    spec,
                    job_id,
                    reply: tx,
                })
            };
            match pushed {
                Ok(()) => {}
                Err(PushError::Busy { retry_after_ms }) => {
                    lock(&shared.stats).rejects += 1;
                    obs::rejects().inc();
                    let mut resp =
                        Response::busy("queue full: job shed, retry later", retry_after_ms);
                    // In a fleet, tell the shed client *where* to go: the
                    // least-loaded live sibling by the latest probes.
                    if let Some(hint) = shared.fleet.as_ref().and_then(FleetState::redirect_hint) {
                        resp = resp.with_redirect(&hint);
                    }
                    tq_obs::log::warn(
                        LOG,
                        "overload_shed",
                        &[
                            ("job_id", job_id_hex(job_id).into()),
                            ("retry_after_ms", retry_after_ms.into()),
                            ("redirect_to", resp.redirect_to().unwrap_or_default().into()),
                        ],
                    );
                    return (resp, false);
                }
                Err(PushError::Closed) => {
                    lock(&shared.stats).jobs_failed += 1;
                    obs::jobs_failed().inc();
                    tq_obs::log::warn(
                        LOG,
                        "shutdown_shed",
                        &[("job_id", job_id_hex(job_id).into())],
                    );
                    return (Response::err("server is shutting down"), false);
                }
            }
            match rx.recv_timeout(shared.config.job_timeout) {
                Ok(Ok((profile, cached))) => (
                    Response::ok([("cached", Json::from(cached)), ("profile", profile)]),
                    false,
                ),
                Ok(Err(e)) => (Response::err(e), false),
                Err(_) => (
                    Response::err(format!(
                        "job timed out after {:?} (it continues and will warm the cache)",
                        shared.config.job_timeout
                    )),
                    false,
                ),
            }
        }
    }
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn connection_loop(shared: Arc<Shared>, addr: SocketAddr, stream: TcpStream) {
    let _guard = ConnGuard(Arc::clone(&shared));
    // The read timeout doubles as the idle timeout: a connection that
    // sends nothing (or stalls mid-line) for this long is closed. Reads
    // and writes share the socket, so only SO_RCVTIMEO is set — replies
    // are never timed out from our side.
    if stream.set_read_timeout(shared.config.read_timeout).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Cap the request line: a valid request is well under 1 KiB, and
        // `read_line` on the raw reader would otherwise buffer an
        // unbounded "line" from a hostile or broken client.
        let mut limited = reader.take(MAX_REQUEST_LINE + 1);
        let n = limited.read_line(&mut line);
        reader = limited.into_inner();
        match n {
            Ok(0) | Err(_) => return, // client hung up, stalled past the timeout, or sent non-UTF-8
            Ok(_) => {}
        }
        if line.len() as u64 > MAX_REQUEST_LINE {
            // Oversized: the tail of the line is still in flight, so the
            // stream cannot be resynchronized — answer and hang up.
            let mut out =
                Response::err(format!("request line exceeds {MAX_REQUEST_LINE} bytes")).encode();
            out.push('\n');
            let _ = writer
                .write_all(out.as_bytes())
                .and_then(|_| writer.flush());
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        // Fault rehearsal: a stalled client link delays the request here,
        // after the bytes arrived and before any work happens.
        if tq_faults::sleep_if(tq_faults::FaultPoint::ReadStall) {
            tq_obs::log::warn(
                LOG,
                "fault_fired",
                &[("point", tq_faults::FaultPoint::ReadStall.key().into())],
            );
        }
        let (response, stop) = match Request::decode(&line) {
            // Chunked peeks write a multi-line response (header + frames)
            // straight onto the socket instead of the one-line path below.
            Ok(Request::Peek {
                app,
                scale,
                digest,
                chunked: true,
                job_id,
            }) => {
                if shared
                    .stream_peek(&mut writer, app, scale, digest, job_id)
                    .is_err()
                {
                    return;
                }
                continue;
            }
            Ok(req) => handle_request(&shared, addr, req),
            Err(e) => (Response::err(format!("bad request: {e}")), false),
        };
        let mut out = response.encode();
        out.push('\n');
        if writer
            .write_all(out.as_bytes())
            .and_then(|_| writer.flush())
            .is_err()
        {
            return;
        }
        if stop {
            return;
        }
    }
}

/// A running profiling service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start: acceptor plus `config.workers` replay workers, and
    /// (when `config.peers` is non-empty) the fleet prober.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let workers_n = config.workers.max(1);
        // The ring name defaults to the *bound* address so `--addr` with a
        // concrete port needs no extra flag; port-0 binds behind a fixed
        // roster must advertise explicitly.
        let fleet = if config.peers.is_empty() {
            None
        } else {
            let self_addr = config.advertise.clone().unwrap_or_else(|| addr.to_string());
            let mut fc = FleetConfig::new(self_addr, config.peers.clone());
            fc.probe_interval = config.probe_interval;
            Some(FleetState::new(fc))
        };
        let shared = Arc::new(Shared {
            store: CaptureStore::new(config.state_dir.clone(), config.cache_bytes),
            config,
            started: Instant::now(),
            stats: Mutex::new(ServiceStats::default()),
            digests: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            queue: Mutex::new(Queue::default()),
            not_empty: Condvar::new(),
            busy: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            fleet,
            shutdown: AtomicBool::new(false),
        });

        let prober = match &shared.fleet {
            None => None,
            Some(f) => {
                let interval = f.probe_interval();
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("tq-profd-prober".into())
                        .spawn(move || {
                            tq_obs::set_thread_name("tq-profd-prober");
                            while !shared.shutdown.load(Ordering::SeqCst) {
                                if let Some(f) = &shared.fleet {
                                    f.probe_once();
                                }
                                // Sleep in small slices so shutdown is not
                                // held up by a long probe interval.
                                let deadline = Instant::now() + interval;
                                while Instant::now() < deadline
                                    && !shared.shutdown.load(Ordering::SeqCst)
                                {
                                    std::thread::sleep(Duration::from_millis(25));
                                }
                            }
                        })
                        .map_err(|e| e.to_string())?,
                )
            }
        };

        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tq-profd-worker-{i}"))
                    .spawn(move || {
                        tq_obs::set_thread_name(format!("tq-profd-worker-{i}"));
                        worker_loop(&shared)
                    })
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tq-profd-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(mut stream) = stream else { continue };
                        // Fault rehearsal: a slow accept path delays every
                        // connection behind this one (the backlog is the
                        // kernel's listen queue).
                        if tq_faults::sleep_if(tq_faults::FaultPoint::AcceptDelay) {
                            tq_obs::log::warn(
                                LOG,
                                "fault_fired",
                                &[("point", tq_faults::FaultPoint::AcceptDelay.key().into())],
                            );
                        }
                        // Connection limit: answer `busy` inline and close
                        // before a thread exists for this client. The
                        // counter is reserved here and released by the
                        // connection thread's ConnGuard.
                        let occupied = shared.conns.fetch_add(1, Ordering::SeqCst);
                        if occupied >= shared.config.max_conns {
                            shared.conns.fetch_sub(1, Ordering::SeqCst);
                            lock(&shared.stats).rejects += 1;
                            obs::rejects().inc();
                            tq_obs::log::warn(
                                LOG,
                                "conn_limit",
                                &[("max_conns", shared.config.max_conns.into())],
                            );
                            let mut resp = Response::busy(
                                format!(
                                    "connection limit reached ({} open)",
                                    shared.config.max_conns
                                ),
                                shared.retry_after_ms(lock(&shared.queue).jobs.len()),
                            );
                            if let Some(hint) =
                                shared.fleet.as_ref().and_then(FleetState::redirect_hint)
                            {
                                resp = resp.with_redirect(&hint);
                            }
                            let mut out = resp.encode();
                            out.push('\n');
                            let _ = stream
                                .write_all(out.as_bytes())
                                .and_then(|_| stream.flush());
                            continue; // drop closes the rejected stream
                        }
                        let conn_shared = Arc::clone(&shared);
                        if std::thread::Builder::new()
                            .name("tq-profd-conn".into())
                            .spawn(move || connection_loop(conn_shared, addr, stream))
                            .is_err()
                        {
                            // Spawn failed: nothing will run ConnGuard.
                            shared.conns.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                })
                .map_err(|e| e.to_string())?
        };

        Ok(Server {
            addr,
            shared,
            acceptor,
            workers,
            prober,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown request has been accepted.
    pub fn is_stopping(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the server to stop (same path as a client `shutdown` request).
    pub fn request_stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.close_queue();
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until the acceptor and all workers have exited (after a
    /// shutdown request drained the queue).
    pub fn join(self) -> Result<(), String> {
        self.acceptor
            .join()
            .map_err(|_| "acceptor panicked".to_string())?;
        for w in self.workers {
            w.join().map_err(|_| "worker panicked".to_string())?;
        }
        if let Some(p) = self.prober {
            p.join().map_err(|_| "prober panicked".to_string())?;
        }
        Ok(())
    }
}
