//! The wire protocol: JSON lines over TCP.
//!
//! One request per line, one response line back, connection stays open for
//! further requests. The codec is the workspace's hand-rolled
//! [`tq_report::Json`]; objects keep insertion order, so a response built
//! twice from the same data is byte-identical — the property the capture
//! cache's "warm responses equal cold responses" guarantee rests on.

use crate::apps::{AppId, Scale};
use tq_report::Json;
use tq_tquad::LibPolicy;

/// Which profiling tool a job runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ToolId {
    /// tQUAD time-sliced bandwidth profile (full per-kernel series).
    Tquad,
    /// QUAD producer→consumer bindings and UnMA counts.
    Quad,
    /// Sampling flat profile.
    Gprof,
    /// Phase detection over a tQUAD profile.
    Phases,
}

impl ToolId {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ToolId::Tquad => "tquad",
            ToolId::Quad => "quad",
            ToolId::Gprof => "gprof",
            ToolId::Phases => "phases",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<ToolId, String> {
        match s {
            "tquad" => Ok(ToolId::Tquad),
            "quad" => Ok(ToolId::Quad),
            "gprof" => Ok(ToolId::Gprof),
            "phases" => Ok(ToolId::Phases),
            other => Err(format!("unknown tool `{other}` (tquad|quad|gprof|phases)")),
        }
    }

    /// Default slice/sample interval when the job does not set one.
    pub fn default_interval(self) -> u64 {
        match self {
            ToolId::Tquad => 20_000,
            ToolId::Quad => 0, // interval-free
            ToolId::Gprof => 5_000,
            ToolId::Phases => 2_000,
        }
    }
}

/// Stack-accesses setting (the paper's include/exclude local stack option).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum StackPolicy {
    /// Count stack-area accesses (paper default).
    #[default]
    Include,
    /// Drop them.
    Exclude,
}

impl StackPolicy {
    /// True if stack accesses count.
    pub fn include(self) -> bool {
        matches!(self, StackPolicy::Include)
    }

    fn as_str(self) -> &'static str {
        match self {
            StackPolicy::Include => "include",
            StackPolicy::Exclude => "exclude",
        }
    }

    fn parse(s: &str) -> Result<StackPolicy, String> {
        match s {
            "include" => Ok(StackPolicy::Include),
            "exclude" => Ok(StackPolicy::Exclude),
            other => Err(format!("unknown stack policy `{other}` (include|exclude)")),
        }
    }
}

/// A profiling job: workload plus tool configuration. Doubles as the
/// result-memo key (hash/eq over every field that affects the output).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct JobSpec {
    /// Which application to profile.
    pub app: AppId,
    /// Workload scale.
    pub scale: Scale,
    /// Which tool to run.
    pub tool: ToolId,
    /// Slice/sample interval in instructions (tool-dependent default).
    pub interval: u64,
    /// Stack-accesses policy.
    pub stack: StackPolicy,
    /// Library-routine policy.
    pub lib_policy: LibPolicy,
    /// Instrumentation mode spec (`"full"`, `"sample:8"`, …) in the
    /// canonical [`tq_vm::InstrMode`] spelling. Part of the job identity:
    /// a sampled profile is a different answer than a full one, so it
    /// memoises separately. The underlying *capture* stays shared — the
    /// server always records full and emulates reduced modes at replay.
    pub instr: String,
}

impl JobSpec {
    /// A job with tool defaults for everything but app/scale/tool.
    pub fn new(app: AppId, scale: Scale, tool: ToolId) -> JobSpec {
        JobSpec {
            app,
            scale,
            tool,
            interval: tool.default_interval(),
            stack: StackPolicy::default(),
            lib_policy: LibPolicy::AttributeToCaller,
            instr: "full".to_string(),
        }
    }

    fn libs_str(&self) -> &'static str {
        match self.lib_policy {
            LibPolicy::Track => "track",
            LibPolicy::AttributeToCaller => "attribute",
            LibPolicy::Drop => "drop",
        }
    }

    fn to_json(&self) -> Json {
        self.to_json_typed("submit")
    }

    /// The spec's wire object under an explicit request `type` (`submit`
    /// and `route` carry identical job fields).
    fn to_json_typed(&self, ty: &'static str) -> Json {
        let mut obj = Json::obj([
            ("type", Json::from(ty)),
            ("app", Json::from(self.app.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("tool", Json::from(self.tool.as_str())),
            ("interval", Json::from(self.interval)),
            ("stack", Json::from(self.stack.as_str())),
            ("libs", Json::from(self.libs_str())),
        ]);
        // Only written for reduced modes, so the wire form servers that
        // predate the field see is unchanged.
        if self.instr != "full" {
            obj.set("instr", Json::from(self.instr.as_str()));
        }
        obj
    }

    fn from_json(v: &Json) -> Result<JobSpec, String> {
        let app = AppId::parse(v.get("app").and_then(Json::as_str).unwrap_or("wfs"))?;
        let scale = Scale::parse(v.get("scale").and_then(Json::as_str).unwrap_or("tiny"))?;
        let tool = ToolId::parse(
            v.get("tool")
                .and_then(Json::as_str)
                .ok_or("submit requires `tool`")?,
        )?;
        let interval = match v.get("interval") {
            Some(j) => j
                .as_u64()
                .ok_or("`interval` must be a non-negative integer")?,
            None => tool.default_interval(),
        };
        let stack = StackPolicy::parse(v.get("stack").and_then(Json::as_str).unwrap_or("include"))?;
        let lib_policy = match v.get("libs").and_then(Json::as_str).unwrap_or("attribute") {
            "track" => LibPolicy::Track,
            "attribute" => LibPolicy::AttributeToCaller,
            "drop" => LibPolicy::Drop,
            other => {
                return Err(format!(
                    "unknown lib policy `{other}` (track|attribute|drop)"
                ))
            }
        };
        // Canonicalise through the parser: the spec is part of the job's
        // memo identity, so `sample:8` and any equivalent spelling must
        // land on the same cache entry (and garbage must fail here, not
        // deep inside a worker).
        let instr = match v.get("instr").and_then(Json::as_str) {
            Some(spec) => tq_vm::InstrMode::parse(spec)?.to_string(),
            None => "full".to_string(),
        };
        Ok(JobSpec {
            app,
            scale,
            tool,
            interval,
            stack,
            lib_policy,
            instr,
        })
    }
}

/// A client request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Run (or fetch) a profiling job.
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Retry generation: 0 for a first submission, `n` for the n-th
        /// resubmission after a `busy` response. Not part of the job
        /// identity — the server only counts it (`retries_observed`), so
        /// operators can see clients backing off in `stats`.
        attempt: u64,
        /// Distributed-trace correlation id minted by the client
        /// ([`mint_job_id`]); 0 when absent (legacy clients), in which
        /// case the server mints one so its own spans are still tagged.
        /// One id persists across every retry and peer hop of a logical
        /// submission — the key the fleet trace merger joins on.
        job_id: u64,
    },
    /// Where does this job live? Answers with the fleet owner of the
    /// job's content digest (and the digest itself) without running
    /// anything — clients and scripts use it to route submissions.
    Route {
        /// The job whose owner is asked for.
        spec: JobSpec,
        /// Trace correlation id, so even the routing hop of a traced
        /// submission shows up under the job's key (0 = untagged).
        job_id: u64,
    },
    /// Fleet-internal capture transfer: fetch the capture for a content
    /// digest from the node that owns it, so a non-owner can serve a
    /// routed job by replaying the owner's recording instead of making
    /// its own. Carries `(app, scale)` so an owner that has not recorded
    /// the capture yet can do so on demand (that recording is the *one*
    /// per fleet).
    Peek {
        /// Which application the digest belongs to.
        app: AppId,
        /// Workload scale.
        scale: Scale,
        /// The content address being fetched; the receiver verifies it
        /// matches its own digest for `(app, scale)`.
        digest: String,
        /// Ask for the length-framed multi-line transfer instead of one
        /// giant `capture_hex` line: a header carrying `frames` and
        /// `total_bytes`, then that many bounded frame lines (at most
        /// [`PEEK_FRAME_BYTES`] raw bytes each). Large captures (TQTRACE3
        /// files of real workloads) must use this — the single-line form
        /// is capped at [`PEEK_SINGLE_LINE_MAX`] and refused above it. A
        /// server that predates the field ignores it and answers with the
        /// legacy single line, which chunked-aware clients still accept.
        chunked: bool,
        /// Trace correlation id of the job this fetch serves (0 =
        /// untagged), so the owner's peek-side spans join the same
        /// distributed trace as the non-owner's replay.
        job_id: u64,
    },
    /// Service statistics snapshot.
    Stats,
    /// Prometheus-style text exposition of the process-wide tq-obs
    /// metrics (counters, gauges, histograms).
    Metrics,
    /// Export the peer's span rings as a Chrome-trace JSON document
    /// (non-destructive snapshot), together with the peer's `now_ns`
    /// clock reading so the requester can estimate the clock offset and
    /// merge rings from several peers onto one timeline.
    Trace,
    /// Export the tail of the peer's structured event log (recent
    /// JSON-line records) and its current `TQ_LOG` filter.
    Logs,
    /// Graceful shutdown: drain the queue, stop workers, exit.
    Shutdown,
}

impl Request {
    /// Encode as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => Json::obj([("type", Json::from("ping"))]).render(),
            Request::Stats => Json::obj([("type", Json::from("stats"))]).render(),
            Request::Metrics => Json::obj([("type", Json::from("metrics"))]).render(),
            Request::Trace => Json::obj([("type", Json::from("trace"))]).render(),
            Request::Logs => Json::obj([("type", Json::from("logs"))]).render(),
            Request::Shutdown => Json::obj([("type", Json::from("shutdown"))]).render(),
            Request::Submit {
                spec,
                attempt,
                job_id,
            } => {
                let mut obj = spec.to_json();
                if *attempt > 0 {
                    obj.set("attempt", Json::from(*attempt));
                }
                set_job_id(&mut obj, *job_id);
                obj.render()
            }
            Request::Route { spec, job_id } => {
                let mut obj = spec.to_json_typed("route");
                set_job_id(&mut obj, *job_id);
                obj.render()
            }
            Request::Peek {
                app,
                scale,
                digest,
                chunked,
                job_id,
            } => {
                let mut obj = Json::obj([
                    ("type", Json::from("peek")),
                    ("app", Json::from(app.as_str())),
                    ("scale", Json::from(scale.as_str())),
                    ("digest", Json::from(digest.as_str())),
                ]);
                // Only written when set, so the wire form old servers see
                // is unchanged.
                if *chunked {
                    obj.set("chunked", Json::from(true));
                }
                set_job_id(&mut obj, *job_id);
                obj.render()
            }
        }
    }

    /// Decode one line.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        match v.get("type").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping),
            Some("stats") => Ok(Request::Stats),
            Some("metrics") => Ok(Request::Metrics),
            Some("trace") => Ok(Request::Trace),
            Some("logs") => Ok(Request::Logs),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("submit") => Ok(Request::Submit {
                spec: JobSpec::from_json(&v)?,
                attempt: v.get("attempt").and_then(Json::as_u64).unwrap_or(0),
                job_id: get_job_id(&v),
            }),
            Some("route") => Ok(Request::Route {
                spec: JobSpec::from_json(&v)?,
                job_id: get_job_id(&v),
            }),
            Some("peek") => Ok(Request::Peek {
                app: AppId::parse(v.get("app").and_then(Json::as_str).unwrap_or("wfs"))?,
                scale: Scale::parse(v.get("scale").and_then(Json::as_str).unwrap_or("tiny"))?,
                digest: v
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or("peek requires `digest`")?
                    .to_string(),
                chunked: v.get("chunked").and_then(Json::as_bool).unwrap_or(false),
                job_id: get_job_id(&v),
            }),
            Some(other) => Err(format!("unknown request type `{other}`")),
            None => Err("request missing `type`".into()),
        }
    }
}

/// Write a job id into a request object, only when set: absent means
/// "untagged", so the wire form legacy servers see is unchanged and they
/// simply never learn the field exists.
fn set_job_id(obj: &mut Json, job_id: u64) {
    if job_id != 0 {
        obj.set("job_id", Json::from(job_id_hex(job_id)));
    }
}

/// Read an optional wire job id (0 when absent or malformed — a garbled
/// id degrades to "untagged" rather than failing the request).
fn get_job_id(v: &Json) -> u64 {
    v.get("job_id")
        .and_then(Json::as_str)
        .and_then(parse_job_id)
        .unwrap_or(0)
}

/// A job id as the wire carries it: 16 lowercase hex characters. Hex
/// rather than a JSON number because the hand-rolled codec stores numbers
/// as `f64`, which silently loses precision above 2⁵³ — fatal for a
/// correlation key that must match exactly across peers.
pub fn job_id_hex(job_id: u64) -> String {
    format!("{job_id:016x}")
}

/// Inverse of [`job_id_hex`]; `None` on anything that is not hex that
/// fits a `u64`.
pub fn parse_job_id(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// Mint a distributed-trace job id: a splitmix64-style mix over the
/// job's content identity (the workload digest when the client knows it,
/// else the spec's wire encoding) and the retry generation at mint time.
/// Minted **once** per logical submission — every busy-retry, redirect
/// and peer hop reuses the same id, which is exactly what makes the
/// merged fleet trace line up. Never returns 0 (the "untagged" value).
pub fn mint_job_id(identity: &str, attempt: u64) -> u64 {
    let mut h = tq_fleet::hash64(identity.as_bytes());
    h ^= attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    if h == 0 {
        1
    } else {
        h
    }
}

/// A server response (already in JSON form; `ok`/`error` discipline is
/// uniform across request kinds).
#[derive(Clone, PartialEq, Debug)]
pub struct Response(pub Json);

impl Response {
    /// A successful response carrying extra fields.
    pub fn ok(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Response {
        let mut obj = Json::obj([("ok", Json::from(true))]);
        for (k, v) in fields {
            obj.set(k, v);
        }
        Response(obj)
    }

    /// An error response.
    pub fn err(message: impl Into<String>) -> Response {
        Response(Json::obj([
            ("ok", Json::from(false)),
            ("error", Json::from(message.into())),
        ]))
    }

    /// An overload response: the request was shed without being processed
    /// and the client should retry after `retry_after_ms`. Distinguished
    /// from a plain [`Response::err`] by `busy: true` — a busy job is safe
    /// to resubmit, an errored one failed on its merits.
    pub fn busy(message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response(Json::obj([
            ("ok", Json::from(false)),
            ("busy", Json::from(true)),
            ("error", Json::from(message.into())),
            ("retry_after_ms", Json::from(retry_after_ms)),
        ]))
    }

    /// Encode as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        self.0.render()
    }

    /// Decode one line.
    pub fn decode(line: &str) -> Result<Response, String> {
        Json::parse(line.trim())
            .map(Response)
            .map_err(|e| e.to_string())
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.0.get("ok").and_then(Json::as_bool).unwrap_or(false)
    }

    /// The error message, if any.
    pub fn error(&self) -> Option<&str> {
        self.0.get("error").and_then(Json::as_str)
    }

    /// Whether this is an overload (`busy`) response the client may retry.
    pub fn is_busy(&self) -> bool {
        self.0.get("busy").and_then(Json::as_bool).unwrap_or(false)
    }

    /// The server's retry hint in milliseconds, on `busy` responses.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.0.get("retry_after_ms").and_then(Json::as_u64)
    }

    /// Attach a fleet redirect hint to a `busy` response: the address of
    /// the least-loaded live peer the shed client should resubmit to.
    pub fn with_redirect(mut self, addr: &str) -> Response {
        self.0.set("redirect_to", Json::from(addr));
        self
    }

    /// The peer a `busy` response suggests resubmitting to, if the
    /// server is part of a fleet and had a live peer to hint at.
    pub fn redirect_to(&self) -> Option<&str> {
        self.0.get("redirect_to").and_then(Json::as_str)
    }
}

/// Raw capture bytes per frame of a chunked `peek` transfer. Hex doubles
/// it on the wire, so one frame line is ~48 KiB plus framing — bounded on
/// both sides and symmetric with the server's 64 KiB request-line cap.
/// Neither peer ever materialises more than one frame's hex at a time, so
/// transferring a multi-GB TQTRACE3 capture costs the capture bytes plus
/// one frame, not 3× the capture (bytes + full hex + line buffer).
pub const PEEK_FRAME_BYTES: usize = 24 * 1024;

/// Largest capture (raw bytes) the legacy single-line `peek` form will
/// hex-encode into one response line. Anything larger is refused with a
/// clean error telling the client to use a chunked peek — never an
/// unbounded line that forces the receiver to buffer 2× the capture.
pub const PEEK_SINGLE_LINE_MAX: usize = 4 << 20;

/// Lowercase-hex encoding for binary payloads carried inside the JSON
/// line protocol (`peek` capture transfers). Hex doubles the size but
/// survives any JSON string escaping untouched, keeps the line protocol
/// line-oriented, and needs no alphabet table a reviewer has to trust.
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xF) as usize] as char);
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Trace,
            Request::Logs,
            Request::Shutdown,
            Request::Submit {
                spec: JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad),
                attempt: 0,
                job_id: 0,
            },
            Request::Submit {
                spec: JobSpec {
                    interval: 123,
                    stack: StackPolicy::Exclude,
                    lib_policy: LibPolicy::Drop,
                    ..JobSpec::new(AppId::Img, Scale::Small, ToolId::Quad)
                },
                attempt: 3,
                job_id: 0x00AB_CDEF_0123_4567,
            },
            Request::Submit {
                spec: JobSpec {
                    instr: "sample:4/20000@7".into(),
                    ..JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad)
                },
                attempt: 0,
                job_id: 0,
            },
            Request::Route {
                spec: JobSpec::new(AppId::Img, Scale::Tiny, ToolId::Gprof),
                job_id: u64::MAX,
            },
            Request::Peek {
                app: AppId::Wfs,
                scale: Scale::Tiny,
                digest: "00112233445566778899aabbccddeeff".into(),
                chunked: false,
                job_id: 0,
            },
            Request::Peek {
                app: AppId::Img,
                scale: Scale::Small,
                digest: "ffeeddccbbaa99887766554433221100".into(),
                chunked: true,
                job_id: 7,
            },
        ] {
            let line = req.encode();
            assert!(!line.contains('\n'), "one line per request");
            assert_eq!(Request::decode(&line).unwrap(), req);
        }
    }

    #[test]
    fn submit_defaults_fill_in() {
        let req = Request::decode(r#"{"type":"submit","tool":"gprof"}"#).unwrap();
        let Request::Submit {
            spec,
            attempt,
            job_id,
        } = req
        else {
            panic!("submit")
        };
        assert_eq!(spec.app, AppId::Wfs);
        assert_eq!(spec.scale, Scale::Tiny);
        assert_eq!(spec.interval, ToolId::Gprof.default_interval());
        assert_eq!(spec.stack, StackPolicy::Include);
        assert_eq!(attempt, 0, "first submissions default to attempt 0");
        assert_eq!(job_id, 0, "legacy submissions decode as untagged");
        assert_eq!(spec.instr, "full", "absent instr decodes as full");
    }

    #[test]
    fn instr_is_canonicalised_and_full_stays_off_the_wire() {
        // Full jobs encode without the field, so the wire form servers
        // that predate it see is unchanged.
        let full = Request::Submit {
            spec: JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad),
            attempt: 0,
            job_id: 0,
        };
        assert!(!full.encode().contains("instr"));
        // Decoding canonicalises the spec (the memo key must not split
        // across equivalent spellings)…
        let req =
            Request::decode(r#"{"type":"submit","tool":"tquad","instr":"sample:4"}"#).unwrap();
        let Request::Submit { spec, .. } = req else {
            panic!("submit")
        };
        assert_eq!(spec.instr, "sample:4/20000@0");
        // …and garbage fails at decode, not deep inside a worker.
        assert!(Request::decode(r#"{"type":"submit","tool":"tquad","instr":"sample:0"}"#).is_err());
    }

    #[test]
    fn job_id_is_hex_on_the_wire_and_absent_when_untagged() {
        // Untagged requests encode without the field, so old servers
        // never see an unknown key.
        let untagged = Request::Submit {
            spec: JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad),
            attempt: 0,
            job_id: 0,
        };
        assert!(!untagged.encode().contains("job_id"));
        // Tagged requests carry 16 lowercase hex chars — a string, not a
        // JSON number, so ids above 2^53 survive the f64 codec exactly.
        let tagged = Request::Submit {
            spec: JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad),
            attempt: 0,
            job_id: u64::MAX - 1,
        };
        let line = tagged.encode();
        assert!(line.contains("\"job_id\":\"fffffffffffffffe\""), "{line}");
        assert_eq!(Request::decode(&line).unwrap(), tagged);
        // A garbled id degrades to untagged instead of failing the job.
        let garbled = r#"{"type":"submit","tool":"tquad","job_id":"not-hex"}"#;
        let Request::Submit { job_id, .. } = Request::decode(garbled).unwrap() else {
            panic!("submit")
        };
        assert_eq!(job_id, 0);
    }

    #[test]
    fn job_id_hex_round_trips() {
        for id in [1u64, 0xAB, 2u64.pow(53) + 1, u64::MAX] {
            assert_eq!(parse_job_id(&job_id_hex(id)), Some(id));
        }
        assert_eq!(parse_job_id(""), None);
        assert_eq!(parse_job_id("xyz"), None);
        assert_eq!(parse_job_id("10000000000000000"), None, "overflow");
    }

    #[test]
    fn minted_job_ids_are_stable_distinct_and_nonzero() {
        let a = mint_job_id("digest-a", 0);
        assert_eq!(a, mint_job_id("digest-a", 0), "deterministic");
        assert_ne!(a, 0, "0 is reserved for untagged");
        assert_ne!(a, mint_job_id("digest-b", 0), "identity matters");
        assert_ne!(a, mint_job_id("digest-a", 1), "attempt matters");
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Request::decode("").is_err());
        assert!(Request::decode("{}").is_err());
        assert!(Request::decode(r#"{"type":"nope"}"#).is_err());
        assert!(
            Request::decode(r#"{"type":"submit"}"#).is_err(),
            "tool is required"
        );
        assert!(Request::decode(r#"{"type":"submit","tool":"tquad","interval":-4}"#).is_err());
    }

    #[test]
    fn response_shapes() {
        let ok = Response::ok([("cached", Json::from(true))]);
        assert!(ok.is_ok());
        assert_eq!(ok.error(), None);
        let back = Response::decode(&ok.encode()).unwrap();
        assert_eq!(back, ok);

        let e = Response::err("boom");
        assert!(!e.is_ok());
        assert_eq!(e.error(), Some("boom"));
        assert!(!e.is_busy(), "plain errors are not retryable");
        assert_eq!(e.retry_after_ms(), None);

        let b = Response::busy("queue full", 150);
        assert!(!b.is_ok());
        assert!(b.is_busy());
        assert_eq!(b.retry_after_ms(), Some(150));
        assert_eq!(b.redirect_to(), None);
        let back = Response::decode(&b.encode()).unwrap();
        assert!(back.is_busy(), "busy survives the wire");
        assert_eq!(back.retry_after_ms(), Some(150));

        let r = Response::busy("queue full", 150).with_redirect("127.0.0.1:7472");
        let back = Response::decode(&r.encode()).unwrap();
        assert_eq!(back.redirect_to(), Some("127.0.0.1:7472"));
    }

    #[test]
    fn peek_decode_requires_digest() {
        assert!(Request::decode(r#"{"type":"peek","app":"wfs","scale":"tiny"}"#).is_err());
        assert!(Request::decode(r#"{"type":"peek","digest":"ab","app":"nope"}"#).is_err());
    }

    #[test]
    fn peek_chunked_defaults_off_and_stays_off_the_wire() {
        // Requests from clients that predate the field decode as legacy
        // single-line peeks…
        let legacy = Request::decode(r#"{"type":"peek","digest":"ab"}"#).unwrap();
        let Request::Peek { chunked, .. } = legacy else {
            panic!("peek")
        };
        assert!(!chunked, "absent flag means legacy transfer");
        // …and a legacy peek encodes without the field, so old servers
        // never see an unknown key carrying `false`.
        let req = Request::Peek {
            app: AppId::Wfs,
            scale: Scale::Tiny,
            digest: "ab".into(),
            chunked: false,
            job_id: 0,
        };
        assert!(!req.encode().contains("chunked"));
    }

    #[test]
    fn hex_roundtrips_and_rejects_garbage() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xAB, 0xCD, 0x00, 0xFF],
            (0..=255).collect(),
        ] {
            let enc = hex_encode(&bytes);
            assert_eq!(hex_decode(&enc).as_deref(), Some(bytes.as_slice()));
        }
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
        assert_eq!(hex_decode("ABCD"), Some(vec![0xAB, 0xCD]), "upper accepted");
    }
}
