//! Workload construction and content addressing.
//!
//! A [`Workload`] is everything a capture run needs: the compiled program
//! and its staged input file. Its [`Workload::digest`] is the capture
//! cache's content address — a 128-bit digest over the program's
//! instruction encodings, symbol tables, initialised data, entry point and
//! the input bytes. Two `(app, scale)` pairs that compile to the identical
//! program and input share one capture; any change to kernels, compiler
//! output or input synthesis changes the address and transparently forces
//! a fresh recording.

use tq_imgproc::{ImgApp, ImgConfig};
use tq_isa::Program;
use tq_trace::{digest_program, Digest128};
use tq_wfs::{WfsApp, WfsConfig};

/// Which case-study application a job profiles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppId {
    /// The hArtes wfs audio application (the paper's case study).
    Wfs,
    /// The image-processing second application.
    Img,
}

impl AppId {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AppId::Wfs => "wfs",
            AppId::Img => "img",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<AppId, String> {
        match s {
            "wfs" => Ok(AppId::Wfs),
            "img" | "imgproc" => Ok(AppId::Img),
            other => Err(format!("unknown app `{other}` (wfs|img)")),
        }
    }
}

/// Workload scale.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Smallest (sub-second capture; tests and smoke runs).
    Tiny,
    /// Mid-size.
    Small,
    /// Paper-scaled.
    Paper,
}

impl Scale {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            other => Err(format!("unknown scale `{other}` (tiny|small|paper)")),
        }
    }
}

/// A buildable capture workload: program plus staged input.
pub struct Workload {
    /// The compiled program.
    pub program: Program,
    /// Input file name staged into the VM's host filesystem.
    pub input_name: String,
    /// Input file bytes.
    pub input_bytes: Vec<u8>,
}

impl Workload {
    /// Build the workload for an `(app, scale)` pair. Construction is
    /// deterministic (fixed synthesis seeds), so the digest is stable
    /// across processes and sessions.
    pub fn build(app: AppId, scale: Scale) -> Workload {
        match app {
            AppId::Wfs => {
                let config = match scale {
                    Scale::Tiny => WfsConfig::tiny(),
                    Scale::Small => WfsConfig::small(),
                    Scale::Paper => WfsConfig::paper_scaled(),
                };
                let a = WfsApp::build(config);
                Workload {
                    program: a.compiled.program.clone(),
                    input_name: tq_wfs::INPUT_WAV.into(),
                    input_bytes: a.input_wav,
                }
            }
            AppId::Img => {
                let config = match scale {
                    Scale::Tiny => ImgConfig::tiny(),
                    Scale::Small => ImgConfig::small(),
                    Scale::Paper => ImgConfig::scaled(),
                };
                let a = ImgApp::build(config);
                Workload {
                    program: a.compiled.program.clone(),
                    input_name: tq_imgproc::INPUT_PGM.into(),
                    input_bytes: a.input_pgm,
                }
            }
        }
    }

    /// The content address: program + input, as 32 hex chars.
    pub fn digest(&self) -> String {
        let mut d = Digest128::new();
        digest_program(&mut d, &self.program);
        d.update_str(&self.input_name);
        d.update_u64(self.input_bytes.len() as u64);
        d.update(&self.input_bytes);
        d.finish_hex()
    }

    /// A fresh VM with the input staged.
    pub fn make_vm(&self) -> Result<tq_vm::Vm, String> {
        let mut vm = tq_vm::Vm::new(self.program.clone()).map_err(|e| e.to_string())?;
        vm.fs_mut()
            .add_file(&self.input_name, self.input_bytes.clone());
        Ok(vm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_roundtrip() {
        for app in [AppId::Wfs, AppId::Img] {
            assert_eq!(AppId::parse(app.as_str()).unwrap(), app);
        }
        for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
            assert_eq!(Scale::parse(scale.as_str()).unwrap(), scale);
        }
        assert!(AppId::parse("x").is_err());
        assert!(Scale::parse("x").is_err());
    }

    #[test]
    fn digest_is_stable_and_discriminates() {
        let a1 = Workload::build(AppId::Wfs, Scale::Tiny).digest();
        let a2 = Workload::build(AppId::Wfs, Scale::Tiny).digest();
        assert_eq!(a1, a2, "deterministic builds give a stable address");
        let b = Workload::build(AppId::Img, Scale::Tiny).digest();
        assert_ne!(a1, b, "different apps have different addresses");
    }
}
