//! # tq-profd — a concurrent profiling service for the tQUAD reproduction
//!
//! The capture-once/replay-many architecture (`tq-trace`) makes every
//! profiling question after the first a pure function of a recorded event
//! stream. This crate turns that property into a long-running service:
//! a TCP daemon (`tq serve`) accepts profiling jobs from any number of
//! clients (`tq submit`), schedules them across a pool of replay workers,
//! and answers from a **content-addressed capture cache**:
//!
//! * the first job for an `(app, scale)` pair runs the VM once, recording
//!   a full `tq-trace` capture keyed by a digest of the program (text,
//!   symbols, data) and its staged input — the *content address*;
//! * every subsequent tool/interval/stack variant against the same
//!   workload is served by offline replay of that capture, in parallel
//!   across workers;
//! * each distinct job's rendered result is memoized, so repeats are pure
//!   cache hits returning **byte-identical** responses.
//!
//! Layering:
//!
//! * [`protocol`] — request/response model over JSON lines (codec shared
//!   with `tq-report`'s hand-rolled [`tq_report::Json`]);
//! * [`apps`] — workload construction (wfs / imgproc at each scale) and
//!   content addressing;
//! * [`cache`] — the two-tier capture store (LRU in-memory over a
//!   persistent on-disk tier) with single-flight recording;
//! * [`exec`] — job execution: capture or replay, tool dispatch, JSON
//!   rendering;
//! * [`stats`] — service observability (cache counters, per-tool latency
//!   histograms);
//! * [`telemetry`] — fleet-wide aggregation: NTP-style clock-offset
//!   estimation, the merged multi-peer Chrome trace behind
//!   `tq fleet-trace`, and the peer-labelled Prometheus merge behind
//!   `tq fleet-status`;
//! * [`server`] / [`client`] — the TCP daemon (bounded job queue, worker
//!   pool, graceful shutdown, per-job timeout) and the line-oriented
//!   client used by `tq submit`.
//!
//! Under load the service degrades predictably rather than queueing
//! unboundedly: full queues and connection limits answer `busy` with a
//! `retry_after_ms` hint, idle connections are reaped, panicking workers
//! recover, and shutdown sheds the waiting queue. The client side mirrors
//! this with socket timeouts and [`Client::submit_with_retry`]. Every
//! degradation path can be rehearsed deterministically via `tq-faults`
//! (the `TQ_FAULTS` plan string) — see `docs/OPERATIONS.md` for the
//! operator's handbook and DESIGN.md §10 for the model.

#![warn(missing_docs)]

pub mod apps;
pub mod cache;
pub mod client;
pub mod exec;
pub mod fleet;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod telemetry;

pub use apps::{AppId, Scale, Workload};
pub use cache::CaptureStore;
pub use client::{Client, ClientConfig, FleetClient, RetryPolicy, RetryTrail, TraceExport};
pub use fleet::{FleetConfig, FleetState};
pub use protocol::{
    hex_decode, hex_encode, job_id_hex, mint_job_id, parse_job_id, JobSpec, Request, Response,
    StackPolicy, ToolId, PEEK_FRAME_BYTES, PEEK_SINGLE_LINE_MAX,
};
pub use server::{Server, ServerConfig};
pub use stats::ServiceStats;

/// Best-effort text of a caught panic payload (`&str` / `String`
/// payloads; anything else reports its opaqueness). Used by the worker
/// pool and the capture cache to turn contained unwinds into error
/// replies.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}
