//! Service observability: cache counters and per-tool latency histograms.
//!
//! The stats live behind the server's mutex and are snapshotted into JSON
//! on a `stats` request. Latencies go into log₂ buckets of microseconds —
//! cheap to record under a lock, and enough resolution to tell a cache hit
//! (tens of µs) from a replay (ms) from a capture run (often seconds).

use crate::protocol::ToolId;
use tq_report::Json;

/// Number of log₂ latency buckets; bucket `i` holds durations in
/// `[2^i, 2^(i+1))` µs, the last bucket is open-ended.
pub const LATENCY_BUCKETS: usize = 28;

/// A log₂ histogram of job latencies in microseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyHisto {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

impl LatencyHisto {
    /// Record one duration.
    pub fn record(&mut self, micros: u64) {
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// JSON snapshot. Trailing empty buckets are trimmed.
    pub fn to_json(&self) -> Json {
        let used = self
            .buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let mean = if self.count > 0 {
            self.total_micros as f64 / self.count as f64
        } else {
            0.0
        };
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean_micros", Json::from(mean)),
            ("max_micros", Json::from(self.max_micros)),
            (
                "log2_buckets",
                Json::from(
                    self.buckets[..used]
                        .iter()
                        .map(|&b| Json::from(b))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

/// Service-wide counters. `vm_runs` counts actual interpreter executions —
/// the acceptance criterion "the warm job completes without re-running the
/// VM" is checked by this number staying flat.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Jobs received (valid submits).
    pub jobs_submitted: u64,
    /// Jobs that produced a profile.
    pub jobs_completed: u64,
    /// Jobs that errored.
    pub jobs_failed: u64,
    /// Full result-memo hits (byte-identical replies, no replay).
    pub result_hits: u64,
    /// Captures served from the in-memory tier.
    pub capture_mem_hits: u64,
    /// Captures loaded from the on-disk tier.
    pub capture_disk_hits: u64,
    /// Captures recorded by running the VM (cold misses).
    pub vm_runs: u64,
    /// Encoded trace bytes fed through offline replay.
    pub bytes_replayed: u64,
    /// Events fed through offline replay.
    pub events_replayed: u64,
    /// Replays that fanned out over idle workers (more than one shard).
    pub sharded_replays: u64,
    /// Queued jobs shed with an error reply when shutdown began.
    pub sheds: u64,
    /// Requests turned away under overload: submits answered `busy`
    /// (queue full) plus connections refused at the `max_conns` limit.
    pub rejects: u64,
    /// Submits that arrived flagged as client retries (`attempt > 0`) —
    /// nonzero means clients are seeing `busy` and backing off.
    pub retries_observed: u64,
    /// Jobs whose end-to-end latency reached the configured slow-job
    /// threshold (each also emitted a structured `slow_job` record).
    pub slow_jobs: u64,
    /// Jobs served under a reduced instrumentation mode (`instr` other
    /// than `full`): replayed sequentially through the gate emulator
    /// over the shared full capture.
    pub reduced_jobs: u64,
    /// Blocks fused by capture-run interpreters (see `tq_vm::VmStats`).
    pub vm_blocks_fused: u64,
    /// Hot-loop traces recorded by capture-run interpreters.
    pub vm_traces_recorded: u64,
    /// Trace side-exits taken by capture-run interpreters.
    pub vm_trace_side_exits: u64,
    /// Per-tool job latency (tquad, quad, gprof, phases).
    pub latency: [LatencyHisto; 4],
}

impl ServiceStats {
    fn tool_idx(tool: ToolId) -> usize {
        match tool {
            ToolId::Tquad => 0,
            ToolId::Quad => 1,
            ToolId::Gprof => 2,
            ToolId::Phases => 3,
        }
    }

    /// Record a finished job's latency under its tool.
    pub fn record_latency(&mut self, tool: ToolId, micros: u64) {
        self.latency[Self::tool_idx(tool)].record(micros);
    }

    /// Mean end-to-end job latency in microseconds across every tool, or
    /// `None` before the first job finishes. Feeds the server's
    /// `retry_after_ms` hint on `busy` responses.
    pub fn mean_job_micros(&self) -> Option<f64> {
        let (count, total) = self.latency.iter().fold((0u64, 0u64), |(c, t), h| {
            (c + h.count, t.saturating_add(h.total_micros))
        });
        (count > 0).then(|| total as f64 / count as f64)
    }

    /// Answers that avoided a VM run entirely: result-memo hits plus
    /// capture-cache hits from either tier.
    pub fn cache_hits(&self) -> u64 {
        self.result_hits + self.capture_mem_hits + self.capture_disk_hits
    }

    /// Answers that had to record a fresh capture (cold misses). Equal to
    /// `vm_runs` by construction; exposed under the name operators expect
    /// next to `cache_hits`.
    pub fn cache_misses(&self) -> u64 {
        self.vm_runs
    }

    /// JSON snapshot; `uptime_micros` comes from the server's start instant.
    pub fn to_json(&self, uptime_micros: u64) -> Json {
        let tools = Json::obj([
            ("tquad", self.latency[0].to_json()),
            ("quad", self.latency[1].to_json()),
            ("gprof", self.latency[2].to_json()),
            ("phases", self.latency[3].to_json()),
        ]);
        Json::obj([
            ("uptime_micros", Json::from(uptime_micros)),
            (
                "uptime_seconds",
                Json::from(uptime_micros as f64 / 1_000_000.0),
            ),
            ("jobs_submitted", Json::from(self.jobs_submitted)),
            ("jobs_completed", Json::from(self.jobs_completed)),
            ("jobs_failed", Json::from(self.jobs_failed)),
            ("result_hits", Json::from(self.result_hits)),
            ("capture_mem_hits", Json::from(self.capture_mem_hits)),
            ("capture_disk_hits", Json::from(self.capture_disk_hits)),
            ("cache_hits", Json::from(self.cache_hits())),
            ("cache_misses", Json::from(self.cache_misses())),
            ("vm_runs", Json::from(self.vm_runs)),
            ("bytes_replayed", Json::from(self.bytes_replayed)),
            ("events_replayed", Json::from(self.events_replayed)),
            ("sharded_replays", Json::from(self.sharded_replays)),
            ("sheds", Json::from(self.sheds)),
            ("rejects", Json::from(self.rejects)),
            ("retries_observed", Json::from(self.retries_observed)),
            ("slow_jobs", Json::from(self.slow_jobs)),
            ("reduced_jobs", Json::from(self.reduced_jobs)),
            ("vm_blocks_fused", Json::from(self.vm_blocks_fused)),
            ("vm_traces_recorded", Json::from(self.vm_traces_recorded)),
            ("vm_trace_side_exits", Json::from(self.vm_trace_side_exits)),
            ("latency", tools),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHisto::default();
        for micros in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(micros);
        }
        assert_eq!(h.count(), 7);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("max_micros").and_then(Json::as_u64), Some(u64::MAX));
        let buckets = j.get("log2_buckets").and_then(Json::as_arr).unwrap();
        // 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 4 in bucket 2.
        assert_eq!(buckets[0].as_u64(), Some(2));
        assert_eq!(buckets[1].as_u64(), Some(2));
        assert_eq!(buckets[2].as_u64(), Some(1));
        // u64::MAX clamps into the open-ended last bucket.
        assert_eq!(buckets.len(), LATENCY_BUCKETS);
        assert_eq!(buckets[LATENCY_BUCKETS - 1].as_u64(), Some(1));
    }

    #[test]
    fn stats_snapshot_shape() {
        let mut s = ServiceStats::default();
        s.jobs_submitted = 3;
        s.vm_runs = 1;
        s.result_hits = 2;
        s.capture_disk_hits = 1;
        s.record_latency(ToolId::Tquad, 1500);
        let j = s.to_json(42);
        assert_eq!(j.get("uptime_micros").and_then(Json::as_u64), Some(42));
        assert_eq!(
            j.get("uptime_seconds").and_then(Json::as_f64),
            Some(42.0 / 1_000_000.0)
        );
        assert_eq!(j.get("vm_runs").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("cache_misses").and_then(Json::as_u64), Some(1));
        let lat = j.get("latency").unwrap();
        assert_eq!(
            lat.get("tquad")
                .and_then(|t| t.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            lat.get("quad")
                .and_then(|t| t.get("count"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }
}
