//! End-to-end service tests: a real server on an ephemeral port, real TCP
//! clients, and the capture/replay determinism guarantees the service is
//! built on.

use std::path::PathBuf;
use tq_profd::exec::{record_capture, run_tool};
use tq_profd::{
    AppId, Client, JobSpec, Request, Scale, Server, ServerConfig, StackPolicy, ToolId, Workload,
};
use tq_report::Json;

fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tq-profd-test-{tag}-{}", std::process::id()))
}

fn start(state_dir: Option<PathBuf>) -> (Server, String) {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        state_dir,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {key}"))
}

/// The ISSUE's acceptance path: submit the same tquad job twice; the warm
/// response is byte-identical, flagged as cached, and the VM ran once.
#[test]
fn warm_submit_is_byte_identical_cache_hit() {
    let (server, addr) = start(None);
    let mut client = Client::connect(&addr).expect("connect");

    assert!(client.ping().expect("ping").is_ok());

    let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad);
    let cold = client
        .request(&Request::Submit {
            spec: spec.clone(),
            attempt: 0,
            job_id: 0,
        })
        .expect("cold submit");
    assert!(cold.is_ok(), "{:?}", cold.error());
    assert_eq!(cold.0.get("cached").and_then(Json::as_bool), Some(false));

    let warm = client
        .request(&Request::Submit {
            spec,
            attempt: 0,
            job_id: 0,
        })
        .expect("warm submit");
    assert!(warm.is_ok());
    assert_eq!(warm.0.get("cached").and_then(Json::as_bool), Some(true));

    let cold_profile = cold.0.get("profile").expect("profile").render();
    let warm_profile = warm.0.get("profile").expect("profile").render();
    assert_eq!(
        cold_profile, warm_profile,
        "cold and warm profiles are byte-identical"
    );
    assert!(!cold_profile.is_empty());

    let stats = client.stats().expect("stats");
    assert_eq!(
        stat(&stats, "vm_runs"),
        1,
        "the warm job did not re-run the VM"
    );
    assert!(
        stat(&stats, "result_hits") >= 1,
        "stats report at least one cache hit"
    );
    assert_eq!(stat(&stats, "jobs_completed"), 2);

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// Different tool variants against one workload share a single capture:
/// vm_runs stays at 1 while every tool answers.
#[test]
fn one_capture_serves_every_tool() {
    let (server, addr) = start(None);
    let mut client = Client::connect(&addr).expect("connect");

    for tool in [ToolId::Tquad, ToolId::Quad, ToolId::Gprof, ToolId::Phases] {
        let (profile, _) = client
            .submit(JobSpec::new(AppId::Wfs, Scale::Tiny, tool))
            .expect("submit");
        assert!(!profile.render().is_empty(), "{tool:?} produced a profile");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "vm_runs"), 1);
    assert_eq!(stat(&stats, "capture_mem_hits"), 3);

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// Concurrent clients racing on a cold workload still trigger exactly one
/// VM run (single-flight capture recording).
#[test]
fn concurrent_cold_clients_single_capture() {
    let (server, addr) = start(None);

    let profiles = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let spec = JobSpec {
                        // Distinct intervals: no result-memo sharing, only
                        // capture sharing.
                        interval: 10_000 + 1_000 * i,
                        ..JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad)
                    };
                    client.submit(spec).expect("submit").0.render()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect::<Vec<_>>()
    });
    assert_eq!(profiles.len(), 4);

    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stat(&stats, "vm_runs"),
        1,
        "one capture for four racing clients"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// Malformed and invalid requests get error responses, and the connection
/// survives to serve the next request.
#[test]
fn errors_do_not_kill_the_connection() {
    let (server, addr) = start(None);
    let mut client = Client::connect(&addr).expect("connect");

    use std::io::{BufRead, Write};
    let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    for bad in [
        "this is not json",
        r#"{"type":"submit"}"#,
        r#"{"type":"submit","tool":"x"}"#,
    ] {
        raw.write_all(format!("{bad}\n").as_bytes()).expect("send");
        raw.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        let resp = tq_profd::Response::decode(&line).expect("decodes");
        assert!(!resp.is_ok(), "`{bad}` must fail");
        assert!(resp.error().is_some());
    }
    // Same raw connection still answers a good request.
    raw.write_all(b"{\"type\":\"ping\"}\n").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    assert!(tq_profd::Response::decode(&line).expect("decodes").is_ok());

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// A server restarted over the same state directory serves the workload
/// from the disk tier: byte-identical profile, zero VM runs.
#[test]
fn disk_tier_survives_restart() {
    let dir = test_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = JobSpec::new(AppId::Img, Scale::Tiny, ToolId::Quad);

    let (server, addr) = start(Some(dir.clone()));
    let mut client = Client::connect(&addr).expect("connect");
    let (first, _) = client.submit(spec.clone()).expect("cold submit");
    client.shutdown().expect("shutdown");
    server.join().expect("clean join");

    let (server, addr) = start(Some(dir.clone()));
    let mut client = Client::connect(&addr).expect("connect");
    let (second, _) = client.submit(spec).expect("warm-from-disk submit");
    let stats = client.stats().expect("stats");
    assert_eq!(
        first.render(),
        second.render(),
        "profile identical across restarts"
    );
    assert_eq!(
        stat(&stats, "vm_runs"),
        0,
        "restart served from disk, no VM run"
    );
    assert_eq!(stat(&stats, "capture_disk_hits"), 1);
    client.shutdown().expect("shutdown");
    server.join().expect("clean join");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Determinism at the layer below the service: a capture saved to disk and
/// loaded back replays to exactly the profile of a live run.
#[test]
fn replayed_capture_equals_live_run() {
    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let live = record_capture(&workload, None).expect("capture");

    let dir = test_dir("determinism");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("capture.bin");
    live.save_to_path(&path).expect("save");
    let restored = tq_trace::Trace::load_from_path(&path).expect("load");
    assert_eq!(restored.digest(), live.digest());

    for tool in [ToolId::Tquad, ToolId::Quad, ToolId::Gprof, ToolId::Phases] {
        let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, tool);
        let from_live = run_tool(&spec, &live, 1).expect("live replay").render();
        let from_disk = run_tool(&spec, &restored, 1).expect("disk replay").render();
        assert_eq!(
            from_live, from_disk,
            "{tool:?} profile differs after save/load"
        );
    }

    // And a second capture of the same deterministic workload digests the
    // same — the content address is stable across recordings.
    let again = record_capture(&workload, None).expect("capture again");
    assert_eq!(again.digest(), live.digest());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Submitting with stack excluded changes quad's profile (the option is
/// honoured end to end), while repeating each variant stays memoized.
#[test]
fn stack_option_propagates_through_the_service() {
    let (server, addr) = start(None);
    let mut client = Client::connect(&addr).expect("connect");

    let base = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Quad);
    let (with_stack, _) = client.submit(base.clone()).expect("submit incl");
    let (without, _) = client
        .submit(JobSpec {
            stack: StackPolicy::Exclude,
            ..base.clone()
        })
        .expect("submit excl");
    assert_ne!(with_stack.render(), without.render());

    let (repeat, cached) = client.submit(base).expect("repeat");
    assert!(cached);
    assert_eq!(repeat.render(), with_stack.render());

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// An oversized request line (a hostile or broken client streaming bytes
/// with no newline) gets a clean error response and a closed connection —
/// the server neither buffers it unboundedly nor hangs a worker.
#[test]
fn oversized_request_line_is_rejected_cleanly() {
    let (server, addr) = start(None);

    use std::io::{BufRead, Write};
    let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    // Well past the 64 KiB cap, in one line. The server stops reading at
    // the cap and hangs up, so these writes may themselves fail with a
    // reset — that is the "close" half of the contract, not a test bug.
    let blob = "x".repeat(96 * 1024);
    let sent = raw
        .write_all(blob.as_bytes())
        .and_then(|()| raw.write_all(b"\n"))
        .and_then(|()| raw.flush());
    let mut line = String::new();
    match (sent, reader.read_line(&mut line)) {
        // Best case: the error reply survived the teardown race.
        (Ok(()), Ok(n)) if n > 0 => {
            let resp = tq_profd::Response::decode(&line).expect("decodes");
            assert!(!resp.is_ok(), "oversized line must fail");
            assert!(
                resp.error().unwrap_or("").contains("exceeds"),
                "error names the cap: {:?}",
                resp.error()
            );
        }
        // Otherwise the server closed on us (EOF or RST while our unread
        // bytes were still in flight). Equally acceptable: the request was
        // refused without buffering it, and crucially without hanging.
        (_, Ok(_)) | (_, Err(_)) => {}
    }

    // And the service is still healthy for everyone else.
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.ping().expect("ping").is_ok());
    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// A client that disconnects mid-request (partial line, no newline) must
/// not wedge anything: the connection thread exits and the service keeps
/// answering.
#[test]
fn mid_request_disconnect_leaves_service_healthy() {
    let (server, addr) = start(None);

    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(br#"{"type":"sub"#).expect("partial send");
        raw.flush().expect("flush");
        // Drop: closes the socket with the request line unterminated.
    }
    // A fresh client gets served immediately — no worker was consumed by
    // the partial request, no lock is stuck.
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.ping().expect("ping").is_ok());
    let (profile, _) = client
        .submit(JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Gprof))
        .expect("submit after disconnect");
    assert!(!profile.render().is_empty());

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// The `metrics` request returns Prometheus-style text exposition carrying
/// counters, gauges and histograms, and the stats snapshot reports cache
/// hit/miss counts, live queue depth and uptime.
#[test]
fn metrics_exposition_and_stats_fields() {
    let (server, addr) = start(None);
    let mut client = Client::connect(&addr).expect("connect");

    let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Gprof);
    client.submit(spec.clone()).expect("cold submit");
    client.submit(spec).expect("warm submit");

    let text = client.metrics().expect("metrics");
    for needle in [
        "# TYPE tq_profd_jobs_submitted_total counter",
        "# TYPE tq_profd_queue_depth gauge",
        "# TYPE tq_profd_job_micros histogram",
        "tq_profd_job_micros_bucket{le=\"+Inf\"}",
        "tq_profd_job_micros_count",
        "# TYPE tq_profd_uptime_seconds gauge",
        "tq_obs_spans_dropped_total",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    let stats = client.stats().expect("stats");
    assert!(stat(&stats, "cache_hits") >= 1, "warm job counted as a hit");
    assert_eq!(stat(&stats, "cache_misses"), stat(&stats, "vm_runs"));
    assert_eq!(stat(&stats, "queue_len"), 0, "queue drained");
    let _ = stat(&stats, "busy_workers");
    assert!(
        stats.get("uptime_seconds").and_then(Json::as_f64).is_some(),
        "uptime_seconds present"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}
