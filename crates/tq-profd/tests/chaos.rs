//! Chaos and overload tests: a real server with a seeded `tq-faults` plan
//! installed in-process. The contract under test is the ISSUE's acceptance
//! bar — every submitted job terminates with either a profile that is
//! byte-identical to the fault-free output or an explicit error/busy
//! response; nothing hangs and no reply is dropped.
//!
//! The fault plan is process-global, so these tests serialize on a mutex
//! and always clear the plan on exit (panic included) via a drop guard.

use std::sync::Mutex;
use std::time::Duration;
use tq_faults::{FaultPlan, FaultPoint};
use tq_profd::exec::{record_capture, run_tool};
use tq_profd::{
    AppId, Client, ClientConfig, JobSpec, Scale, Server, ServerConfig, ToolId, Workload,
};
use tq_report::Json;

/// Serializes the tests sharing the global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Clears the installed plan when the test ends, pass or fail.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        tq_faults::clear();
    }
}

fn start(config: ServerConfig) -> (Server, String) {
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// A distinct-but-same-capture job: varying the slice interval changes the
/// result-memo key without needing a new workload capture.
fn spec_n(n: u64) -> JobSpec {
    let mut spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad);
    spec.interval = 1000 + n;
    spec
}

/// Fault-free expected profile for `spec`, computed below the service
/// layer. Must be called with no fault plan installed.
fn expected_profile(trace: &tq_trace::Trace, spec: &JobSpec) -> String {
    assert!(!tq_faults::active(), "expected profiles need a clean plan");
    run_tool(spec, trace, 1)
        .expect("fault-free run_tool")
        .render()
}

/// Queue-full submissions are answered immediately with `busy` and a
/// `retry_after_ms` hint, and `Client::submit_with_retry` rides the hint
/// to an eventual success.
#[test]
fn queue_full_yields_busy_and_retry_succeeds() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let trace = record_capture(&workload, None).expect("capture");
    let want = expected_profile(&trace, &spec_n(3));

    let (server, addr) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });

    // Warm the capture cache so the slow-replay fault below only stretches
    // replay, not the recording single-flight.
    let mut client = Client::connect(&addr).expect("connect");
    client.submit(spec_n(0)).expect("warm capture");

    // From here on every replay takes >= 500ms: one job pins the worker,
    // one fills the queue, and the third must be shed.
    tq_faults::install(FaultPlan::seeded(42).with(
        FaultPoint::SlowReplay,
        1.0,
        Duration::from_millis(500),
    ));

    let occupants: Vec<_> = (1..=2)
        .map(|n| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.submit(spec_n(n))
            })
        })
        .collect();
    // Let both occupants land (worker + queue slot) before probing.
    std::thread::sleep(Duration::from_millis(150));

    let resp = client
        .request(&tq_profd::Request::Submit {
            spec: spec_n(3),
            attempt: 0,
        })
        .expect("probe transmits");
    assert!(resp.is_busy(), "queue-full probe must be shed: {resp:?}");
    let hint = resp.retry_after_ms().expect("busy carries retry_after_ms");
    assert!(hint >= 25, "hint respects the floor: {hint}");

    // The resilient path: same job, retried with backoff, succeeds once
    // the occupants drain — and the profile matches the fault-free run.
    let (profile, _cached) = client
        .submit_with_retry(spec_n(3), 10)
        .expect("retry eventually lands");
    assert_eq!(
        profile.render(),
        want,
        "shed-then-retried job is byte-identical"
    );

    for t in occupants {
        t.join().expect("occupant thread").expect("occupant job");
    }

    let stats = client.stats().expect("stats");
    let rejects = stats.get("rejects").and_then(Json::as_u64).unwrap_or(0);
    assert!(rejects >= 1, "stats count the shed submission: {stats:?}");

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// The chaos soak: a mixed seeded plan (worker panics, read stalls, cache
/// IO errors, slow replays, accept delays) while a batch of jobs runs
/// through `submit_with_retry`. Every job must terminate — a profile
/// byte-identical to its fault-free output, or an explicit error — and the
/// service must report the injections.
#[test]
fn chaos_soak_terminates_every_job_correctly_or_cleanly() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    const JOBS: u64 = 12;
    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let trace = record_capture(&workload, None).expect("capture");
    let expected: Vec<String> = (0..JOBS)
        .map(|n| expected_profile(&trace, &spec_n(n)))
        .collect();

    let state_dir = std::env::temp_dir().join(format!("tq-profd-chaos-{}", std::process::id()));
    let (server, addr) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 4,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });

    tq_faults::install(
        FaultPlan::seeded(7)
            .with(FaultPoint::WorkerPanic, 0.15, Duration::ZERO)
            .with(FaultPoint::ReadStall, 0.20, Duration::from_millis(20))
            .with(FaultPoint::CacheIoError, 0.30, Duration::ZERO)
            .with(FaultPoint::SlowReplay, 0.30, Duration::from_millis(30))
            .with(FaultPoint::AcceptDelay, 0.20, Duration::from_millis(20)),
    );

    let outcomes: Vec<_> = (0..JOBS)
        .map(|n| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let config = ClientConfig {
                    read_timeout: Some(Duration::from_secs(60)),
                    ..ClientConfig::default()
                };
                let mut c = Client::connect_with(&addr, config).expect("connect");
                (n, c.submit_with_retry(spec_n(n), 8))
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("no client thread hangs or panics"))
        .collect();

    let mut ok = 0usize;
    let mut errored = 0usize;
    for (n, outcome) in outcomes {
        match outcome {
            Ok((profile, _cached)) => {
                assert_eq!(
                    profile.render(),
                    expected[n as usize],
                    "job {n} survived chaos but diverged from the fault-free profile"
                );
                ok += 1;
            }
            Err(e) => {
                // Explicit, human-readable failure — never a hang, never a
                // silent drop. Injected worker panics surface here.
                assert!(!e.is_empty(), "job {n} failed without a message");
                errored += 1;
            }
        }
    }
    assert_eq!(ok + errored, JOBS as usize, "every job terminated");
    assert!(ok >= 1, "at least one job survives the plan (seed=7)");

    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    let injected = stats
        .get("faults_injected")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(injected > 0, "the plan actually fired: {stats:?}");

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Shutdown under backlog sheds the queued jobs with an explicit error
/// (never leaves a client waiting on a dead socket) and counts them.
#[test]
fn shutdown_sheds_queued_jobs_explicitly() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    let (server, addr) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    client.submit(spec_n(0)).expect("warm capture");

    tq_faults::install(FaultPlan::seeded(11).with(
        FaultPoint::SlowReplay,
        1.0,
        Duration::from_millis(400),
    ));

    // One job pins the worker, three wait in the queue.
    let waiters: Vec<_> = (1..=4)
        .map(|n| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.submit(spec_n(n))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    client.shutdown().expect("shutdown accepted");

    let mut shed = 0usize;
    for t in waiters {
        match t.join().expect("waiter thread") {
            // The in-flight job may finish normally.
            Ok(_) => {}
            Err(e) => {
                assert!(
                    e.contains("shed"),
                    "queued jobs fail with the shed message, got: {e}"
                );
                shed += 1;
            }
        }
    }
    assert!(shed >= 1, "shutdown shed the backlog");

    server.join().expect("clean join");
}
