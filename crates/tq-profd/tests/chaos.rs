//! Chaos and overload tests: a real server with a seeded `tq-faults` plan
//! installed in-process. The contract under test is the ISSUE's acceptance
//! bar — every submitted job terminates with either a profile that is
//! byte-identical to the fault-free output or an explicit error/busy
//! response; nothing hangs and no reply is dropped.
//!
//! The fault plan is process-global, so these tests serialize on a mutex
//! and always clear the plan on exit (panic included) via a drop guard.

use std::sync::Mutex;
use std::time::Duration;
use tq_faults::{FaultPlan, FaultPoint};
use tq_profd::exec::{record_capture, run_tool};
use tq_profd::{
    AppId, Client, ClientConfig, FleetClient, JobSpec, RetryTrail, Scale, Server, ServerConfig,
    ToolId, Workload,
};
use tq_report::Json;

/// Serializes the tests sharing the global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Clears the installed plan when the test ends, pass or fail.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        tq_faults::clear();
    }
}

fn start(config: ServerConfig) -> (Server, String) {
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// A distinct-but-same-capture job: varying the slice interval changes the
/// result-memo key without needing a new workload capture.
fn spec_n(n: u64) -> JobSpec {
    let mut spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad);
    spec.interval = 1000 + n;
    spec
}

/// Fault-free expected profile for `spec`, computed below the service
/// layer. Must be called with no fault plan installed.
fn expected_profile(trace: &tq_trace::Trace, spec: &JobSpec) -> String {
    assert!(!tq_faults::active(), "expected profiles need a clean plan");
    run_tool(spec, trace, 1)
        .expect("fault-free run_tool")
        .render()
}

/// Poll `cond` until it holds or `limit` passes (then panic).
fn wait_for(limit: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + limit;
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "condition not reached within {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reserve `n` distinct loopback addresses (bind port 0, note, drop) so a
/// fixed roster can be handed to every member before any server binds.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// Queue-full submissions are answered immediately with `busy` and a
/// `retry_after_ms` hint, and `Client::submit_with_retry` rides the hint
/// to an eventual success.
#[test]
fn queue_full_yields_busy_and_retry_succeeds() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let trace = record_capture(&workload, None).expect("capture");
    let want = expected_profile(&trace, &spec_n(3));

    let (server, addr) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });

    // Warm the capture cache so the slow-replay fault below only stretches
    // replay, not the recording single-flight.
    let mut client = Client::connect(&addr).expect("connect");
    client.submit(spec_n(0)).expect("warm capture");

    // From here on every replay takes >= 500ms: one job pins the worker,
    // one fills the queue, and the third must be shed.
    tq_faults::install(FaultPlan::seeded(42).with(
        FaultPoint::SlowReplay,
        1.0,
        Duration::from_millis(500),
    ));

    let occupants: Vec<_> = (1..=2)
        .map(|n| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.submit(spec_n(n))
            })
        })
        .collect();
    // Wait until both occupants actually landed (one in the worker, one in
    // the queue) — a fixed sleep flakes under load.
    wait_for(Duration::from_secs(5), || {
        let stats = Client::connect(&addr)
            .expect("connect for stats")
            .stats()
            .expect("stats");
        stats.get("busy_workers").and_then(Json::as_u64) == Some(1)
            && stats.get("queue_len").and_then(Json::as_u64) == Some(1)
    });

    let resp = client
        .request(&tq_profd::Request::Submit {
            spec: spec_n(3),
            attempt: 0,
            job_id: 0,
        })
        .expect("probe transmits");
    assert!(resp.is_busy(), "queue-full probe must be shed: {resp:?}");
    let hint = resp.retry_after_ms().expect("busy carries retry_after_ms");
    assert!(hint >= 25, "hint respects the floor: {hint}");

    // The resilient path: same job, retried with backoff, succeeds once
    // the occupants drain — and the profile matches the fault-free run.
    let (profile, _cached) = client
        .submit_with_retry(spec_n(3), 10)
        .expect("retry eventually lands");
    assert_eq!(
        profile.render(),
        want,
        "shed-then-retried job is byte-identical"
    );

    for t in occupants {
        t.join().expect("occupant thread").expect("occupant job");
    }

    let stats = client.stats().expect("stats");
    let rejects = stats.get("rejects").and_then(Json::as_u64).unwrap_or(0);
    assert!(rejects >= 1, "stats count the shed submission: {stats:?}");

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
}

/// The chaos soak: a mixed seeded plan (worker panics, read stalls, cache
/// IO errors, slow replays, accept delays) while a batch of jobs runs
/// through `submit_with_retry`. Every job must terminate — a profile
/// byte-identical to its fault-free output, or an explicit error — and the
/// service must report the injections.
#[test]
fn chaos_soak_terminates_every_job_correctly_or_cleanly() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    const JOBS: u64 = 12;
    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let trace = record_capture(&workload, None).expect("capture");
    let expected: Vec<String> = (0..JOBS)
        .map(|n| expected_profile(&trace, &spec_n(n)))
        .collect();

    let state_dir = std::env::temp_dir().join(format!("tq-profd-chaos-{}", std::process::id()));
    let (server, addr) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 4,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });

    tq_faults::install(
        FaultPlan::seeded(7)
            .with(FaultPoint::WorkerPanic, 0.15, Duration::ZERO)
            .with(FaultPoint::ReadStall, 0.20, Duration::from_millis(20))
            .with(FaultPoint::CacheIoError, 0.30, Duration::ZERO)
            .with(FaultPoint::SlowReplay, 0.30, Duration::from_millis(30))
            .with(FaultPoint::AcceptDelay, 0.20, Duration::from_millis(20)),
    );

    let outcomes: Vec<_> = (0..JOBS)
        .map(|n| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let config = ClientConfig {
                    read_timeout: Some(Duration::from_secs(60)),
                    ..ClientConfig::default()
                };
                let mut c = Client::connect_with(&addr, config).expect("connect");
                (n, c.submit_with_retry(spec_n(n), 8))
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("no client thread hangs or panics"))
        .collect();

    let mut ok = 0usize;
    let mut errored = 0usize;
    for (n, outcome) in outcomes {
        match outcome {
            Ok((profile, _cached)) => {
                assert_eq!(
                    profile.render(),
                    expected[n as usize],
                    "job {n} survived chaos but diverged from the fault-free profile"
                );
                ok += 1;
            }
            Err(e) => {
                // Explicit, human-readable failure — never a hang, never a
                // silent drop. Injected worker panics surface here.
                assert!(!e.is_empty(), "job {n} failed without a message");
                errored += 1;
            }
        }
    }
    assert_eq!(ok + errored, JOBS as usize, "every job terminated");
    assert!(ok >= 1, "at least one job survives the plan (seed=7)");

    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    let injected = stats
        .get("faults_injected")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(injected > 0, "the plan actually fired: {stats:?}");

    client.shutdown().expect("shutdown");
    server.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Shutdown under backlog sheds the queued jobs with an explicit error
/// (never leaves a client waiting on a dead socket) and counts them.
#[test]
fn shutdown_sheds_queued_jobs_explicitly() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    let (server, addr) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    client.submit(spec_n(0)).expect("warm capture");

    tq_faults::install(FaultPlan::seeded(11).with(
        FaultPoint::SlowReplay,
        1.0,
        Duration::from_millis(400),
    ));

    // One job pins the worker, three wait in the queue.
    let waiters: Vec<_> = (1..=4)
        .map(|n| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.submit(spec_n(n))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    client.shutdown().expect("shutdown accepted");

    let mut shed = 0usize;
    for t in waiters {
        match t.join().expect("waiter thread") {
            // The in-flight job may finish normally.
            Ok(_) => {}
            Err(e) => {
                assert!(
                    e.contains("shed"),
                    "queued jobs fail with the shed message, got: {e}"
                );
                shed += 1;
            }
        }
    }
    assert!(shed >= 1, "shutdown shed the backlog");

    server.join().expect("clean join");
}

/// Fleet chaos: the owner of a job's digest dies *mid-response* — its one
/// worker is pinned by a slow replay and the routed job sits in its queue
/// when shutdown sheds it. The fleet client must fail over to the next
/// ring node and still produce a byte-identical profile (the survivor
/// records locally once its peek at the dying owner fails).
#[test]
fn fleet_failover_when_owner_dies_mid_response() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let trace = record_capture(&workload, None).expect("capture");
    let want = expected_profile(&trace, &spec_n(2));

    let addrs = reserve_addrs(2);
    let servers: Vec<Server> = addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            Server::start(ServerConfig {
                addr: addr.clone(),
                workers: 1,
                peers,
                ..ServerConfig::default()
            })
            .expect("fleet member starts")
        })
        .collect();

    let mut fc = FleetClient::new(addrs.clone());
    let owner = fc.owner_of(&spec_n(0)).expect("owner");
    let survivor = addrs.iter().find(|a| **a != owner).expect("two nodes");

    // Warm the owner's capture so the fault below only stretches replays.
    Client::connect(&owner)
        .expect("connect owner")
        .submit(spec_n(0))
        .expect("warm capture");

    tq_faults::install(FaultPlan::seeded(7).with(
        FaultPoint::SlowReplay,
        1.0,
        Duration::from_millis(400),
    ));

    // Pin the owner's only worker with a slow replay...
    let pin_addr = owner.clone();
    let pin = std::thread::spawn(move || {
        let mut c = Client::connect(&pin_addr).expect("connect");
        c.submit(spec_n(1))
    });
    wait_for(Duration::from_secs(5), || {
        let stats = Client::connect(&owner)
            .expect("connect for stats")
            .stats()
            .expect("stats");
        stats.get("busy_workers").and_then(Json::as_u64) == Some(1)
    });

    // ...then kill the owner shortly after the routed job lands behind it.
    let trail = {
        // Stop the owner from a helper thread 150ms from now, while the
        // fleet submit below is waiting in its queue.
        let stop_addr = owner.clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            // Shutdown over the wire: same path as Server::request_stop.
            if let Ok(mut c) = Client::connect(&stop_addr) {
                let _ = c.shutdown();
            }
        });
        let mut trail = RetryTrail::default();
        let (profile, _cached, served_by) = fc
            .submit_with_trail(spec_n(2), 5, &mut trail)
            .expect("fleet submit survives the owner dying");
        killer.join().expect("killer thread");
        assert_eq!(profile.render(), want, "failover profile is byte-identical");
        assert_eq!(&served_by, survivor, "served by the surviving ring node");
        trail
    };
    assert!(trail.attempts >= 2, "took more than one attempt: {trail:?}");
    assert!(
        trail.peers_tried.contains(&owner) && trail.peers_tried.contains(survivor),
        "trail names both peers: {trail:?}"
    );

    // The pinned job ran to completion through the graceful shutdown.
    pin.join()
        .expect("pin thread")
        .expect("pinned job finishes");

    tq_faults::clear();
    let survivor_stats = Client::connect(survivor)
        .expect("connect survivor")
        .stats()
        .expect("stats");
    assert_eq!(
        survivor_stats.get("vm_runs").and_then(Json::as_u64),
        Some(1),
        "survivor recorded locally after its peek failed: {survivor_stats:?}"
    );

    let _ = Client::connect(survivor).and_then(|mut c| c.shutdown());
    for s in servers {
        s.join().expect("clean join");
    }
}

/// Fleet chaos: a stale roster entry — the ring names a member that is not
/// running at all. A routed submit must fail over past the corpse to the
/// next ring node and return a byte-identical capture.
#[test]
fn fleet_stale_roster_entry_fails_over() {
    let _lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    tq_faults::clear();

    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let trace = record_capture(&workload, None).expect("capture");
    let want = expected_profile(&trace, &spec_n(0));

    let addrs = reserve_addrs(2);
    // Find which reserved address the ring makes the owner, then start a
    // server ONLY on the other one: the owner entry is stale.
    let digest = workload.digest();
    let ring = tq_fleet::Ring::new(addrs.clone());
    let stale = ring.owner_of(&digest).expect("owner").to_string();
    let live = addrs
        .iter()
        .find(|a| **a != stale)
        .expect("two addrs")
        .clone();
    let server = Server::start(ServerConfig {
        addr: live.clone(),
        workers: 1,
        peers: vec![stale.clone()],
        ..ServerConfig::default()
    })
    .expect("live member starts");

    let mut fc = FleetClient::new(addrs.clone());
    assert_eq!(fc.owner_of(&spec_n(0)), Some(stale.clone()));

    let mut trail = RetryTrail::default();
    let (profile, cached, served_by) = fc
        .submit_with_trail(spec_n(0), 3, &mut trail)
        .expect("submit fails over past the stale entry");
    assert!(!cached);
    assert_eq!(profile.render(), want, "failover profile is byte-identical");
    assert_eq!(served_by, live, "served by the live node");
    assert_eq!(
        trail.peers_tried,
        vec![stale.clone(), live.clone()],
        "owner tried first, then the live node: {trail:?}"
    );

    // The live node recorded locally (peeking a corpse cannot succeed) and
    // counted the failed fetch.
    let stats = Client::connect(&live)
        .expect("connect live")
        .stats()
        .expect("stats");
    assert_eq!(stats.get("vm_runs").and_then(Json::as_u64), Some(1));
    let fetch_failures = stats
        .get("fleet")
        .and_then(|f| f.get("peek_fetch_failures"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(fetch_failures >= 1, "failed peek is counted: {stats:?}");

    let _ = Client::connect(&live).and_then(|mut c| c.shutdown());
    server.join().expect("clean join");
}
