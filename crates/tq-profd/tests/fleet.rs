//! Fleet integration tests: real multi-instance servers on loopback.
//!
//! The property under test is the tentpole contract — the consistent-hash
//! ring *shards* the capture cache instead of duplicating it. A job
//! submitted to the wrong node is served there, but the capture is fetched
//! from its ring owner (which records it on demand), so the fleet performs
//! exactly one VM recording per content digest no matter where jobs land.

use std::net::TcpListener;
use tq_profd::exec::{record_capture, run_tool};
use tq_profd::{
    AppId, Client, FleetClient, JobSpec, Request, Scale, Server, ServerConfig, ToolId, Workload,
};
use tq_report::Json;

/// Reserve `n` distinct loopback addresses: bind ephemeral listeners, note
/// the ports, drop the listeners. The fleet needs every member's address
/// in every roster *before* any server binds, which rules out port 0.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// Start one server per address, each configured with the others as peers.
fn start_fleet(addrs: &[String]) -> Vec<Server> {
    addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            Server::start(ServerConfig {
                addr: addr.clone(),
                workers: 2,
                peers,
                ..ServerConfig::default()
            })
            .expect("fleet member starts")
        })
        .collect()
}

fn spec() -> JobSpec {
    JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad)
}

fn stats_of(addr: &str) -> Json {
    Client::connect(addr)
        .expect("connect for stats")
        .stats()
        .expect("stats")
}

fn u64_at<'a>(j: &'a Json, path: &[&str]) -> u64 {
    let mut cur = j;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {key}: {j:?}"));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("not a u64: {path:?}"))
}

fn shutdown_all(addrs: &[String], servers: Vec<Server>) {
    for addr in addrs {
        let _ = Client::connect(addr).and_then(|mut c| c.shutdown());
    }
    for s in servers {
        s.join().expect("clean join");
    }
}

/// The verify.sh smoke, as a test: submit to the *non-owner* of the job's
/// digest and assert exactly one recording happened fleet-wide — on the
/// owner, via the non-owner's peek — with a byte-identical profile.
#[test]
fn non_owner_submit_records_once_fleetwide_via_peek() {
    let addrs = reserve_addrs(2);
    let servers = start_fleet(&addrs);

    let workload = Workload::build(AppId::Wfs, Scale::Tiny);
    let digest = workload.digest();
    let trace = record_capture(&workload, None).expect("local capture");
    let want = run_tool(&spec(), &trace, 1)
        .expect("fault-free run")
        .render();

    let ring = tq_fleet::Ring::new(addrs.clone());
    let owner = ring.owner_of(&digest).expect("owner").to_string();
    let non_owner = addrs.iter().find(|a| **a != owner).expect("two nodes");

    let mut client = Client::connect(non_owner).expect("connect non-owner");
    let (profile, cached) = client.submit(spec()).expect("submit to non-owner");
    assert!(!cached, "first submit is not a memo hit");
    assert_eq!(profile.render(), want, "routed profile is byte-identical");

    let owner_stats = stats_of(&owner);
    let non_owner_stats = stats_of(non_owner);

    // Exactly one recording fleet-wide, and it lives on the owner.
    assert_eq!(
        u64_at(&owner_stats, &["cache_misses"]),
        1,
        "{owner_stats:?}"
    );
    assert_eq!(u64_at(&owner_stats, &["vm_runs"]), 1);
    assert_eq!(u64_at(&owner_stats, &["fleet", "peek_serves"]), 1);
    assert_eq!(
        u64_at(&non_owner_stats, &["cache_misses"]),
        0,
        "non-owner must not record: {non_owner_stats:?}"
    );
    assert_eq!(u64_at(&non_owner_stats, &["vm_runs"]), 0);
    assert_eq!(u64_at(&non_owner_stats, &["fleet", "peek_fetches"]), 1);
    assert_eq!(u64_at(&non_owner_stats, &["fleet", "remote_owned_jobs"]), 1);

    // Both members report their fleet role and vm_opt in stats.
    for stats in [&owner_stats, &non_owner_stats] {
        assert_eq!(stats.get("role").and_then(Json::as_str), Some("fleet"));
        assert_eq!(stats.get("vm_opt").and_then(Json::as_str), Some("trace"));
    }

    // A repeat on the non-owner is a pure memo hit — still one recording.
    let (profile2, cached2) = client.submit(spec()).expect("repeat submit");
    assert!(cached2, "repeat is memoized");
    assert_eq!(profile2.render(), want);
    assert_eq!(u64_at(&stats_of(&owner), &["vm_runs"]), 1);

    shutdown_all(&addrs, servers);
}

/// Every member answers `route` identically (the ring is deterministic on
/// the shared roster), and exactly one member claims ownership.
#[test]
fn route_answers_agree_across_members() {
    let addrs = reserve_addrs(3);
    let servers = start_fleet(&addrs);

    let mut owners = Vec::new();
    let mut self_claims = 0;
    for addr in &addrs {
        let mut c = Client::connect(addr).expect("connect");
        let resp = c
            .request(&Request::Route {
                spec: spec(),
                job_id: 0,
            })
            .expect("route answered");
        assert!(resp.is_ok(), "{resp:?}");
        owners.push(
            resp.0
                .get("owner")
                .and_then(Json::as_str)
                .expect("owner field")
                .to_string(),
        );
        if resp.0.get("is_owner").and_then(Json::as_bool) == Some(true) {
            self_claims += 1;
        }
    }
    assert!(
        owners.windows(2).all(|w| w[0] == w[1]),
        "members disagree on the owner: {owners:?}"
    );
    assert!(addrs.contains(&owners[0]), "owner is a member");
    assert_eq!(self_claims, 1, "exactly one member claims ownership");

    shutdown_all(&addrs, servers);
}

/// `FleetClient` routes straight to the owner: the non-owners never see
/// the job at all (no peeks, no remote-owned serves).
#[test]
fn fleet_client_routes_to_the_owner() {
    let addrs = reserve_addrs(2);
    let servers = start_fleet(&addrs);

    let mut fc = FleetClient::new(addrs.clone());
    let expected_owner = fc.owner_of(&spec()).expect("owner");
    let (_profile, cached, served_by) = fc.submit(spec(), 3).expect("fleet submit");
    assert!(!cached);
    assert_eq!(served_by, expected_owner, "served by the ring owner");

    for addr in &addrs {
        let stats = stats_of(addr);
        let is_owner = *addr == served_by;
        assert_eq!(
            u64_at(&stats, &["vm_runs"]),
            u64::from(is_owner),
            "only the owner records: {stats:?}"
        );
        assert_eq!(u64_at(&stats, &["fleet", "peek_fetches"]), 0);
        assert_eq!(u64_at(&stats, &["fleet", "remote_owned_jobs"]), 0);
    }

    shutdown_all(&addrs, servers);
}

/// A chunked peek delivers the exact same capture bytes as the legacy
/// single-line form, split into bounded frames instead of one hex line
/// holding 2× the capture. Both forms run against the same server, so the
/// second answer is also the disk/memory-cache fast path.
#[test]
fn chunked_peek_matches_the_legacy_single_line_transfer() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();
    let digest = Workload::build(AppId::Wfs, Scale::Tiny).digest();

    let mut client = Client::connect(&addr).expect("connect");

    // Legacy single-line form first (this records the capture).
    let resp = client
        .request(&Request::Peek {
            app: AppId::Wfs,
            scale: Scale::Tiny,
            digest: digest.clone(),
            chunked: false,
            job_id: 0,
        })
        .expect("legacy peek");
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.0.get("found").and_then(Json::as_bool), Some(true));
    let hex = resp
        .0
        .get("capture_hex")
        .and_then(Json::as_str)
        .expect("capture_hex");
    let legacy = tq_profd::hex_decode(hex).expect("valid hex");

    // Chunked form over the same connection.
    let chunked = client
        .peek_fetch(AppId::Wfs, Scale::Tiny, &digest)
        .expect("chunked peek")
        .expect("capture found");
    assert_eq!(chunked, legacy, "both forms deliver identical bytes");
    assert!(chunked.starts_with(b"TQTRACE"), "framed as a trace");

    // Both decode to the same trace, and the connection survives the
    // multi-line exchange (a follow-up request still works).
    let t1 = tq_trace::Trace::load(&mut legacy.as_slice()).expect("legacy loads");
    let t2 = tq_trace::Trace::load(&mut chunked.as_slice()).expect("chunked loads");
    assert_eq!(t1.digest(), t2.digest());
    assert!(client.ping().expect("ping after peek").is_ok());

    // A miss (wrong digest) is a clean error, not a hang.
    let err = client
        .peek_fetch(AppId::Wfs, Scale::Tiny, "not-a-digest")
        .expect_err("digest mismatch refused");
    assert!(err.contains("mismatch"), "{err}");

    let _ = client.shutdown();
    server.join().expect("clean join");
}

/// A server with no peers serves alone: `role` says so, and there is no
/// `fleet` stats block to mislead dashboards.
#[test]
fn single_node_reports_single_role() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();
    let stats = stats_of(&addr);
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("single"));
    assert_eq!(stats.get("vm_opt").and_then(Json::as_str), Some("trace"));
    assert!(stats.get("fleet").is_none(), "{stats:?}");
    let _ = Client::connect(&addr).and_then(|mut c| c.shutdown());
    server.join().expect("clean join");
}
