//! Fleet telemetry integration tests: a live 2-node fleet on loopback.
//!
//! The tentpole contract under test: one routed submit through the
//! non-owner leaves a correlated telemetry picture — the distributed
//! `job_id` tags spans on the wire and in the logs, the `trace`/`logs`
//! endpoints answer with parseable documents, and the `tq_job_*` /
//! `tq_log_*` / `tq_fleet_*` Prometheus series move.
//!
//! Everything here runs in ONE process, so both servers (and the client)
//! share one `tq-obs` registry, span ring and log tail. That makes the
//! counter assertions fleet-wide sums, which is fine — the true
//! cross-process merge (distinct span rings joined by clock-offset
//! estimation) is proved end-to-end by `scripts/verify.sh`.

use std::net::TcpListener;
use tq_profd::telemetry::{fetch_merged_trace, merge_prometheus};
use tq_profd::{
    job_id_hex, AppId, Client, ClientConfig, JobSpec, RetryTrail, Scale, Server, ServerConfig,
    ToolId, Workload,
};
use tq_report::Json;

fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn start_fleet(addrs: &[String]) -> Vec<Server> {
    addrs
        .iter()
        .map(|addr| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            Server::start(ServerConfig {
                addr: addr.clone(),
                workers: 2,
                peers,
                ..ServerConfig::default()
            })
            .expect("fleet member starts")
        })
        .collect()
}

fn shutdown_all(addrs: &[String], servers: Vec<Server>) {
    for addr in addrs {
        let _ = Client::connect(addr).and_then(|mut c| c.shutdown());
    }
    for s in servers {
        s.join().expect("clean join");
    }
}

/// Value of one counter sample in a Prometheus exposition (exact-name
/// match, label-free samples only — the per-process registry emits none).
fn sample(metrics: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[test]
fn routed_submit_tags_spans_logs_and_counters_with_one_job_id() {
    tq_obs::set_enabled(true);
    tq_obs::log::set_level(tq_obs::log::Level::Debug);
    tq_obs::log::set_stderr(false);

    let addrs = reserve_addrs(2);
    let servers = start_fleet(&addrs);

    let digest = Workload::build(AppId::Wfs, Scale::Tiny).digest();
    let ring = tq_fleet::Ring::new(addrs.clone());
    let owner = ring.owner_of(&digest).expect("owner").to_string();
    let non_owner = addrs
        .iter()
        .find(|a| **a != owner)
        .expect("two nodes")
        .clone();

    // Route through the NON-owner: the job is served there, the capture
    // is peeked from the owner, and both hops share the minted job_id.
    let mut client = Client::connect(&non_owner).expect("connect non-owner");
    let mut trail = RetryTrail::default();
    let spec = JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad);
    client
        .submit_with_retry_trail(spec, 0, &mut trail)
        .expect("routed submit");

    assert_ne!(trail.job_id, 0, "submission minted a job id");
    assert_eq!(trail.attempts, 1);
    assert_eq!(
        trail.attempt_ms.len(),
        1,
        "one attempt, one elapsed sample: {trail:?}"
    );
    let hex = job_id_hex(trail.job_id);
    assert_eq!(hex.len(), 16, "wire form is fixed-width hex: {hex}");

    // The job_id went over the wire: the server counted a tagged job,
    // not a server-minted one (counters are process-global sums here).
    let metrics = Client::connect(&non_owner)
        .expect("connect")
        .metrics()
        .expect("metrics");
    assert!(
        sample(&metrics, "tq_job_tagged_total").unwrap_or(0) >= 1,
        "tagged-job counter must move: {:?}",
        sample(&metrics, "tq_job_tagged_total")
    );
    assert!(
        sample(&metrics, "tq_log_records_total").unwrap_or(0) >= 1,
        "structured log counter must move"
    );
    assert!(
        sample(&metrics, "tq_fleet_peek_fetches_total").unwrap_or(0) >= 1,
        "routed submit peeks the owner"
    );
    assert!(
        sample(&metrics, "tq_fleet_peek_serves_total").unwrap_or(0) >= 1,
        "owner serves the peek"
    );

    // The logs endpoint answers with parseable JSON-lines records, and
    // the job lifecycle record carries our job_id.
    let (level, records) = Client::connect(&non_owner)
        .expect("connect")
        .logs_tail()
        .expect("logs");
    assert_eq!(level, "debug");
    let mut saw_job_done = false;
    for record in &records {
        let parsed = Json::parse(record).unwrap_or_else(|e| panic!("bad record {record}: {e}"));
        assert!(parsed.get("ts_ns").is_some(), "records are stamped");
        assert!(parsed.get("level").is_some());
        if parsed.get("event").and_then(Json::as_str) == Some("job_done")
            && parsed.get("job_id").and_then(Json::as_str) == Some(hex.as_str())
        {
            saw_job_done = true;
        }
    }
    assert!(
        saw_job_done,
        "a job_done record carries the submission's job_id; got {} records",
        records.len()
    );

    // The trace endpoint answers with a parseable Chrome doc whose job
    // span carries the same correlation key.
    let export = Client::connect(&non_owner)
        .expect("connect")
        .trace_export()
        .expect("trace");
    assert!(export.t1_ns >= export.t0_ns);
    let doc = Json::parse(&export.doc).expect("chrome doc parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let tagged: Vec<&str> = events
        .iter()
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("job_id"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(
        tagged.contains(&hex.as_str()),
        "an exported span carries the job_id ({} tagged spans)",
        tagged.len()
    );

    // The merged fleet trace still carries the key, re-homed per peer.
    let merged = fetch_merged_trace(&addrs, &ClientConfig::default()).expect("merged trace");
    let merged_doc = Json::parse(&merged).expect("merged doc parses");
    let merged_events = merged_doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let process_names: Vec<&str> = merged_events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    for addr in &addrs {
        assert!(
            process_names.contains(&addr.as_str()),
            "every peer gets a named pid track: {process_names:?}"
        );
    }
    assert!(
        merged_events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("job_id"))
                .and_then(Json::as_str)
                == Some(hex.as_str())
        }),
        "merged trace keeps the correlation key"
    );

    // The merged exposition labels every sample with its peer.
    let per_peer: Vec<(String, String)> = addrs
        .iter()
        .map(|addr| {
            let m = Client::connect(addr)
                .expect("connect")
                .metrics()
                .expect("metrics");
            (addr.clone(), m)
        })
        .collect();
    let merged_metrics = merge_prometheus(&per_peer);
    for addr in &addrs {
        assert!(
            merged_metrics.contains(&format!("tq_job_tagged_total{{peer=\"{addr}\"}}")),
            "peer-labelled job counter present for {addr}"
        );
    }
    assert_eq!(
        merged_metrics
            .matches("# TYPE tq_job_tagged_total counter")
            .count(),
        1,
        "headers deduped across peers"
    );

    shutdown_all(&addrs, servers);
}
