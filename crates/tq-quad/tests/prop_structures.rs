//! Randomised tests of QUAD's substrate structures against reference
//! models: AddressSet vs `HashSet<u64>`, ShadowMemory vs `HashMap<u64,u32>`.
//!
//! Formerly proptest-based; now deterministic sweeps driven by the vendored
//! [`tq_isa::prng::Rng`] (zero external crates). `heavy-tests` multiplies
//! the iteration counts.

use std::collections::{HashMap, HashSet};
use tq_isa::prng::Rng;
use tq_quad::{AddressSet, ShadowMemory};

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 16
    } else {
        base
    }
}

fn addr(rng: &mut Rng) -> u64 {
    match rng.index(3) {
        0 => rng.u64_in(0, 255),
        1 => rng.u64_in(4080, 4119), // page straddles
        _ => rng.u64_in(0x1000_0000, 0x1000_00FF),
    }
}

#[test]
fn address_set_matches_hashset() {
    let mut rng = Rng::new(0xADD2_E550);
    for _ in 0..cases(256) {
        let mut ours = AddressSet::new();
        let mut reference: HashSet<u64> = HashSet::new();
        for _ in 0..rng.index(200) {
            let a = addr(&mut rng);
            assert_eq!(ours.insert(a), reference.insert(a), "insert {a:#x}");
        }
        for _ in 0..rng.index(60) {
            let a = addr(&mut rng);
            let len = rng.next_u32() % 16;
            ours.insert_range(a, len);
            for x in a..a + len as u64 {
                reference.insert(x);
            }
        }
        assert_eq!(ours.len(), reference.len() as u64);
        // Membership spot checks around the hot ranges.
        for probe in (0..256).chain(4070..4130) {
            assert_eq!(ours.contains(probe), reference.contains(&probe));
        }
    }
}

#[test]
fn shadow_memory_matches_map() {
    let mut rng = Rng::new(0x5AD0_3333);
    for _ in 0..cases(256) {
        let mut shadow = ShadowMemory::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for _ in 0..1 + rng.index(100) {
            let a = addr(&mut rng);
            let len = 1 + rng.next_u32() % 15;
            let writer = 1 + rng.next_u32() % 7;
            shadow.write(a, len, writer);
            for x in a..a + len as u64 {
                reference.insert(x, writer);
            }
        }
        for probe in (0..300).chain(4060..4140).chain(0x1000_0000..0x1000_0110) {
            assert_eq!(
                shadow.writer_at(probe),
                reference.get(&probe).copied().unwrap_or(0),
                "byte {probe:#x}"
            );
        }
        // for_each_writer agrees with writer_at over a straddling window.
        let mut seen = Vec::new();
        shadow.for_each_writer(4080, 48, |a, w| seen.push((a, w)));
        for (a, w) in seen {
            assert_eq!(w, reference.get(&a).copied().unwrap_or(0));
        }
    }
}
