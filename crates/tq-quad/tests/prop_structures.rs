//! Property-based tests of QUAD's substrate structures against reference
//! models: AddressSet vs `HashSet<u64>`, ShadowMemory vs `HashMap<u64,u32>`.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use tq_quad::{AddressSet, ShadowMemory};

fn addr() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..256,
        4080u64..4120, // page straddles
        0x1000_0000u64..0x1000_0100,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn address_set_matches_hashset(
        singles in prop::collection::vec(addr(), 0..200),
        ranges in prop::collection::vec((addr(), 0u32..16), 0..60),
    ) {
        let mut ours = AddressSet::new();
        let mut reference: HashSet<u64> = HashSet::new();
        for a in singles {
            prop_assert_eq!(ours.insert(a), reference.insert(a));
        }
        for (a, len) in ranges {
            ours.insert_range(a, len);
            for x in a..a + len as u64 {
                reference.insert(x);
            }
        }
        prop_assert_eq!(ours.len(), reference.len() as u64);
        // Membership spot checks around the hot ranges.
        for probe in (0..256).chain(4070..4130) {
            prop_assert_eq!(ours.contains(probe), reference.contains(&probe));
        }
    }

    #[test]
    fn shadow_memory_matches_map(
        writes in prop::collection::vec((addr(), 1u32..16, 1u32..8), 1..100),
    ) {
        let mut shadow = ShadowMemory::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for (a, len, writer) in writes {
            shadow.write(a, len, writer);
            for x in a..a + len as u64 {
                reference.insert(x, writer);
            }
        }
        for probe in (0..300).chain(4060..4140).chain(0x1000_0000..0x1000_0110) {
            prop_assert_eq!(
                shadow.writer_at(probe),
                reference.get(&probe).copied().unwrap_or(0),
                "byte {:#x}", probe
            );
        }
        // for_each_writer agrees with writer_at over a straddling window.
        let mut seen = Vec::new();
        shadow.for_each_writer(4080, 48, |a, w| seen.push((a, w)));
        for (a, w) in seen {
            prop_assert_eq!(w, reference.get(&a).copied().unwrap_or(0));
        }
    }
}
