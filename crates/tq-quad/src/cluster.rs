//! Task clustering from QUAD bindings — the paper's stated future work.
//!
//! §VI: "In future work, we are planning to utilize the information
//! provided by the tool for task clustering in heterogeneous reconfigurable
//! systems", feeding the Delft WorkBench clustering framework whose goal
//! the paper states in §V: "some relevant kernels are clustered together in
//! a sense that the intra-cluster communication is maximized whereas the
//! inter-cluster communication is minimized."
//!
//! This module implements that objective: greedy agglomerative clustering
//! over the QDU graph (bindings = communication volume in bytes), with a
//! per-cluster capacity bound standing in for the reconfigurable fabric's
//! area budget. Combined with [`tq_tquad`]'s phases (kernels active
//! together are candidates for co-residence), this is the hardware/software
//! partitioning front end the Delft WorkBench papers describe.

use crate::tool::QuadProfile;
use std::collections::HashMap;
use tq_isa::RoutineId;

/// Clustering options.
#[derive(Clone, Copy, Debug)]
pub struct ClusterOptions {
    /// Maximum kernels per cluster (the "area" budget; the reconfigurable
    /// device holds only so many kernels at once).
    pub max_cluster_size: usize,
    /// Stop merging when the best edge carries fewer bytes than this.
    pub min_edge_bytes: u64,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            max_cluster_size: 8,
            min_edge_bytes: 1,
        }
    }
}

/// One cluster of communicating kernels.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Member kernels.
    pub kernels: Vec<RoutineId>,
    /// Bytes exchanged between members (the maximised quantity).
    pub internal_bytes: u64,
}

/// A clustering result.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Clusters, largest internal communication first.
    pub clusters: Vec<Cluster>,
    /// Bytes crossing cluster boundaries (the minimised quantity).
    pub cut_bytes: u64,
}

impl Clustering {
    /// Total communication covered (internal + cut).
    pub fn total_bytes(&self) -> u64 {
        self.clusters.iter().map(|c| c.internal_bytes).sum::<u64>() + self.cut_bytes
    }

    /// Fraction of all communication kept inside clusters — the quality
    /// metric of the DWB objective.
    pub fn internal_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.cut_bytes as f64 / total as f64
    }

    /// The cluster containing `kernel`, if any.
    pub fn cluster_of(&self, kernel: RoutineId) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.kernels.contains(&kernel))
    }
}

/// Cluster the kernels of a QUAD profile by communication volume.
///
/// Greedy agglomeration: repeatedly merge the two clusters joined by the
/// heaviest inter-cluster edge, subject to the size bound — the classic
/// Kernighan-Lin-style seed the DWB clustering papers start from. Kernels
/// with no communication at all are left out of the result.
pub fn cluster_by_communication(profile: &QuadProfile, opts: ClusterOptions) -> Clustering {
    // Symmetric communication matrix over kernels that communicate.
    let mut weight: HashMap<(u32, u32), u64> = HashMap::new();
    let mut seen: Vec<u32> = Vec::new();
    for b in &profile.bindings {
        let (p, c) = (b.producer.0, b.consumer.0);
        if p == c {
            // Self-communication is internal by definition; it does not
            // drive merging.
            continue;
        }
        let key = (p.min(c), p.max(c));
        *weight.entry(key).or_insert(0) += b.bytes;
        for k in [p, c] {
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
    }
    seen.sort_unstable();

    // Disjoint clusters, merged greedily.
    let mut clusters: Vec<Vec<u32>> = seen.iter().map(|&k| vec![k]).collect();
    let inter = |a: &[u32], b: &[u32], w: &HashMap<(u32, u32), u64>| -> u64 {
        let mut sum = 0;
        for &x in a {
            for &y in b {
                sum += w.get(&(x.min(y), x.max(y))).copied().unwrap_or(0);
            }
        }
        sum
    };
    loop {
        let mut best: Option<(usize, usize, u64)> = None;
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                if clusters[i].len() + clusters[j].len() > opts.max_cluster_size {
                    continue;
                }
                let w = inter(&clusters[i], &clusters[j], &weight);
                if w >= opts.min_edge_bytes && best.is_none_or(|(_, _, bw)| w > bw) {
                    best = Some((i, j, w));
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let merged = clusters.remove(j);
                clusters[i].extend(merged);
            }
            None => break,
        }
    }

    // Score.
    let mut out = Vec::new();
    let mut cut = 0u64;
    for (i, members) in clusters.iter().enumerate() {
        let mut internal = 0u64;
        for a in 0..members.len() {
            for b in a + 1..members.len() {
                let (x, y) = (members[a], members[b]);
                internal += weight.get(&(x.min(y), x.max(y))).copied().unwrap_or(0);
            }
        }
        // Self-bindings are internal too.
        for b in &profile.bindings {
            if b.producer == b.consumer && members.contains(&b.producer.0) {
                internal += b.bytes;
            }
        }
        for other in clusters.iter().skip(i + 1) {
            cut += inter(members, other, &weight);
        }
        out.push(Cluster {
            kernels: members.iter().map(|&k| RoutineId(k)).collect(),
            internal_bytes: internal,
        });
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.internal_bytes));
    Clustering {
        clusters: out,
        cut_bytes: cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{QuadBinding, QuadRow};

    fn profile(edges: &[(u32, u32, u64)], n: u32) -> QuadProfile {
        QuadProfile {
            include_stack: true,
            rows: (0..n)
                .map(|i| QuadRow {
                    rtn: RoutineId(i),
                    name: format!("k{i}"),
                    main_image: true,
                    in_bytes: 1,
                    in_unma: 1,
                    out_bytes: 1,
                    out_unma: 1,
                    checked_accesses: 0,
                    traced_accesses: 0,
                })
                .collect(),
            bindings: edges
                .iter()
                .map(|&(p, c, bytes)| QuadBinding {
                    producer: RoutineId(p),
                    consumer: RoutineId(c),
                    bytes,
                    unma: 1,
                })
                .collect(),
            instr: None,
        }
    }

    #[test]
    fn two_obvious_communities() {
        // {0,1,2} talk a lot among themselves, {3,4} likewise; one thin
        // edge between the groups.
        let p = profile(
            &[
                (0, 1, 1000),
                (1, 2, 900),
                (0, 2, 800),
                (3, 4, 1000),
                (2, 3, 10), // the cut edge
            ],
            5,
        );
        let c = cluster_by_communication(
            &p,
            ClusterOptions {
                max_cluster_size: 3,
                ..Default::default()
            },
        );
        assert_eq!(c.clusters.len(), 2);
        assert_eq!(c.cut_bytes, 10);
        assert!(c.internal_fraction() > 0.99);
        assert_eq!(c.cluster_of(RoutineId(0)), c.cluster_of(RoutineId(2)));
        assert_ne!(c.cluster_of(RoutineId(0)), c.cluster_of(RoutineId(3)));
    }

    #[test]
    fn size_bound_is_respected() {
        let p = profile(&[(0, 1, 10), (1, 2, 10), (2, 3, 10), (3, 0, 10)], 4);
        let c = cluster_by_communication(
            &p,
            ClusterOptions {
                max_cluster_size: 2,
                ..Default::default()
            },
        );
        for cl in &c.clusters {
            assert!(cl.kernels.len() <= 2);
        }
        assert!(
            c.cut_bytes > 0,
            "a bounded clustering must cut something here"
        );
    }

    #[test]
    fn self_bindings_count_as_internal() {
        let p = profile(&[(0, 0, 500), (0, 1, 10)], 2);
        let c = cluster_by_communication(&p, ClusterOptions::default());
        assert_eq!(c.cut_bytes, 0, "everything merges");
        assert_eq!(c.clusters[0].internal_bytes, 510);
    }

    #[test]
    fn silent_kernels_are_omitted() {
        let p = profile(&[(0, 1, 10)], 4);
        let c = cluster_by_communication(&p, ClusterOptions::default());
        let members: usize = c.clusters.iter().map(|cl| cl.kernels.len()).sum();
        assert_eq!(members, 2, "kernels 2 and 3 never communicate");
    }

    #[test]
    fn min_edge_threshold_stops_merging() {
        let p = profile(&[(0, 1, 5), (2, 3, 5000)], 4);
        let c = cluster_by_communication(
            &p,
            ClusterOptions {
                min_edge_bytes: 100,
                ..Default::default()
            },
        );
        // Only the heavy pair merges; the light pair stays split.
        assert_eq!(
            c.clusters.iter().filter(|cl| cl.kernels.len() == 2).count(),
            1
        );
        assert_eq!(c.cut_bytes, 5);
    }
}
