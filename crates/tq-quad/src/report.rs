//! Table II rendering and QDU graph export.

use crate::tool::QuadProfile;
use tq_report::{n, Align, Digraph, Table};

/// Build the paper's Table II: per kernel, IN / IN UnMA / OUT / OUT UnMA
/// with stack accesses excluded and included, from two runs of the tool.
///
/// Panics if the two profiles disagree on their stack setting (they must be
/// one excluded, one included run).
pub fn table2(excl: &QuadProfile, incl: &QuadProfile) -> Table {
    assert!(
        !excl.include_stack && incl.include_stack,
        "pass (excluded, included) profiles"
    );
    let mut t =
        Table::new("Data produced/consumed by the kernels (stack excluded | stack included)")
            .col("kernel", Align::Left)
            .col("IN", Align::Right)
            .col("IN UnMA", Align::Right)
            .col("OUT", Align::Right)
            .col("OUT UnMA", Align::Right)
            .col("IN (incl)", Align::Right)
            .col("IN UnMA (incl)", Align::Right)
            .col("OUT (incl)", Align::Right)
            .col("OUT UnMA (incl)", Align::Right);

    let mut names: Vec<&str> = incl
        .rows
        .iter()
        .filter(|r| r.in_bytes + r.out_bytes + r.out_unma > 0)
        .map(|r| r.name.as_str())
        .collect();
    names.sort();
    for name in names {
        let e = excl.row(name);
        let i = incl.row(name).expect("row exists in included profile");
        t.row(vec![
            name.to_string(),
            e.map(|r| n(r.in_bytes)).unwrap_or_default(),
            e.map(|r| n(r.in_unma)).unwrap_or_default(),
            e.map(|r| n(r.out_bytes)).unwrap_or_default(),
            e.map(|r| n(r.out_unma)).unwrap_or_default(),
            n(i.in_bytes),
            n(i.in_unma),
            n(i.out_bytes),
            n(i.out_unma),
        ]);
    }
    t
}

/// Export the Quantitative Data Usage graph: kernels as nodes, bindings as
/// edges labelled with bytes and UnMA. Edges under `min_bytes` are dropped
/// to keep the graph legible.
pub fn qdu_graph(profile: &QuadProfile, min_bytes: u64) -> Digraph {
    let mut g = Digraph::new("QDU");
    for b in &profile.bindings {
        if b.bytes < min_bytes {
            continue;
        }
        let p = &profile.rows[b.producer.idx()].name;
        let c = &profile.rows[b.consumer.idx()].name;
        g.node(p.clone(), p.clone());
        g.node(c.clone(), c.clone());
        g.edge(
            p.clone(),
            c.clone(),
            format!("{} B / {} UnMA", b.bytes, b.unma),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{QuadBinding, QuadRow};
    use tq_isa::RoutineId;

    fn profile(include_stack: bool, in_bytes: u64) -> QuadProfile {
        QuadProfile {
            include_stack,
            rows: vec![QuadRow {
                rtn: RoutineId(0),
                name: "k".into(),
                main_image: true,
                in_bytes,
                in_unma: 4,
                out_bytes: 2,
                out_unma: 2,
                checked_accesses: 10,
                traced_accesses: 5,
            }],
            bindings: vec![QuadBinding {
                producer: RoutineId(0),
                consumer: RoutineId(0),
                bytes: 2,
                unma: 2,
            }],
            instr: None,
        }
    }

    #[test]
    fn table2_combines_runs() {
        let t = table2(&profile(false, 8), &profile(true, 100));
        let s = t.render();
        assert!(s.contains("k"));
        assert!(s.contains("100"));
        assert!(s.contains("8"));
    }

    #[test]
    #[should_panic(expected = "excluded, included")]
    fn table2_rejects_swapped_profiles() {
        table2(&profile(true, 1), &profile(false, 1));
    }

    #[test]
    fn qdu_graph_filters_small_edges() {
        let p = profile(true, 8);
        assert_eq!(qdu_graph(&p, 1).edge_count(), 1);
        assert_eq!(qdu_graph(&p, 1000).edge_count(), 0);
        assert!(qdu_graph(&p, 1).render().contains("2 B / 2 UnMA"));
    }
}
