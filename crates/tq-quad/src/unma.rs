//! Compact sets of byte addresses — the UnMA (Unique Memory Address)
//! counters of QUAD's Table II.
//!
//! The paper's `wav_store` touches ~65 *million* distinct addresses; a
//! `HashSet<u64>` costs ~48 bytes per element where this page-bitmap
//! representation costs one bit (plus one 4 KiB bitmap per touched page).
//! The `unma_sets` bench quantifies the difference; this module is the
//! production representation.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const WORDS_PER_PAGE: usize = 4096 / 64;

/// A set of 64-bit byte addresses, one bit per address within 4 KiB pages.
///
/// ```
/// use tq_quad::AddressSet;
/// let mut s = AddressSet::new();
/// s.insert_range(0x1000, 8);
/// assert!(s.contains(0x1007) && !s.contains(0x1008));
/// assert_eq!(s.len(), 8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AddressSet {
    pages: HashMap<u64, Box<[u64; WORDS_PER_PAGE]>>,
    len: u64,
}

impl AddressSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an address; returns true if it was new.
    #[inline]
    pub fn insert(&mut self, addr: u64) -> bool {
        let page = addr >> PAGE_SHIFT;
        let off = (addr & 0xFFF) as usize;
        let bitmap = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u64; WORDS_PER_PAGE]));
        let word = &mut bitmap[off / 64];
        let mask = 1u64 << (off % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Insert a contiguous range `[addr, addr+len)` (one access of `len`
    /// bytes). Ranges that stay within one 64-bit bitmap word — every
    /// aligned access of ≤ 8 bytes — take a single-mask fast path.
    #[inline]
    pub fn insert_range(&mut self, addr: u64, len: u32) {
        if len == 0 {
            return;
        }
        let off = (addr & 0xFFF) as usize;
        if len <= 8 && off / 64 == (off + len as usize - 1) / 64 {
            let page = addr >> PAGE_SHIFT;
            let bitmap = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u64; WORDS_PER_PAGE]));
            let word = &mut bitmap[off / 64];
            let mask = (u64::MAX >> (64 - len)) << (off % 64);
            self.len += (mask & !*word).count_ones() as u64;
            *word |= mask;
            return;
        }
        // Clip at the top of the address space rather than overflowing
        // (only reachable via corrupt replayed traces).
        for a in addr..addr.saturating_add(len as u64) {
            self.insert(a);
        }
    }

    /// Union another set into this one, page-bitmap-wise (`len` tracks the
    /// newly set bits). The reduce step for UnMA counters in sharded
    /// replay: a union of per-shard address sets is exactly the sequential
    /// set, since addresses dedupe no matter which shard touched them.
    pub fn union(&mut self, other: &AddressSet) {
        for (page, src) in &other.pages {
            let dst = self
                .pages
                .entry(*page)
                .or_insert_with(|| Box::new([0u64; WORDS_PER_PAGE]));
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                self.len += (s & !*d).count_ones() as u64;
                *d |= s;
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, addr: u64) -> bool {
        let page = addr >> PAGE_SHIFT;
        let off = (addr & 0xFFF) as usize;
        match self.pages.get(&page) {
            Some(b) => b[off / 64] & (1u64 << (off % 64)) != 0,
            None => false,
        }
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes (for the ablation bench).
    pub fn heap_bytes(&self) -> usize {
        self.pages.len() * (WORDS_PER_PAGE * 8 + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = AddressSet::new();
        assert!(s.insert(0x1000));
        assert!(!s.insert(0x1000), "duplicate");
        assert!(s.insert(0x1001));
        assert!(s.contains(0x1000));
        assert!(!s.contains(0x0FFF));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn range_insert_counts_bytes() {
        let mut s = AddressSet::new();
        s.insert_range(0x2000 - 3, 8); // straddles a page boundary
        assert_eq!(s.len(), 8);
        assert!(s.contains(0x1FFD));
        assert!(s.contains(0x2004));
        assert!(!s.contains(0x2005));
    }

    #[test]
    fn page_boundaries() {
        let mut s = AddressSet::new();
        s.insert(0x0FFF);
        s.insert(0x1000);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pages.len(), 2);
    }

    #[test]
    fn overlapping_ranges_dedupe() {
        let mut s = AddressSet::new();
        s.insert_range(100, 8);
        s.insert_range(104, 8);
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn union_counts_overlap_once() {
        let mut a = AddressSet::new();
        a.insert_range(100, 8);
        let mut b = AddressSet::new();
        b.insert_range(104, 8); // 4 bytes overlap
        b.insert(0x5000); // different page
        a.union(&b);
        assert_eq!(a.len(), 13);
        assert!(a.contains(100) && a.contains(111) && a.contains(0x5000));
        // Union with an empty set is identity both ways.
        let before = a.len();
        a.union(&AddressSet::new());
        assert_eq!(a.len(), before);
        let mut empty = AddressSet::new();
        empty.union(&a);
        assert_eq!(empty.len(), a.len());
    }

    /// Differential check against a HashSet reference over random inserts.
    #[test]
    fn matches_hashset_reference() {
        use std::collections::HashSet;
        let mut ours = AddressSet::new();
        let mut reference = HashSet::new();
        let mut x: u64 = 0x12345;
        for _ in 0..10_000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % 100_000;
            assert_eq!(ours.insert(addr), reference.insert(addr));
        }
        assert_eq!(ours.len(), reference.len() as u64);
        for a in 0..1000 {
            assert_eq!(ours.contains(a), reference.contains(&a));
        }
    }
}
