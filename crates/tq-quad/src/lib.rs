//! # tq-quad — the QUAD memory access pattern analyser
//!
//! tQUAD is "designed as a complementary profiler in a dynamic profiling
//! framework along with QUAD", the group's quantitative data-usage tool
//! (ARC 2010). The paper's Table II and the QDU graph come from QUAD, so
//! the reproduction includes it: byte-granular last-writer shadow memory,
//! per-kernel IN/OUT byte and unique-memory-address (UnMA) accounting, and
//! producer→consumer binding extraction.
//!
//! * [`QuadTool`] — the VM plug-in;
//! * [`QuadProfile`] — per-kernel rows + bindings;
//! * [`table2`] / [`qdu_graph`] — Table II and QDU-graph rendering;
//! * [`AddressSet`] / [`ShadowMemory`] — the compact substrate structures;
//! * [`cluster_by_communication`] — the paper's stated future work: task
//!   clustering that maximises intra-cluster communication (the Delft
//!   WorkBench partitioning objective).

pub mod cluster;
pub mod report;
pub mod shadow;
pub mod tool;
pub mod unma;

pub use cluster::{cluster_by_communication, Cluster, ClusterOptions, Clustering};
pub use report::{qdu_graph, table2};
pub use shadow::ShadowMemory;
pub use tool::{Binding, QuadBinding, QuadOptions, QuadProfile, QuadRow, QuadTool};
pub use unma::AddressSet;
