//! The QUAD tool: quantitative data-usage analysis (the companion tool the
//! paper builds on, [Ostadzadeh et al., ARC 2010]).
//!
//! Per kernel it measures, with stack accesses included or excluded:
//!
//! * **IN** — total bytes read by the kernel;
//! * **IN UnMA** — unique addresses the kernel read;
//! * **OUT** — bytes read *by any kernel* from addresses this kernel wrote
//!   (consumption of its productions);
//! * **OUT UnMA** — unique addresses the kernel wrote;
//!
//! plus the producer→consumer **bindings** that form the QDU graph, and a
//! per-kernel count of checked/traced accesses that models the tool's own
//! analysis cost (used for the paper's Table III "QUAD-instrumented"
//! profile).

use crate::shadow::ShadowMemory;
use crate::unma::AddressSet;
use std::collections::HashMap;
use tq_isa::RoutineId;
use tq_tquad::{CallStack, LibPolicy};
use tq_vm::{
    hooks, is_stack_access, Event, HookMask, InsContext, InstrInfo, MergeTool, ProgramInfo,
    ShardContext, Tool,
};

/// QUAD options.
#[derive(Clone, Copy, Debug)]
pub struct QuadOptions {
    /// Include local stack-area accesses (the paper's Table II reports both
    /// settings from separate runs; so does this tool).
    pub include_stack: bool,
    /// Library-routine policy (shared with tQUAD).
    pub lib_policy: LibPolicy,
}

impl Default for QuadOptions {
    fn default() -> Self {
        QuadOptions {
            include_stack: true,
            lib_policy: LibPolicy::AttributeToCaller,
        }
    }
}

#[derive(Default)]
struct KernelData {
    in_bytes: u64,
    out_bytes: u64,
    in_unma: AddressSet,
    out_unma: AddressSet,
    /// Memory-access events inspected by the instrumentation routine.
    checked_accesses: u64,
    /// Accesses that reached an analysis (tracing) routine — non-stack
    /// accesses, per the paper's description of the QUAD-instrumented run.
    traced_accesses: u64,
}

/// The QUAD analysis tool.
pub struct QuadTool {
    opts: QuadOptions,
    names: Vec<String>,
    tracked: Vec<bool>,
    main_image: Vec<bool>,
    stack: CallStack,
    shadow: ShadowMemory,
    kernels: Vec<KernelData>,
    bindings: HashMap<(u32, u32), Binding>,
    /// True in a forked shard worker: reads of bytes with no writer in the
    /// *local* shadow may have a producer in an earlier chunk, so they are
    /// logged as orphans instead of being dismissed.
    shard_mode: bool,
    /// Orphan reads: (address, consuming kernel) → byte count, resolved
    /// against the accumulated prefix shadow at absorb time.
    orphans: HashMap<(u64, u32), u64>,
    /// Reduced-instrumentation metadata of the producing run (see
    /// [`Tool::on_instr`]); `None` under full instrumentation.
    instr: Option<InstrInfo>,
}

/// One producer→consumer binding (an edge of the QDU graph).
#[derive(Default, Debug)]
pub struct Binding {
    /// Bytes that flowed over the edge.
    pub bytes: u64,
    /// Unique addresses the data flowed through (QUAD's UnDV).
    pub unma: AddressSet,
}

impl QuadTool {
    /// New tool.
    pub fn new(opts: QuadOptions) -> Self {
        QuadTool {
            opts,
            names: Vec::new(),
            tracked: Vec::new(),
            main_image: Vec::new(),
            stack: CallStack::new(),
            shadow: ShadowMemory::new(),
            kernels: Vec::new(),
            bindings: HashMap::new(),
            shard_mode: false,
            orphans: HashMap::new(),
            instr: None,
        }
    }

    #[inline]
    fn attribute(&self, static_rtn: RoutineId) -> Option<u32> {
        match self.stack.current() {
            Some(k) => Some(k.0),
            None => {
                if static_rtn != RoutineId::INVALID && self.tracked[static_rtn.idx()] {
                    Some(static_rtn.0)
                } else {
                    None
                }
            }
        }
    }

    /// Consume the tool into its results. For a gated run (`--instr
    /// sample:…`/`converge:…`) the byte totals (`IN`, `OUT`, binding
    /// bytes) are scaled by the inverse observed coverage — they are
    /// volume estimates — while the UnMA counts stay as measured: unseen
    /// addresses cannot be invented, so those are reported as lower
    /// bounds, flagged by the attached [`QuadInstrNote`].
    pub fn into_profile(self) -> QuadProfile {
        let _span = tq_obs::span("quad-flush", "tool");
        let note = self.instr.as_ref().map(|info| QuadInstrNote {
            spec: info.spec.clone(),
            coverage_ppm: (info.coverage() * 1e6).round() as u64,
        });
        let scale = |v: u64| -> u64 {
            match &note {
                Some(n) if n.coverage_ppm > 0 && n.coverage_ppm < 1_000_000 => {
                    (v as u128 * 1_000_000 / n.coverage_ppm as u128) as u64
                }
                _ => v,
            }
        };
        let rows: Vec<QuadRow> = self
            .names
            .into_iter()
            .zip(self.kernels)
            .zip(self.main_image)
            .enumerate()
            .map(|(i, ((name, k), main_image))| QuadRow {
                rtn: RoutineId(i as u32),
                name,
                main_image,
                in_bytes: scale(k.in_bytes),
                in_unma: k.in_unma.len(),
                out_bytes: scale(k.out_bytes),
                out_unma: k.out_unma.len(),
                checked_accesses: k.checked_accesses,
                traced_accesses: k.traced_accesses,
            })
            .collect();
        let mut bindings: Vec<QuadBinding> = self
            .bindings
            .into_iter()
            .map(|((p, c), b)| QuadBinding {
                producer: RoutineId(p),
                consumer: RoutineId(c),
                bytes: scale(b.bytes),
                unma: b.unma.len(),
            })
            .collect();
        // Deterministic order: HashMap iteration is randomised per process,
        // and sharded replay must render byte-identically to sequential.
        bindings.sort_by_key(|b| (b.producer.0, b.consumer.0));
        {
            use std::sync::OnceLock;
            static ROWS: OnceLock<tq_obs::Counter> = OnceLock::new();
            ROWS.get_or_init(|| {
                tq_obs::counter(
                    "tq_quad_rows_flushed_total",
                    "QUAD profile rows flushed by into_profile",
                )
            })
            .add(rows.len() as u64);
        }
        QuadProfile {
            include_stack: self.opts.include_stack,
            rows,
            bindings,
            instr: note,
        }
    }
}

impl Tool for QuadTool {
    fn name(&self) -> &str {
        "quad"
    }

    fn on_attach(&mut self, info: &ProgramInfo) {
        for r in &info.routines {
            let tracked = match self.opts.lib_policy {
                LibPolicy::Track => true,
                LibPolicy::AttributeToCaller | LibPolicy::Drop => r.main_image,
            };
            self.tracked.push(tracked);
            self.main_image.push(r.main_image);
            self.names.push(r.name.clone());
            self.kernels.push(KernelData::default());
        }
    }

    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
        let mut m = hooks::NONE;
        if ins.inst.may_read_memory() {
            m |= hooks::MEM_READ;
        }
        if ins.inst.may_write_memory() {
            m |= hooks::MEM_WRITE;
        }
        if ins.inst.is_ret() {
            m |= hooks::RET;
        }
        if ins.is_rtn_start {
            m |= hooks::RTN_ENTER;
        }
        m
    }

    fn event_mask(&self) -> HookMask {
        // Replay delivery mask: QUAD never inspects Call or Tick events.
        hooks::MEM_READ | hooks::MEM_WRITE | hooks::RET | hooks::RTN_ENTER
    }

    fn on_instr(&mut self, info: &InstrInfo) {
        self.instr = Some(info.clone());
    }

    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::MemRead {
                ea,
                size,
                sp,
                is_prefetch,
                rtn,
                ..
            } => {
                if is_prefetch {
                    return;
                }
                if self.opts.lib_policy == LibPolicy::Drop
                    && rtn != RoutineId::INVALID
                    && !self.tracked[rtn.idx()]
                {
                    return;
                }
                let Some(k) = self.attribute(rtn) else { return };
                let ki = k as usize;
                self.kernels[ki].checked_accesses += 1;
                let is_stack = is_stack_access(ea, sp);
                if !is_stack {
                    self.kernels[ki].traced_accesses += 1;
                }
                if is_stack && !self.opts.include_stack {
                    return;
                }
                self.kernels[ki].in_bytes += size as u64;
                self.kernels[ki].in_unma.insert_range(ea, size);
                // Producer lookup per byte; consumption is charged to the
                // producer's OUT and recorded as a binding edge. Disjoint
                // field borrows keep this allocation-free on the hot path.
                let shadow = &self.shadow;
                let kernels = &mut self.kernels;
                let bindings = &mut self.bindings;
                let orphans = &mut self.orphans;
                let shard_mode = self.shard_mode;
                shadow.for_each_writer(ea, size, |addr, w| {
                    if w != 0 {
                        let producer = w - 1;
                        kernels[producer as usize].out_bytes += 1;
                        let b = bindings.entry((producer, k)).or_default();
                        b.bytes += 1;
                        b.unma.insert(addr);
                    } else if shard_mode {
                        // The producer (if any) wrote in an earlier chunk;
                        // resolved against the prefix shadow at absorb.
                        *orphans.entry((addr, k)).or_insert(0) += 1;
                    }
                });
            }
            Event::MemWrite {
                ea, size, sp, rtn, ..
            } => {
                if self.opts.lib_policy == LibPolicy::Drop
                    && rtn != RoutineId::INVALID
                    && !self.tracked[rtn.idx()]
                {
                    return;
                }
                let Some(k) = self.attribute(rtn) else { return };
                let ki = k as usize;
                self.kernels[ki].checked_accesses += 1;
                let is_stack = is_stack_access(ea, sp);
                if !is_stack {
                    self.kernels[ki].traced_accesses += 1;
                }
                if is_stack && !self.opts.include_stack {
                    return;
                }
                self.kernels[ki].out_unma.insert_range(ea, size);
                self.shadow.write(ea, size, k + 1);
            }
            Event::RoutineEnter { rtn, sp, .. } if self.tracked[rtn.idx()] => {
                self.stack.enter(rtn, sp);
            }
            Event::Ret { rtn, .. } => {
                self.stack.ret_in(rtn);
            }
            _ => {}
        }
    }
}

impl MergeTool for QuadTool {
    fn fork(&self, info: &ProgramInfo, ctx: &ShardContext) -> Box<dyn MergeTool> {
        let mut t = QuadTool::new(self.opts);
        t.shard_mode = true;
        t.on_attach(info);
        for &(rtn, sp) in ctx.frames(self.opts.lib_policy == LibPolicy::Track) {
            t.stack.enter(rtn, sp);
        }
        Box::new(t)
    }

    /// Fold a finished shard in. Order is the whole point:
    ///
    /// 1. the worker's orphan reads are resolved against `self.shadow`,
    ///    which (workers being absorbed in chunk order) holds exactly the
    ///    last-writer map of the worker's prefix — producers in earlier
    ///    chunks get their OUT bytes and binding edges stitched here;
    /// 2. only then is the worker's shadow overlaid (its writes are newer);
    /// 3. counters sum and UnMA sets union, both order-insensitive.
    fn absorb(&mut self, other: Box<dyn MergeTool>) {
        let other = other
            .into_any()
            .downcast::<QuadTool>()
            .expect("absorb: shard is not a QuadTool");
        let QuadTool {
            shadow: other_shadow,
            kernels: other_kernels,
            bindings: other_bindings,
            orphans: other_orphans,
            ..
        } = *other;

        for ((addr, consumer), count) in other_orphans {
            let w = self.shadow.writer_at(addr);
            if w != 0 {
                let producer = w - 1;
                self.kernels[producer as usize].out_bytes += count;
                let b = self.bindings.entry((producer, consumer)).or_default();
                b.bytes += count;
                b.unma.insert(addr);
            } else if self.shard_mode {
                // This tool is itself a shard of a larger fold: pass the
                // still-unresolved read up to the next level.
                *self.orphans.entry((addr, consumer)).or_insert(0) += count;
            }
        }
        self.shadow.overlay(&other_shadow);
        for (k, ok) in self.kernels.iter_mut().zip(other_kernels) {
            k.in_bytes += ok.in_bytes;
            k.out_bytes += ok.out_bytes;
            k.checked_accesses += ok.checked_accesses;
            k.traced_accesses += ok.traced_accesses;
            k.in_unma.union(&ok.in_unma);
            k.out_unma.union(&ok.out_unma);
        }
        for (edge, b) in other_bindings {
            let mine = self.bindings.entry(edge).or_default();
            mine.bytes += b.bytes;
            mine.unma.union(&b.unma);
        }
    }
}

/// One Table II row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuadRow {
    /// Routine id.
    pub rtn: RoutineId,
    /// Kernel name.
    pub name: String,
    /// Whether the kernel is in the main image.
    pub main_image: bool,
    /// Total bytes read.
    pub in_bytes: u64,
    /// Unique addresses read.
    pub in_unma: u64,
    /// Bytes read by anyone from addresses this kernel wrote.
    pub out_bytes: u64,
    /// Unique addresses written.
    pub out_unma: u64,
    /// Access events inspected (instrumentation-routine invocations).
    pub checked_accesses: u64,
    /// Access events traced (non-stack analysis-routine invocations).
    pub traced_accesses: u64,
}

/// A producer→consumer edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuadBinding {
    /// Writing kernel.
    pub producer: RoutineId,
    /// Reading kernel.
    pub consumer: RoutineId,
    /// Bytes transferred.
    pub bytes: u64,
    /// Unique addresses involved.
    pub unma: u64,
}

/// Provenance note for a QUAD profile built from a reduced-instrumentation
/// run. Byte totals (`IN`, `OUT`, binding bytes) were scaled up by the
/// inverse coverage; UnMA counts and binding `unma` are **unscaled lower
/// bounds** — addresses never observed cannot be reconstructed. See
/// `docs/ACCURACY.md`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuadInstrNote {
    /// Canonical `--instr` spec of the producing run.
    pub spec: String,
    /// Observed coverage in parts per million (1 000 000 = exact).
    pub coverage_ppm: u64,
}

/// Results of a QUAD run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuadProfile {
    /// Stack setting of the run.
    pub include_stack: bool,
    /// Per-kernel rows (index = routine id).
    pub rows: Vec<QuadRow>,
    /// All producer→consumer bindings.
    pub bindings: Vec<QuadBinding>,
    /// Set when the producing run used a reduced `--instr` mode; `None`
    /// for exact profiles.
    pub instr: Option<QuadInstrNote>,
}

impl QuadProfile {
    /// Look a row up by kernel name.
    pub fn row(&self, name: &str) -> Option<&QuadRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Rows with any traffic, by descending IN bytes.
    pub fn active_rows(&self) -> Vec<&QuadRow> {
        let mut rows: Vec<&QuadRow> = self
            .rows
            .iter()
            .filter(|r| r.in_bytes + r.out_bytes + r.out_unma > 0)
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.in_bytes));
        rows
    }

    /// Analysis-cost estimate per kernel, in virtual instruction
    /// equivalents:
    ///
    /// * `alpha` per checked access — the instrumentation stub that
    ///   discards stack accesses;
    /// * `beta` per traced access — the analysis routine run for every
    ///   non-local access;
    /// * `gamma` per *fresh* written address (`OUT UnMA`) — first-time
    ///   shadow-map insertions, by far the most expensive path in a
    ///   tracing tool and the reason `AudioIo_setFrames` (every write to a
    ///   new address) nearly triples its share in the paper's Table III.
    ///
    /// Feeds the Table III emulation.
    pub fn cost_model(&self, alpha: u64, beta: u64, gamma: u64) -> Vec<(RoutineId, u64)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.rtn,
                    alpha * r.checked_accesses + beta * r.traced_accesses + gamma * r.out_unma,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_vm::RoutineMeta;

    fn info() -> ProgramInfo {
        let mk = |id: u32, name: &str| RoutineMeta {
            id: RoutineId(id),
            name: name.into(),
            image: "app".into(),
            main_image: true,
            start: 0x10000 + id as u64 * 0x100,
            end: 0x10000 + id as u64 * 0x100 + 0x100,
        };
        ProgramInfo {
            routines: vec![mk(0, "producer"), mk(1, "consumer")],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        }
    }

    fn enter(t: &mut QuadTool, rtn: u32, sp: u64) {
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(rtn),
            sp,
            icount: 0,
        });
    }

    fn ret(t: &mut QuadTool, rtn: u32) {
        t.on_event(&Event::Ret {
            ip: 0,
            return_to: 0,
            icount: 0,
            rtn: RoutineId(rtn),
        });
    }

    fn write(t: &mut QuadTool, rtn: u32, ea: u64, size: u32) {
        t.on_event(&Event::MemWrite {
            ip: 0x10000 + rtn as u64 * 0x100,
            ea,
            size,
            sp: 0x3FFF_F000,
            icount: 0,
            rtn: RoutineId(rtn),
        });
    }

    fn read(t: &mut QuadTool, rtn: u32, ea: u64, size: u32) {
        t.on_event(&Event::MemRead {
            ip: 0x10000 + rtn as u64 * 0x100,
            ea,
            size,
            sp: 0x3FFF_F000,
            is_prefetch: false,
            icount: 0,
            rtn: RoutineId(rtn),
        });
    }

    #[test]
    fn producer_consumer_binding() {
        let mut t = QuadTool::new(QuadOptions::default());
        t.on_attach(&info());
        enter(&mut t, 0, 0x3FFF_FF00);
        write(&mut t, 0, 0x1000_0000, 8);
        ret(&mut t, 0);
        enter(&mut t, 1, 0x3FFF_FF00);
        read(&mut t, 1, 0x1000_0000, 8);
        read(&mut t, 1, 0x1000_0000, 8); // consumed twice
        let p = t.into_profile();

        let prod = p.row("producer").unwrap();
        let cons = p.row("consumer").unwrap();
        assert_eq!(prod.out_unma, 8);
        assert_eq!(prod.out_bytes, 16, "OUT counts every consumption");
        assert_eq!(cons.in_bytes, 16);
        assert_eq!(cons.in_unma, 8, "UnMA deduplicates");
        assert_eq!(p.bindings.len(), 1);
        let b = p.bindings[0];
        assert_eq!((b.producer, b.consumer), (RoutineId(0), RoutineId(1)));
        assert_eq!(b.bytes, 16);
        assert_eq!(b.unma, 8);
    }

    #[test]
    fn unwritten_reads_produce_no_binding() {
        let mut t = QuadTool::new(QuadOptions::default());
        t.on_attach(&info());
        enter(&mut t, 1, 0x3FFF_FF00);
        read(&mut t, 1, 0x2000_0000, 8);
        let p = t.into_profile();
        assert!(p.bindings.is_empty());
        assert_eq!(p.row("consumer").unwrap().in_bytes, 8);
    }

    #[test]
    fn partial_overwrite_splits_attribution() {
        let mut t = QuadTool::new(QuadOptions::default());
        t.on_attach(&info());
        enter(&mut t, 0, 0x3FFF_FF00);
        write(&mut t, 0, 0x1000, 8);
        ret(&mut t, 0);
        enter(&mut t, 1, 0x3FFF_FF00);
        write(&mut t, 1, 0x1004, 4); // consumer overwrites the top half
        read(&mut t, 1, 0x1000, 8);
        let p = t.into_profile();
        assert_eq!(p.row("producer").unwrap().out_bytes, 4);
        // Self-binding: consumer reads its own 4 bytes.
        let self_edge = p
            .bindings
            .iter()
            .find(|b| b.producer == RoutineId(1) && b.consumer == RoutineId(1))
            .unwrap();
        assert_eq!(self_edge.bytes, 4);
    }

    #[test]
    fn stack_exclusion_filters_but_still_counts_checks() {
        let mut t = QuadTool::new(QuadOptions {
            include_stack: false,
            ..Default::default()
        });
        t.on_attach(&info());
        enter(&mut t, 0, 0x3FFF_FF00);
        // Stack write (ea above sp): filtered from IN/OUT but checked.
        t.on_event(&Event::MemWrite {
            ip: 0x10000,
            ea: 0x3FFF_F800,
            size: 8,
            sp: 0x3FFF_F000,
            icount: 0,
            rtn: RoutineId(0),
        });
        write(&mut t, 0, 0x1000_0000, 8); // global
        let p = t.into_profile();
        let r = p.row("producer").unwrap();
        assert_eq!(r.out_unma, 8, "only the global write recorded");
        assert_eq!(r.checked_accesses, 2);
        assert_eq!(r.traced_accesses, 1);
    }

    #[test]
    fn prefetch_ignored() {
        let mut t = QuadTool::new(QuadOptions::default());
        t.on_attach(&info());
        enter(&mut t, 0, 0x3FFF_FF00);
        t.on_event(&Event::MemRead {
            ip: 0x10000,
            ea: 0x1000_0000,
            size: 8,
            sp: 0x3FFF_F000,
            is_prefetch: true,
            icount: 0,
            rtn: RoutineId(0),
        });
        let p = t.into_profile();
        assert_eq!(p.row("producer").unwrap().in_bytes, 0);
    }

    #[test]
    fn cost_model_shapes() {
        let mut t = QuadTool::new(QuadOptions::default());
        t.on_attach(&info());
        enter(&mut t, 0, 0x3FFF_FF00);
        write(&mut t, 0, 0x1000_0000, 8); // non-stack: checked + traced
        t.on_event(&Event::MemWrite {
            ip: 0x10000,
            ea: 0x3FFF_F800,
            size: 8,
            sp: 0x3FFF_F000,
            icount: 0,
            rtn: RoutineId(0),
        }); // stack: checked only
        let p = t.into_profile();
        let costs = p.cost_model(2, 10, 3);
        // 2 checked, 1 traced, 16 fresh written addresses (stack accesses
        // are included under the default options, so both stores count).
        assert_eq!(costs[0].1, 2 * 2 + 10 + 3 * 16);
    }
}
