//! Byte-granular shadow memory tracking the *last writer* of every address.
//!
//! QUAD's producer→consumer semantics: when kernel `f` reads a byte that
//! kernel `g` most recently wrote, a binding `g → f` of one byte exists.
//! The shadow memory answers "who wrote this byte last?" in O(1).

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 4096;

/// Kernel tag stored per byte; 0 means "never written".
pub type WriterTag = u32;

/// The shadow memory.
#[derive(Default)]
pub struct ShadowMemory {
    pages: HashMap<u64, Box<[WriterTag; PAGE_SIZE]>>,
}

impl ShadowMemory {
    /// Empty shadow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `writer` (a 1-based tag) wrote `[addr, addr+len)`.
    /// Ranges are clipped at the top of the address space rather than
    /// wrapping (only reachable via corrupt replayed traces).
    #[inline]
    pub fn write(&mut self, addr: u64, len: u32, writer: WriterTag) {
        debug_assert!(writer != 0, "writer tags are 1-based");
        let mut a = addr;
        let end = addr.saturating_add(len as u64);
        while a < end {
            let page = a >> PAGE_SHIFT;
            let off = (a & 0xFFF) as usize;
            let n = ((end - a) as usize).min(PAGE_SIZE - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
            p[off..off + n].fill(writer);
            a += n as u64;
        }
    }

    /// The last writer of the byte at `addr` (0 if never written).
    #[inline]
    pub fn writer_at(&self, addr: u64) -> WriterTag {
        let page = addr >> PAGE_SHIFT;
        let off = (addr & 0xFFF) as usize;
        self.pages.get(&page).map(|p| p[off]).unwrap_or(0)
    }

    /// Visit the writers of `[addr, addr+len)`, one callback per byte.
    #[inline]
    pub fn for_each_writer(&self, addr: u64, len: u32, mut f: impl FnMut(u64, WriterTag)) {
        let mut a = addr;
        let end = addr.saturating_add(len as u64);
        while a < end {
            let page = a >> PAGE_SHIFT;
            let off = (a & 0xFFF) as usize;
            let n = ((end - a) as usize).min(PAGE_SIZE - off);
            match self.pages.get(&page) {
                Some(p) => {
                    for (i, &w) in p[off..off + n].iter().enumerate() {
                        f(a + i as u64, w);
                    }
                }
                None => {
                    for i in 0..n {
                        f(a + i as u64, 0);
                    }
                }
            }
            a += n as u64;
        }
    }

    /// Overlay a *newer* shadow onto this one: bytes the newer shadow saw
    /// written (nonzero tags) supersede, untouched bytes keep the older
    /// writer. Folding per-shard shadows in chunk order with this
    /// reproduces the sequential last-writer map exactly.
    pub fn overlay(&mut self, newer: &ShadowMemory) {
        use std::collections::hash_map::Entry;
        for (page, src) in &newer.pages {
            match self.pages.entry(*page) {
                Entry::Vacant(v) => {
                    v.insert(src.clone());
                }
                Entry::Occupied(mut o) => {
                    for (d, &s) in o.get_mut().iter_mut().zip(src.iter()) {
                        if s != 0 {
                            *d = s;
                        }
                    }
                }
            }
        }
    }

    /// Number of shadow pages materialised.
    pub fn pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_query() {
        let mut s = ShadowMemory::new();
        s.write(0x100, 8, 3);
        assert_eq!(s.writer_at(0x100), 3);
        assert_eq!(s.writer_at(0x107), 3);
        assert_eq!(s.writer_at(0x108), 0);
        assert_eq!(s.writer_at(0xFF), 0);
    }

    #[test]
    fn overwrites_supersede() {
        let mut s = ShadowMemory::new();
        s.write(0x100, 8, 1);
        s.write(0x104, 8, 2);
        assert_eq!(s.writer_at(0x103), 1);
        assert_eq!(s.writer_at(0x104), 2);
        assert_eq!(s.writer_at(0x10B), 2);
    }

    #[test]
    fn cross_page_write() {
        let mut s = ShadowMemory::new();
        s.write(4096 - 2, 4, 7);
        assert_eq!(s.writer_at(4094), 7);
        assert_eq!(s.writer_at(4097), 7);
        assert_eq!(s.pages(), 2);
    }

    #[test]
    fn for_each_writer_mixed() {
        let mut s = ShadowMemory::new();
        s.write(10, 2, 5);
        let mut seen = Vec::new();
        s.for_each_writer(8, 6, |a, w| seen.push((a, w)));
        assert_eq!(
            seen,
            vec![(8, 0), (9, 0), (10, 5), (11, 5), (12, 0), (13, 0)]
        );
    }

    #[test]
    fn overlay_keeps_older_writers_under_zero_bytes() {
        let mut old = ShadowMemory::new();
        old.write(0x100, 8, 1);
        let mut newer = ShadowMemory::new();
        newer.write(0x104, 8, 2); // overlaps the top half
        newer.write(0x9000, 4, 3); // fresh page
        old.overlay(&newer);
        assert_eq!(old.writer_at(0x100), 1, "untouched byte keeps old writer");
        assert_eq!(old.writer_at(0x104), 2);
        assert_eq!(old.writer_at(0x10B), 2);
        assert_eq!(old.writer_at(0x9000), 3);
        assert_eq!(old.writer_at(0x9004), 0);
    }

    #[test]
    fn unmapped_region_reports_zero() {
        let s = ShadowMemory::new();
        let mut count = 0;
        s.for_each_writer(1 << 20, 16, |_, w| {
            assert_eq!(w, 0);
            count += 1;
        });
        assert_eq!(count, 16);
    }
}
