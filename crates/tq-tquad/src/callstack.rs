//! The internal call stack.
//!
//! "In run-time instrumentation we do not necessarily have any kind of extra
//! information about the structure of the program […] we needed to implement
//! our own call graph. For this purpose, an internal call stack data
//! structure is dynamically created and maintained in tQUAD." (§IV.A)
//!
//! Frames are pushed by routine-entry events (`EnterFC`) and popped when a
//! return executes inside the routine at the top of the stack — the same
//! "monitor instructions for the return from a function to maintain the
//! integrity of the internal call stack" logic as the paper. Untracked
//! (library) routines never get a frame, so their returns do not disturb
//! the stack and their memory traffic falls through to the tracked caller.

use tq_isa::RoutineId;

/// One stack frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Routine of the frame.
    pub rtn: RoutineId,
    /// Stack pointer at entry (distinguishes recursive frames).
    pub sp: u64,
}

/// The internal call stack maintained by the tools.
#[derive(Clone, Debug, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// A routine was entered (tracked routines only).
    pub fn enter(&mut self, rtn: RoutineId, sp: u64) {
        self.frames.push(Frame { rtn, sp });
    }

    /// A `ret` executed inside routine `rtn`. Pops the top frame when it
    /// belongs to that routine; returns the popped frame.
    ///
    /// Returns inside untracked routines (not on the stack) are ignored, as
    /// are spurious returns when the stack is empty.
    pub fn ret_in(&mut self, rtn: RoutineId) -> Option<Frame> {
        match self.frames.last() {
            Some(top) if top.rtn == rtn => self.frames.pop(),
            _ => None,
        }
    }

    /// The routine currently executing according to the stack, if any.
    pub fn current(&self) -> Option<RoutineId> {
        self.frames.last().map(|f| f.rtn)
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True when `rtn` has a frame anywhere on the stack (used for
    /// cumulative-time attribution in the sampling profiler).
    pub fn contains(&self, rtn: RoutineId) -> bool {
        self.frames.iter().any(|f| f.rtn == rtn)
    }

    /// Iterate frames from outermost to innermost.
    pub fn frames(&self) -> impl Iterator<Item = &Frame> {
        self.frames.iter()
    }

    /// Distinct routines on the stack, outermost first (a routine recursing
    /// appears once — cumulative time must not be double-counted).
    pub fn distinct_routines(&self) -> Vec<RoutineId> {
        let mut seen = Vec::new();
        for f in &self.frames {
            if !seen.contains(&f.rtn) {
                seen.push(f.rtn);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: RoutineId = RoutineId(0);
    const B: RoutineId = RoutineId(1);
    const LIB: RoutineId = RoutineId(7);

    #[test]
    fn push_pop_balanced() {
        let mut cs = CallStack::new();
        cs.enter(A, 1000);
        cs.enter(B, 900);
        assert_eq!(cs.current(), Some(B));
        assert_eq!(cs.ret_in(B).map(|f| f.rtn), Some(B));
        assert_eq!(cs.current(), Some(A));
        assert_eq!(cs.ret_in(A).map(|f| f.rtn), Some(A));
        assert_eq!(cs.current(), None);
    }

    #[test]
    fn untracked_returns_do_not_pop() {
        let mut cs = CallStack::new();
        cs.enter(A, 1000);
        // A library routine (never pushed) returns: the user frame stays.
        assert_eq!(cs.ret_in(LIB), None);
        assert_eq!(cs.current(), Some(A));
    }

    #[test]
    fn spurious_ret_on_empty_stack_is_ignored() {
        let mut cs = CallStack::new();
        assert_eq!(cs.ret_in(A), None);
        assert_eq!(cs.depth(), 0);
    }

    #[test]
    fn recursion_tracks_depth_and_distinct() {
        let mut cs = CallStack::new();
        cs.enter(A, 1000);
        cs.enter(A, 900);
        cs.enter(A, 800);
        assert_eq!(cs.depth(), 3);
        assert_eq!(cs.distinct_routines(), vec![A]);
        assert!(cs.contains(A));
        assert!(!cs.contains(B));
        cs.ret_in(A);
        assert_eq!(cs.depth(), 2);
        assert_eq!(cs.current(), Some(A));
    }

    #[test]
    fn distinct_preserves_outer_to_inner_order() {
        let mut cs = CallStack::new();
        cs.enter(A, 1000);
        cs.enter(B, 900);
        cs.enter(A, 800);
        assert_eq!(cs.distinct_routines(), vec![A, B]);
    }
}
