//! Per-kernel time-sliced bandwidth series.
//!
//! Storage is *sparse*: one entry per slice in which the kernel touched
//! memory, appended in virtual-time order (a kernel active in 616 of
//! 1 270 684 slices — `AudioIo_setFrames` in Table IV — costs 616 entries,
//! not 1.2 M). Each entry carries four counters so a single run yields both
//! the stack-included and stack-excluded views the paper obtains from
//! separate runs.

/// Traffic of one kernel in one time slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SliceEntry {
    /// Slice index (`icount / interval`).
    pub slice: u64,
    /// Bytes read, stack accesses included.
    pub r_incl: u64,
    /// Bytes read, stack accesses excluded.
    pub r_excl: u64,
    /// Bytes written, stack accesses included.
    pub w_incl: u64,
    /// Bytes written, stack accesses excluded.
    pub w_excl: u64,
}

impl SliceEntry {
    /// Read bytes under the given stack filter.
    #[inline]
    pub fn read(&self, include_stack: bool) -> u64 {
        if include_stack {
            self.r_incl
        } else {
            self.r_excl
        }
    }

    /// Written bytes under the given stack filter.
    #[inline]
    pub fn write(&self, include_stack: bool) -> u64 {
        if include_stack {
            self.w_incl
        } else {
            self.w_excl
        }
    }

    /// Combined read+write bytes under the given stack filter.
    #[inline]
    pub fn total(&self, include_stack: bool) -> u64 {
        self.read(include_stack) + self.write(include_stack)
    }
}

/// Counter for new (kernel, slice) entries — the tool's per-slice flush
/// point: one increment each time a kernel first touches memory in a slice.
fn slices_flushed() -> &'static tq_obs::Counter {
    use std::sync::OnceLock;
    static C: OnceLock<tq_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        tq_obs::counter(
            "tq_tquad_slices_flushed_total",
            "New per-kernel slice entries appended to tQUAD bandwidth series",
        )
    })
}

/// The sparse slice series of one kernel.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelSeries {
    entries: Vec<SliceEntry>,
}

impl KernelSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access. `slice` values must arrive in nondecreasing order
    /// (they do: virtual time is monotonic).
    #[inline]
    pub fn record(&mut self, slice: u64, is_read: bool, bytes: u64, is_stack: bool) {
        let entry = match self.entries.last_mut() {
            Some(e) if e.slice == slice => e,
            _ => {
                debug_assert!(
                    self.entries.last().is_none_or(|e| e.slice < slice),
                    "slices must be recorded in order"
                );
                slices_flushed().inc();
                self.entries.push(SliceEntry {
                    slice,
                    ..Default::default()
                });
                self.entries.last_mut().expect("just pushed")
            }
        };
        if is_read {
            entry.r_incl += bytes;
            if !is_stack {
                entry.r_excl += bytes;
            }
        } else {
            entry.w_incl += bytes;
            if !is_stack {
                entry.w_excl += bytes;
            }
        }
    }

    /// All entries, in slice order.
    pub fn entries(&self) -> &[SliceEntry] {
        &self.entries
    }

    /// Merge another series into this one, summing the counters of equal
    /// slices (a sorted merge-join; both inputs are in slice order by
    /// construction). Shards of a time-partitioned replay only ever share
    /// the boundary slice, so this reduces partial series exactly.
    pub fn merge(&mut self, other: &KernelSeries) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (self.entries[i], other.entries[j]);
            if a.slice < b.slice {
                merged.push(a);
                i += 1;
            } else if b.slice < a.slice {
                merged.push(b);
                j += 1;
            } else {
                merged.push(SliceEntry {
                    slice: a.slice,
                    r_incl: a.r_incl + b.r_incl,
                    r_excl: a.r_excl + b.r_excl,
                    w_incl: a.w_incl + b.w_incl,
                    w_excl: a.w_excl + b.w_excl,
                });
                i += 1;
                j += 1;
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
    }

    /// Number of *active* slices under the given stack filter (the paper's
    /// per-kernel "activity span" count in Table IV). With stack accesses
    /// excluded, slices whose only traffic was local drop out — the paper
    /// observes exactly this for `zeroRealVec`/`zeroCplxVec`.
    pub fn active_slices(&self, include_stack: bool) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.total(include_stack) > 0)
            .count() as u64
    }

    /// First and last active slice under the filter.
    pub fn span(&self, include_stack: bool) -> Option<(u64, u64)> {
        let mut it = self.entries.iter().filter(|e| e.total(include_stack) > 0);
        let first = it.next()?.slice;
        let last = self
            .entries
            .iter()
            .rev()
            .find(|e| e.total(include_stack) > 0)
            .expect("found a first")
            .slice;
        Some((first, last))
    }

    /// Total bytes (read, written) under the filter.
    pub fn totals(&self, include_stack: bool) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for e in &self.entries {
            r += e.read(include_stack);
            w += e.write(include_stack);
        }
        (r, w)
    }

    /// Peak read+write bytes in any single slice under the filter.
    pub fn peak_total(&self, include_stack: bool) -> u64 {
        self.entries
            .iter()
            .map(|e| e.total(include_stack))
            .max()
            .unwrap_or(0)
    }

    /// Dense vector of per-slice values over `0..n_slices` (for charts).
    /// `f` selects the measure (e.g. `|e| e.read(true)`). Entries at or
    /// past `n_slices` are silently dropped rather than indexed
    /// out-of-bounds — callers may legitimately ask for a shorter horizon
    /// than the series covers (or pass an `n_slices` computed from a
    /// different interval).
    pub fn dense(&self, n_slices: u64, f: impl Fn(&SliceEntry) -> u64) -> Vec<f64> {
        let mut out = vec![0.0; n_slices as usize];
        for e in &self.entries {
            if e.slice < n_slices {
                out[e.slice as usize] = f(e) as f64;
            }
        }
        out
    }

    /// Active slice indices under the filter (for phase detection).
    pub fn active_indices(&self, include_stack: bool) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.total(include_stack) > 0)
            .map(|e| e.slice)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_same_slice() {
        let mut s = KernelSeries::new();
        s.record(3, true, 8, false);
        s.record(3, true, 4, true); // stack read
        s.record(3, false, 2, false);
        s.record(7, false, 16, true);
        assert_eq!(s.entries().len(), 2);
        let e = s.entries()[0];
        assert_eq!((e.r_incl, e.r_excl, e.w_incl, e.w_excl), (12, 8, 2, 2));
        let e2 = s.entries()[1];
        assert_eq!((e2.w_incl, e2.w_excl), (16, 0));
    }

    #[test]
    fn activity_depends_on_stack_filter() {
        let mut s = KernelSeries::new();
        s.record(0, true, 8, true); // stack-only slice
        s.record(5, true, 8, false); // global slice
        assert_eq!(s.active_slices(true), 2);
        assert_eq!(s.active_slices(false), 1);
        assert_eq!(s.span(true), Some((0, 5)));
        assert_eq!(s.span(false), Some((5, 5)));
    }

    #[test]
    fn totals_and_peaks() {
        let mut s = KernelSeries::new();
        s.record(0, true, 10, false);
        s.record(0, false, 5, false);
        s.record(1, true, 100, true);
        assert_eq!(s.totals(true), (110, 5));
        assert_eq!(s.totals(false), (10, 5));
        assert_eq!(s.peak_total(true), 100);
        assert_eq!(s.peak_total(false), 15);
    }

    #[test]
    fn dense_projection() {
        let mut s = KernelSeries::new();
        s.record(1, true, 8, false);
        s.record(3, true, 2, false);
        let d = s.dense(5, |e| e.r_incl);
        assert_eq!(d, vec![0.0, 8.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn dense_ignores_entries_past_the_horizon() {
        // Regression: entries beyond `n_slices` must be dropped, not
        // indexed out of bounds (and n_slices == 0 must not panic).
        let mut s = KernelSeries::new();
        s.record(1, true, 8, false);
        s.record(9, true, 2, false);
        assert_eq!(s.dense(3, |e| e.r_incl), vec![0.0, 8.0, 0.0]);
        assert_eq!(s.dense(0, |e| e.r_incl), Vec::<f64>::new());
    }

    #[test]
    fn merge_is_a_sorted_join() {
        let mut a = KernelSeries::new();
        a.record(0, true, 8, false);
        a.record(3, false, 4, false);
        let mut b = KernelSeries::new();
        b.record(3, true, 2, true);
        b.record(5, false, 1, false);
        a.merge(&b);
        let slices: Vec<u64> = a.entries().iter().map(|e| e.slice).collect();
        assert_eq!(slices, vec![0, 3, 5]);
        let boundary = a.entries()[1];
        assert_eq!(
            (boundary.r_incl, boundary.r_excl, boundary.w_incl),
            (2, 0, 4),
            "boundary slice sums both shards"
        );
        // Merging from/into empty is identity.
        let mut empty = KernelSeries::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&KernelSeries::new());
        assert_eq!(empty, a);
    }

    #[test]
    fn empty_series() {
        let s = KernelSeries::new();
        assert_eq!(s.active_slices(true), 0);
        assert_eq!(s.span(true), None);
        assert_eq!(s.peak_total(false), 0);
    }
}
