//! Execution-phase identification.
//!
//! "tQUAD recognizes five different phases in the whole execution span of
//! the hArtes wfs by the thorough examination of different graphs. […] The
//! kernels that are active at the same time interval are possibly relevant
//! (communicating)." (§V)
//!
//! Two clustering strategies are provided (and compared in the ablation
//! benches):
//!
//! * [`PhaseStrategy::ActivityCosine`] — each kernel becomes a bucketed
//!   activity vector over the run; agglomerative average-linkage clustering
//!   by cosine similarity. Robust to kernels that are sparsely active
//!   inside their phase (`AudioIo_setFrames` is active in only 616 of
//!   ~578 000 phase slices in the paper's Table IV).
//! * [`PhaseStrategy::IntervalOverlap`] — clustering by
//!   intersection-over-union of the kernels' (outlier-trimmed) activity
//!   intervals; simpler, but brief out-of-phase activations must be trimmed
//!   first (the paper notes `r2c` "gets active in the 145th time slice for
//!   a very short time and then becomes silent until the 14663th").

use crate::profile::TquadProfile;
use tq_isa::RoutineId;

/// Clustering strategy for phase detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhaseStrategy {
    /// Bucketed activity-vector cosine clustering.
    ActivityCosine {
        /// Number of time buckets the run is divided into.
        buckets: usize,
        /// Minimum cosine similarity to merge two clusters.
        threshold: f64,
    },
    /// Interval intersection-over-union clustering.
    IntervalOverlap {
        /// Minimum IoU to merge two clusters.
        threshold: f64,
    },
}

/// Phase detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct PhaseDetector {
    /// Clustering strategy.
    pub strategy: PhaseStrategy,
    /// Quantile trimmed from each end of a kernel's active-slice list when
    /// computing its robust interval (ignores brief out-of-span
    /// activations).
    pub trim_quantile: f64,
    /// Stack filter under which activity is measured.
    pub include_stack: bool,
    /// Kernels whose trimmed span covers at least this fraction of the run
    /// are excluded: they are structural (e.g. `main`), not phase-bound —
    /// the paper likewise "only consider\[s\] the kernels previously
    /// selected and not all the functions".
    pub max_span_fraction: f64,
}

impl Default for PhaseDetector {
    fn default() -> Self {
        PhaseDetector {
            strategy: PhaseStrategy::ActivityCosine {
                buckets: 1024,
                threshold: 0.5,
            },
            trim_quantile: 0.01,
            include_stack: true,
            max_span_fraction: 0.95,
        }
    }
}

/// One detected phase.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Earliest starting and latest ending slice over the member kernels
    /// (the paper's "phase span").
    pub span: (u64, u64),
    /// Member kernels, ordered by their own activity start.
    pub kernels: Vec<RoutineId>,
}

impl Phase {
    /// Phase length in slices.
    pub fn len(&self) -> u64 {
        self.span.1 - self.span.0 + 1
    }

    /// True if the phase is a single slice long.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Percentage of the whole execution this phase spans ("% phase span").
    pub fn span_pct(&self, total_slices: u64) -> f64 {
        100.0 * self.len() as f64 / total_slices.max(1) as f64
    }
}

struct Item {
    rtn: RoutineId,
    interval: (u64, u64),
    vector: Vec<f64>,
    weight: usize,
}

impl PhaseDetector {
    /// Detect phases in a profile, excluding the `main` entry routine.
    ///
    /// `main` is structural: its own memory traffic (call-argument staging
    /// between kernel invocations) is interleaved with *every* phase, so
    /// including it would bridge otherwise-disjoint phases into one. The
    /// paper likewise clusters "the kernels previously selected and not
    /// all the functions". Use [`PhaseDetector::detect_excluding`] for a
    /// custom exclusion list.
    pub fn detect(&self, profile: &TquadProfile) -> Vec<Phase> {
        self.detect_excluding(profile, &["main"])
    }

    /// Detect phases, omitting the named routines. Kernels with no
    /// activity under the configured stack filter are omitted as well.
    pub fn detect_excluding(&self, profile: &TquadProfile, exclude: &[&str]) -> Vec<Phase> {
        let n_slices = profile.n_slices();
        let mut items: Vec<Item> = Vec::new();

        for k in &profile.kernels {
            if exclude.contains(&k.name.as_str()) {
                continue;
            }
            let indices = k.series.active_indices(self.include_stack);
            let Some(interval) = trimmed_interval(&indices, self.trim_quantile) else {
                // Inactive under this stack filter: nothing to cluster.
                continue;
            };
            let span_frac = (interval.1 - interval.0 + 1) as f64 / n_slices.max(1) as f64;
            if span_frac >= self.max_span_fraction {
                continue;
            }
            let vector = match self.strategy {
                PhaseStrategy::ActivityCosine { buckets, .. } => {
                    bucket_vector(&indices, n_slices, buckets)
                }
                PhaseStrategy::IntervalOverlap { .. } => Vec::new(),
            };
            items.push(Item {
                rtn: k.rtn,
                interval,
                vector,
                weight: 1,
            });
        }
        if items.is_empty() {
            return Vec::new();
        }

        // Agglomerative clustering: clusters are lists of item indices.
        let mut clusters: Vec<Vec<usize>> = (0..items.len()).map(|i| vec![i]).collect();
        let threshold = match self.strategy {
            PhaseStrategy::ActivityCosine { threshold, .. } => threshold,
            PhaseStrategy::IntervalOverlap { threshold } => threshold,
        };
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..clusters.len() {
                for j in i + 1..clusters.len() {
                    let sim = self.cluster_similarity(&clusters[i], &clusters[j], &items);
                    if sim >= threshold && best.is_none_or(|(_, _, s)| sim > s) {
                        best = Some((i, j, sim));
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    let merged = clusters.remove(j);
                    clusters[i].extend(merged);
                }
                None => break,
            }
        }

        let mut phases: Vec<Phase> = clusters
            .into_iter()
            .map(|members| {
                let mut ks: Vec<(u64, RoutineId)> = members
                    .iter()
                    .map(|&i| (items[i].interval.0, items[i].rtn))
                    .collect();
                ks.sort();
                let start = members
                    .iter()
                    .map(|&i| items[i].interval.0)
                    .min()
                    .expect("non-empty");
                let end = members
                    .iter()
                    .map(|&i| items[i].interval.1)
                    .max()
                    .expect("non-empty");
                Phase {
                    span: (start, end),
                    kernels: ks.into_iter().map(|(_, r)| r).collect(),
                }
            })
            .collect();
        phases.sort_by_key(|p| p.span);
        phases
    }

    fn cluster_similarity(&self, a: &[usize], b: &[usize], items: &[Item]) -> f64 {
        match self.strategy {
            PhaseStrategy::ActivityCosine { .. } => {
                // Hybrid similarity: bucketed-activity cosine OR interval
                // containment. The cosine separates time-disjoint phases;
                // the overlap coefficient rescues kernels that are only
                // sparsely active inside a dense phase (`AudioIo_setFrames`
                // touches memory in 616 of ~578 000 slices in Table IV) and
                // whose activity vectors are therefore nearly orthogonal to
                // their phase-mates.
                let va = sum_vectors(a, items);
                let vb = sum_vectors(b, items);
                let ia = union_interval(a, items);
                let ib = union_interval(b, items);
                cosine(&va, &vb).max(overlap_coefficient(ia, ib))
            }
            PhaseStrategy::IntervalOverlap { .. } => {
                let ia = union_interval(a, items);
                let ib = union_interval(b, items);
                iou(ia, ib)
            }
        }
    }
}

/// Quantile-trimmed first/last active slice; `None` for an empty list (a
/// kernel can have zero active slices under the chosen stack filter, which
/// previously underflowed `n - 1` here).
fn trimmed_interval(sorted_indices: &[u64], q: f64) -> Option<(u64, u64)> {
    let n = sorted_indices.len();
    if n == 0 {
        return None;
    }
    let lo = ((n as f64 * q).floor() as usize).min(n - 1);
    let hi = ((n as f64 * (1.0 - q)).ceil() as usize).clamp(lo + 1, n) - 1;
    Some((sorted_indices[lo], sorted_indices[hi]))
}

fn bucket_vector(indices: &[u64], n_slices: u64, buckets: usize) -> Vec<f64> {
    let mut v = vec![0.0f64; buckets.max(1)];
    for &s in indices {
        let b = ((s as u128 * buckets as u128) / n_slices.max(1) as u128) as usize;
        v[b.min(buckets - 1)] += 1.0;
    }
    // Presence, not volume: a kernel's phase membership is about *when* it
    // runs, not how loud it is.
    for x in v.iter_mut() {
        if *x > 0.0 {
            *x = 1.0 + x.ln().max(0.0);
        }
    }
    v
}

fn sum_vectors(members: &[usize], items: &[Item]) -> Vec<f64> {
    let dim = items[members[0]].vector.len();
    let mut out = vec![0.0; dim];
    for &m in members {
        for (o, x) in out.iter_mut().zip(&items[m].vector) {
            *o += x / items[m].weight as f64;
        }
    }
    out
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn union_interval(members: &[usize], items: &[Item]) -> (u64, u64) {
    let start = members
        .iter()
        .map(|&i| items[i].interval.0)
        .min()
        .expect("non-empty");
    let end = members
        .iter()
        .map(|&i| items[i].interval.1)
        .max()
        .expect("non-empty");
    (start, end)
}

/// Interval intersection over the smaller interval's length — 1.0 when one
/// interval is contained in the other.
fn overlap_coefficient(a: (u64, u64), b: (u64, u64)) -> f64 {
    let inter_lo = a.0.max(b.0);
    let inter_hi = a.1.min(b.1);
    let inter = if inter_hi >= inter_lo {
        inter_hi - inter_lo + 1
    } else {
        0
    };
    let min_len = (a.1 - a.0 + 1).min(b.1 - b.0 + 1);
    inter as f64 / min_len as f64
}

fn iou(a: (u64, u64), b: (u64, u64)) -> f64 {
    let inter_lo = a.0.max(b.0);
    let inter_hi = a.1.min(b.1);
    let inter = if inter_hi >= inter_lo {
        inter_hi - inter_lo + 1
    } else {
        0
    };
    let union = a.1.max(b.1) - a.0.min(b.0) + 1;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{KernelProfile, TquadProfile};
    use crate::series::KernelSeries;

    /// Build a profile with kernels active over given slice ranges.
    fn synthetic(ranges: &[(&str, u64, u64)], total_slices: u64) -> TquadProfile {
        let kernels = ranges
            .iter()
            .enumerate()
            .map(|(i, (name, lo, hi))| {
                let mut s = KernelSeries::new();
                for slice in *lo..=*hi {
                    s.record(slice, true, 8, false);
                }
                KernelProfile {
                    rtn: RoutineId(i as u32),
                    name: name.to_string(),
                    main_image: true,
                    calls: 1,
                    series: s,
                }
            })
            .collect();
        TquadProfile {
            interval: 1000,
            total_icount: total_slices * 1000,
            kernels,
            dropped_accesses: 0,
            prefetches_ignored: 0,
            instr: None,
        }
    }

    #[test]
    fn disjoint_ranges_make_distinct_phases() {
        // init | load | main | save — the WFS shape in miniature.
        let p = synthetic(
            &[
                ("init_a", 0, 5),
                ("init_b", 1, 4),
                ("load", 10, 100),
                ("proc_a", 110, 500),
                ("proc_b", 120, 480),
                ("proc_c", 115, 495),
                ("save", 510, 1000),
            ],
            1001,
        );
        for det in [
            PhaseDetector::default(),
            PhaseDetector {
                strategy: PhaseStrategy::IntervalOverlap { threshold: 0.3 },
                ..PhaseDetector::default()
            },
        ] {
            let phases = det.detect(&p);
            assert_eq!(phases.len(), 4, "{:?} → {:?}", det.strategy, phases);
            assert_eq!(phases[0].kernels.len(), 2);
            assert_eq!(phases[2].kernels.len(), 3);
            let (lo, hi) = phases[3].span;
            assert!(
                (510..=520).contains(&lo) && hi >= 985,
                "save span ~(510,1000): {:?}",
                (lo, hi)
            );
        }
    }

    #[test]
    fn sparse_kernel_joins_its_phase() {
        // A kernel active in a few slices scattered across the same window
        // as a dense kernel must cluster with it (AudioIo_setFrames-like).
        let mut p = synthetic(&[("dense", 100, 500)], 600);
        let mut s = KernelSeries::new();
        for slice in (100..500).step_by(50) {
            s.record(slice, false, 1000, false);
        }
        p.kernels.push(KernelProfile {
            rtn: RoutineId(1),
            name: "sparse".into(),
            main_image: true,
            calls: 1,
            series: s,
        });
        let phases = PhaseDetector::default().detect(&p);
        assert_eq!(phases.len(), 1, "{phases:?}");
        assert_eq!(phases[0].kernels.len(), 2);
    }

    #[test]
    fn trimming_ignores_brief_out_of_span_activity() {
        // r2c-like: one early blip at slice 2, real activity 400..800.
        let mut s = KernelSeries::new();
        s.record(2, true, 8, false);
        for slice in 400..=800 {
            s.record(slice, true, 8, false);
        }
        let idx = s.active_indices(true);
        let (lo, hi) = trimmed_interval(&idx, 0.01).unwrap();
        assert!(lo >= 400, "early blip trimmed: lo={lo}");
        assert!(hi >= 790, "symmetric trim keeps ~the top: hi={hi}");
    }

    #[test]
    fn trimmed_interval_of_nothing_is_none() {
        // Regression: used to compute `n - 1` on an empty list and panic.
        assert_eq!(trimmed_interval(&[], 0.01), None);
        assert_eq!(trimmed_interval(&[7], 0.01), Some((7, 7)));
    }

    #[test]
    fn stack_only_kernel_does_not_panic_the_detector() {
        // Regression: a kernel whose only traffic is stack-local has zero
        // active slices under include_stack=false; the detector must skip
        // it, not underflow in the quantile trim.
        let mut p = synthetic(&[("worker", 10, 60), ("helper", 15, 55)], 100);
        let mut s = KernelSeries::new();
        s.record(20, true, 8, true); // stack-only activity
        p.kernels.push(KernelProfile {
            rtn: RoutineId(2),
            name: "stack_only".into(),
            main_image: true,
            calls: 1,
            series: s,
        });
        let det = PhaseDetector {
            include_stack: false,
            ..PhaseDetector::default()
        };
        let phases = det.detect(&p);
        assert!(
            phases.iter().all(|ph| !ph.kernels.contains(&RoutineId(2))),
            "inactive kernel excluded: {phases:?}"
        );
    }

    #[test]
    fn empty_profile_has_no_phases() {
        let p = synthetic(&[], 10);
        assert!(PhaseDetector::default().detect(&p).is_empty());
    }

    #[test]
    fn phase_span_pct() {
        let ph = Phase {
            span: (10, 19),
            kernels: vec![],
        };
        assert_eq!(ph.len(), 10);
        assert!((ph.span_pct(100) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn iou_and_cosine_helpers() {
        assert!((iou((0, 9), (5, 14)) - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(iou((0, 4), (10, 14)), 0.0);
        assert_eq!(
            overlap_coefficient((100, 200), (0, 1000)),
            1.0,
            "containment"
        );
        assert_eq!(overlap_coefficient((0, 4), (10, 14)), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine(&[0.0], &[0.0]), 0.0);
    }
}
