//! Reconstruction of full-run bandwidth series from reduced-instrumentation
//! captures (`--instr sample:…` / `converge:…`).
//!
//! A gated run records memory traffic only in *live* gating slices: under
//! sampling every `period`-th slice of the deterministic phase, under
//! convergence gating every slice outside a routine's recorded gaps. The
//! estimator here rebuilds a per-tool-slice series from those observations:
//!
//! * a tool slice whose instruction range is **partially** live scales its
//!   measured counters by `total/live` instruction weight (the measured
//!   portion is treated as representative of the whole slice);
//! * a tool slice whose range is **fully dead** is filled by carrying the
//!   previous reconstructed slice forward (for convergence gaps this is the
//!   model that justified gating: the profile was stable; for sampling it is
//!   a zero-order hold between observations);
//! * slices that were measured live but saw no traffic stay empty — and
//!   reset the carry, so activity never bleeds past an observed silence.
//!
//! The estimator is deliberately simple and *bounded*: `docs/ACCURACY.md`
//! defines the error metric and `benches/instr_accuracy.rs` measures it per
//! workload; reports carry a [`ReconNote`] so no reconstructed profile can
//! be mistaken for an exact one.

use crate::series::{KernelSeries, SliceEntry};
use tq_vm::InstrInfo;

/// Provenance of a reconstructed profile: what mode produced the capture
/// and how much of the run was actually observed. Attached to
/// [`crate::TquadProfile::instr`]; `None` there means the profile is an
/// exact full-instrumentation measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReconNote {
    /// Canonical `--instr` spec of the producing run.
    pub spec: String,
    /// Fraction of (routine × gating-slice) cells observed, in parts per
    /// million (1 000 000 = everything measured).
    pub coverage_ppm: u64,
    /// Tool slices synthesized by carry-forward (no live observation).
    pub filled_slices: u64,
    /// Tool slices backed by at least one live gating slice.
    pub measured_slices: u64,
}

impl ReconNote {
    /// Coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.coverage_ppm as f64 / 1e6
    }
}

/// Scale `v` by `total/live` with round-to-nearest (128-bit intermediate,
/// so byte counters cannot overflow).
fn scale(v: u64, live: u64, total: u64) -> u64 {
    if live == 0 || live == total {
        return v;
    }
    ((v as u128 * total as u128 + (live / 2) as u128) / live as u128) as u64
}

/// Live instruction weight of one routine inside the instruction range
/// `[lo, hi)`: instructions belonging to gating slices that were sampled
/// live and not inside any of the routine's convergence gaps. `gaps` is
/// the routine's gap list in slice order (empty when not converge-gated).
fn live_weight(info: &InstrInfo, gaps: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    let ls = info.slice_len;
    debug_assert!(ls > 0);
    let mut live = 0u64;
    let mut g = lo / ls;
    while g * ls < hi {
        let s_lo = (g * ls).max(lo);
        let s_hi = ((g + 1) * ls).min(hi);
        let gated = gaps.iter().any(|&(start, end)| g >= start && g < end);
        if info.sample_live(g) && !gated {
            live += s_hi - s_lo;
        }
        g += 1;
    }
    live
}

/// Reconstruct one kernel's series at tool-slice granularity (`interval`
/// instructions per slice). `rtn` selects the routine's convergence gaps
/// inside `info` (`u32::MAX` for code outside all symbols). Returns the
/// reconstructed series plus `(filled, measured)` tool-slice counts.
pub fn reconstruct_series(
    series: &KernelSeries,
    interval: u64,
    info: &InstrInfo,
    rtn: u32,
) -> (KernelSeries, u64, u64) {
    if info.slice_len == 0 {
        return (series.clone(), 0, 0);
    }
    let gaps: Vec<(u64, u64)> = info
        .gaps_of(rtn)
        .map(|g| (g.start_slice, g.end_slice))
        .collect();

    // Reconstruct over the observed activity span, extended through any
    // trailing convergence gap (a routine gated until run end was active
    // past its last recorded entry).
    let entries = series.entries();
    let Some(first) = entries.first().map(|e| e.slice) else {
        return (KernelSeries::new(), 0, 0);
    };
    let last_measured = entries.last().expect("non-empty").slice;
    let n_tool = info.total_icount.div_ceil(interval).max(1);
    let last_gap_slice = gaps
        .iter()
        .map(|&(_, end)| (end.saturating_mul(info.slice_len)).div_ceil(interval))
        .max()
        .unwrap_or(0);
    let last = last_measured
        .max(last_gap_slice.saturating_sub(1))
        .min(n_tool - 1);

    let mut out = KernelSeries::new();
    let mut rebuilt: Vec<SliceEntry> = Vec::new();
    let mut carry: Option<SliceEntry> = None;
    let mut idx = 0usize;
    let mut filled = 0u64;
    let mut measured = 0u64;
    for t in first..=last {
        let lo = t * interval;
        let hi = ((t + 1) * interval).min(info.total_icount.max(lo + 1));
        let total = hi - lo;
        let live = live_weight(info, &gaps, lo, hi);
        while idx < entries.len() && entries[idx].slice < t {
            idx += 1;
        }
        let here = entries.get(idx).filter(|e| e.slice == t);
        if live == 0 {
            filled += 1;
            if let Some(c) = carry {
                rebuilt.push(SliceEntry { slice: t, ..c });
            }
            continue;
        }
        measured += 1;
        match here {
            Some(e) => {
                let scaled = SliceEntry {
                    slice: t,
                    r_incl: scale(e.r_incl, live, total),
                    r_excl: scale(e.r_excl, live, total),
                    w_incl: scale(e.w_incl, live, total),
                    w_excl: scale(e.w_excl, live, total),
                };
                rebuilt.push(scaled);
                carry = Some(scaled);
            }
            None => {
                // Observed silence: genuinely inactive, and the carry must
                // not paint activity past it.
                carry = None;
            }
        }
    }
    for e in rebuilt {
        // Reassemble via record() calls so KernelSeries invariants (sorted,
        // merged per slice) hold: excl counts as non-stack, the incl-excl
        // remainder as stack traffic.
        out.record(e.slice, true, e.r_excl, false);
        if e.r_incl > e.r_excl {
            out.record(e.slice, true, e.r_incl - e.r_excl, true);
        }
        out.record(e.slice, false, e.w_excl, false);
        if e.w_incl > e.w_excl {
            out.record(e.slice, false, e.w_incl - e.w_excl, true);
        }
    }
    (out, filled, measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_vm::InstrGap;

    fn info_sampling(period: u64, offset_seedless: bool) -> InstrInfo {
        // Build an info whose sample_offset is 0 for predictable tests.
        let _ = offset_seedless;
        InstrInfo {
            spec: format!("sample:{period}/100@0"),
            slice_len: 100,
            sample_period: period,
            sample_offset: 0,
            filtered: Vec::new(),
            gaps: Vec::new(),
            total_icount: 1000,
        }
    }

    #[test]
    fn sampling_scales_partially_live_slices() {
        // Tool slice == 2 gating slices; period 2 offset 0 → exactly one
        // of the two gating slices in every tool slice is live.
        let mut s = KernelSeries::new();
        s.record(0, true, 40, false); // measured in live half
        s.record(2, true, 10, false);
        let info = info_sampling(2, true);
        let (r, filled, measured) = reconstruct_series(&s, 200, &info, u32::MAX);
        // Slice 0: 40 bytes over half the slice → 80 estimated.
        assert_eq!(r.entries()[0].r_incl, 80);
        assert_eq!(r.entries()[0].r_excl, 80);
        assert_eq!(measured, 3, "all tool slices partially live");
        assert_eq!(filled, 0);
        // Slice 1 was measured live with zero traffic → stays empty.
        assert_eq!(r.entries().len(), 2);
        assert_eq!(r.entries()[1].slice, 2);
        assert_eq!(r.entries()[1].r_incl, 20);
    }

    #[test]
    fn sampling_fills_dead_slices_by_carry_forward() {
        // Tool slice == gating slice (100); period 2 offset 0 → odd tool
        // slices are fully dead.
        let mut s = KernelSeries::new();
        s.record(0, true, 8, false);
        s.record(2, true, 8, false);
        let info = info_sampling(2, true);
        let (r, filled, measured) = reconstruct_series(&s, 100, &info, u32::MAX);
        let slices: Vec<u64> = r.entries().iter().map(|e| e.slice).collect();
        assert_eq!(slices, vec![0, 1, 2], "dead slice 1 carry-filled");
        assert_eq!(r.entries()[1].r_incl, 8);
        assert_eq!((filled, measured), (1, 2));
    }

    #[test]
    fn observed_silence_resets_the_carry() {
        let mut s = KernelSeries::new();
        s.record(0, true, 8, false);
        s.record(6, true, 8, false);
        let info = info_sampling(2, true);
        let (r, _, _) = reconstruct_series(&s, 100, &info, u32::MAX);
        // Slice 1 (dead) is filled; slice 2 is live-and-silent, so slices
        // 3 and 5 (dead) must NOT inherit slice 0's bytes.
        let slices: Vec<u64> = r.entries().iter().map(|e| e.slice).collect();
        assert_eq!(slices, vec![0, 1, 6]);
    }

    #[test]
    fn converge_gap_is_carry_filled_per_routine() {
        let mut s = KernelSeries::new();
        s.record(0, true, 8, false);
        s.record(1, true, 8, false);
        // Gated from gating slice 2 to 8 for routine 7; run is 1000 instrs.
        let info = InstrInfo {
            spec: "converge:0.1,2/100".into(),
            slice_len: 100,
            sample_period: 0,
            sample_offset: 0,
            filtered: Vec::new(),
            gaps: vec![InstrGap {
                rtn: 7,
                start_slice: 2,
                end_slice: 8,
            }],
            total_icount: 1000,
        };
        let (r, filled, measured) = reconstruct_series(&s, 100, &info, 7);
        let slices: Vec<u64> = r.entries().iter().map(|e| e.slice).collect();
        assert_eq!(
            slices,
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            "gap filled to its end"
        );
        assert!(r.entries()[2..].iter().all(|e| e.r_incl == 8));
        assert_eq!((filled, measured), (6, 2));
        // A different routine sees no gaps: its series is untouched.
        let (r2, f2, _) = reconstruct_series(&s, 100, &info, 3);
        assert_eq!(r2.entries().len(), 2);
        assert_eq!(f2, 0);
    }

    #[test]
    fn stack_split_survives_reconstruction() {
        let mut s = KernelSeries::new();
        s.record(0, true, 30, false);
        s.record(0, true, 10, true); // stack read
        s.record(0, false, 6, true); // stack write
        let info = info_sampling(2, true);
        let (r, _, _) = reconstruct_series(&s, 200, &info, u32::MAX);
        let e = r.entries()[0];
        assert_eq!((e.r_incl, e.r_excl), (80, 60));
        assert_eq!((e.w_incl, e.w_excl), (12, 0));
    }

    #[test]
    fn full_info_is_identity() {
        let mut s = KernelSeries::new();
        s.record(4, true, 8, false);
        let info = InstrInfo::default();
        let (r, filled, measured) = reconstruct_series(&s, 100, &info, 0);
        assert_eq!(r, s);
        assert_eq!((filled, measured), (0, 0));
    }
}
