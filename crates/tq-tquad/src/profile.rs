//! The measurement results of a tQUAD run and the derived per-kernel
//! bandwidth statistics of Table IV.

use crate::recon::ReconNote;
use crate::series::KernelSeries;
use tq_isa::RoutineId;

/// Measurements for one kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelProfile {
    /// Routine id.
    pub rtn: RoutineId,
    /// Kernel name.
    pub name: String,
    /// Whether the kernel lives in the main image.
    pub main_image: bool,
    /// Number of (tracked) invocations.
    pub calls: u64,
    /// Time-sliced bandwidth series.
    pub series: KernelSeries,
}

/// Derived bandwidth statistics for one kernel under one stack filter — one
/// row of Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthStats {
    /// Number of slices in which the kernel accessed memory ("activity
    /// span" in Table IV).
    pub activity_span: u64,
    /// First active slice.
    pub first_slice: u64,
    /// Last active slice.
    pub last_slice: u64,
    /// Average read bandwidth in bytes/instruction over the active slices.
    pub avg_read_bpi: f64,
    /// Average write bandwidth in bytes/instruction over the active slices.
    pub avg_write_bpi: f64,
    /// Peak read+write bandwidth in bytes/instruction over any slice.
    pub max_total_bpi: f64,
}

/// The complete result of a tQUAD run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TquadProfile {
    /// Slice interval in instructions.
    pub interval: u64,
    /// Total instructions executed.
    pub total_icount: u64,
    /// One entry per routine (including never-active ones).
    pub kernels: Vec<KernelProfile>,
    /// Accesses dropped by the library policy.
    pub dropped_accesses: u64,
    /// Prefetch events the analysis routines ignored.
    pub prefetches_ignored: u64,
    /// Reconstruction provenance when the producing run used a reduced
    /// `--instr` mode; `None` for exact full-instrumentation profiles.
    /// See `docs/ACCURACY.md` for the measured error bounds per mode.
    pub instr: Option<ReconNote>,
}

impl TquadProfile {
    /// Number of time slices the run spanned ("64 time slices are counted
    /// representing the execution of more than six billion instructions").
    pub fn n_slices(&self) -> u64 {
        self.total_icount.div_ceil(self.interval).max(1)
    }

    /// Look a kernel up by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelProfile> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Fold another partial profile of the *same program and interval*
    /// into this one: per-kernel call counts and slice series are summed,
    /// drop/prefetch counters are summed, and the total instruction count
    /// takes the maximum (each shard reports the clock it reached, not a
    /// duration). This is the reduce step of sharded replay; merging is
    /// commutative and associative, so any fold order yields the same
    /// profile.
    ///
    /// Panics if the profiles disagree on interval or kernel table — they
    /// would not be shards of the same run.
    pub fn merge(&mut self, other: &TquadProfile) {
        assert!(
            self.instr.is_none() && other.instr.is_none(),
            "reconstructed profiles cannot be merged (carry-filled slices \
             would double-count); merge at the tool level instead"
        );
        assert_eq!(self.interval, other.interval, "shards must share interval");
        assert_eq!(
            self.kernels.len(),
            other.kernels.len(),
            "shards must share the routine table"
        );
        self.total_icount = self.total_icount.max(other.total_icount);
        self.dropped_accesses += other.dropped_accesses;
        self.prefetches_ignored += other.prefetches_ignored;
        for (k, ok) in self.kernels.iter_mut().zip(&other.kernels) {
            debug_assert_eq!(k.rtn, ok.rtn);
            k.calls += ok.calls;
            k.series.merge(&ok.series);
        }
    }

    /// Kernels that accessed memory at all, ordered by total traffic
    /// (stack included), descending — the "top kernels" selection.
    pub fn active_kernels(&self) -> Vec<&KernelProfile> {
        let mut ks: Vec<&KernelProfile> = self
            .kernels
            .iter()
            .filter(|k| k.series.active_slices(true) > 0)
            .collect();
        ks.sort_by_key(|k| {
            let (r, w) = k.series.totals(true);
            std::cmp::Reverse(r + w)
        });
        ks
    }

    /// Table IV statistics for one kernel under a stack filter. `None` when
    /// the kernel never accessed memory under that filter.
    pub fn stats(&self, kernel: &KernelProfile, include_stack: bool) -> Option<BandwidthStats> {
        let active = kernel.series.active_slices(include_stack);
        if active == 0 {
            return None;
        }
        let (first, last) = kernel
            .series
            .span(include_stack)
            .expect("active kernel has a span");
        let (r, w) = kernel.series.totals(include_stack);
        let denom = (active * self.interval) as f64;
        Some(BandwidthStats {
            activity_span: active,
            first_slice: first,
            last_slice: last,
            avg_read_bpi: r as f64 / denom,
            avg_write_bpi: w as f64 / denom,
            max_total_bpi: kernel.series.peak_total(include_stack) as f64 / self.interval as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_one() -> TquadProfile {
        let mut s = KernelSeries::new();
        // slice 0: 100 B read (40 global), 50 B write (all global)
        s.record(0, true, 40, false);
        s.record(0, true, 60, true);
        s.record(0, false, 50, false);
        // slice 2: stack-only
        s.record(2, true, 10, true);
        TquadProfile {
            interval: 100,
            total_icount: 500,
            kernels: vec![KernelProfile {
                rtn: RoutineId(0),
                name: "k".into(),
                main_image: true,
                calls: 3,
                series: s,
            }],
            dropped_accesses: 0,
            prefetches_ignored: 0,
            instr: None,
        }
    }

    #[test]
    fn n_slices_rounds_up() {
        let p = profile_one();
        assert_eq!(p.n_slices(), 5);
    }

    #[test]
    fn stats_include_stack() {
        let p = profile_one();
        let st = p.stats(&p.kernels[0], true).unwrap();
        assert_eq!(st.activity_span, 2);
        assert_eq!((st.first_slice, st.last_slice), (0, 2));
        // (100+10) read bytes over 2 active slices × 100 instr.
        assert!((st.avg_read_bpi - 110.0 / 200.0).abs() < 1e-12);
        assert!((st.avg_write_bpi - 50.0 / 200.0).abs() < 1e-12);
        // Peak slice: slice 0 with 150 B.
        assert!((st.max_total_bpi - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_exclude_stack() {
        let p = profile_one();
        let st = p.stats(&p.kernels[0], false).unwrap();
        assert_eq!(st.activity_span, 1, "stack-only slice drops out");
        assert_eq!((st.first_slice, st.last_slice), (0, 0));
        assert!((st.avg_read_bpi - 0.4).abs() < 1e-12);
        assert!((st.avg_write_bpi - 0.5).abs() < 1e-12);
        assert!((st.max_total_bpi - 0.9).abs() < 1e-12);
    }

    #[test]
    fn inactive_kernel_has_no_stats() {
        let p = TquadProfile {
            interval: 10,
            total_icount: 100,
            kernels: vec![KernelProfile {
                rtn: RoutineId(0),
                name: "idle".into(),
                main_image: true,
                calls: 0,
                series: KernelSeries::new(),
            }],
            dropped_accesses: 0,
            prefetches_ignored: 0,
            instr: None,
        };
        assert!(p.stats(&p.kernels[0], true).is_none());
        assert!(p.active_kernels().is_empty());
    }
}

/// A contiguous run of active slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActivityInterval {
    /// First slice of the interval.
    pub start: u64,
    /// Last slice of the interval (inclusive).
    pub end: u64,
    /// Bytes moved (read + write) within the interval.
    pub bytes: u64,
}

impl TquadProfile {
    /// The exact time intervals in which a kernel communicates with memory
    /// — "tQUAD is capable of providing the detailed information about the
    /// exact time intervals in which a kernel is communicating with the
    /// memory" (§V). Active slices separated by at most `gap_tolerance`
    /// silent slices are merged into one interval (0 = strictly
    /// contiguous).
    pub fn activity_intervals(
        &self,
        kernel: &KernelProfile,
        include_stack: bool,
        gap_tolerance: u64,
    ) -> Vec<ActivityInterval> {
        let mut out: Vec<ActivityInterval> = Vec::new();
        for e in kernel.series.entries() {
            let total = e.total(include_stack);
            if total == 0 {
                continue;
            }
            match out.last_mut() {
                Some(last) if e.slice <= last.end + gap_tolerance + 1 => {
                    last.end = e.slice;
                    last.bytes += total;
                }
                _ => out.push(ActivityInterval {
                    start: e.slice,
                    end: e.slice,
                    bytes: total,
                }),
            }
        }
        out
    }

    /// Average the Table IV statistics of one kernel across several runs
    /// of the *same* program at different slice intervals — "the average
    /// memory bandwidth usage is calculated over several passes with
    /// different time slices" (§V). Bytes/instruction is already
    /// interval-normalised, so a plain mean is meaningful; `None` when the
    /// kernel is inactive in every pass.
    pub fn averaged_stats(
        passes: &[&TquadProfile],
        kernel_name: &str,
        include_stack: bool,
    ) -> Option<BandwidthStats> {
        let per_pass: Vec<BandwidthStats> = passes
            .iter()
            .filter_map(|p| {
                let k = p.kernel(kernel_name)?;
                p.stats(k, include_stack)
            })
            .collect();
        if per_pass.is_empty() {
            return None;
        }
        let n = per_pass.len() as f64;
        Some(BandwidthStats {
            // Span counts are interval-dependent; report the finest pass's
            // (largest count), like the paper's per-pass tables.
            activity_span: per_pass
                .iter()
                .map(|s| s.activity_span)
                .max()
                .expect("non-empty"),
            first_slice: per_pass
                .iter()
                .map(|s| s.first_slice)
                .min()
                .expect("non-empty"),
            last_slice: per_pass
                .iter()
                .map(|s| s.last_slice)
                .max()
                .expect("non-empty"),
            avg_read_bpi: per_pass.iter().map(|s| s.avg_read_bpi).sum::<f64>() / n,
            avg_write_bpi: per_pass.iter().map(|s| s.avg_write_bpi).sum::<f64>() / n,
            max_total_bpi: per_pass.iter().map(|s| s.max_total_bpi).sum::<f64>() / n,
        })
    }
}

#[cfg(test)]
mod interval_tests {
    use super::*;
    use crate::series::KernelSeries;

    fn kp(slices: &[(u64, u64)]) -> KernelProfile {
        let mut s = KernelSeries::new();
        for &(slice, bytes) in slices {
            s.record(slice, true, bytes, false);
        }
        KernelProfile {
            rtn: RoutineId(0),
            name: "k".into(),
            main_image: true,
            calls: 1,
            series: s,
        }
    }

    fn profile(k: KernelProfile, interval: u64, icount: u64) -> TquadProfile {
        TquadProfile {
            interval,
            total_icount: icount,
            kernels: vec![k],
            dropped_accesses: 0,
            prefetches_ignored: 0,
            instr: None,
        }
    }

    #[test]
    fn intervals_merge_within_tolerance() {
        let p = profile(kp(&[(0, 8), (1, 8), (5, 8), (6, 8), (20, 8)]), 100, 3000);
        let k = &p.kernels[0];
        let strict = p.activity_intervals(k, true, 0);
        assert_eq!(
            strict,
            vec![
                ActivityInterval {
                    start: 0,
                    end: 1,
                    bytes: 16
                },
                ActivityInterval {
                    start: 5,
                    end: 6,
                    bytes: 16
                },
                ActivityInterval {
                    start: 20,
                    end: 20,
                    bytes: 8
                },
            ]
        );
        let loose = p.activity_intervals(k, true, 3);
        assert_eq!(
            loose.len(),
            2,
            "gap of 3 merges the first two runs: {loose:?}"
        );
        assert_eq!(
            loose[0],
            ActivityInterval {
                start: 0,
                end: 6,
                bytes: 32
            }
        );
    }

    #[test]
    fn intervals_respect_stack_filter() {
        let mut s = KernelSeries::new();
        s.record(0, true, 8, true); // stack-only slice
        s.record(2, true, 8, false);
        let k = KernelProfile {
            rtn: RoutineId(0),
            name: "k".into(),
            main_image: true,
            calls: 1,
            series: s,
        };
        let p = profile(k, 100, 300);
        assert_eq!(p.activity_intervals(&p.kernels[0], true, 0).len(), 2);
        assert_eq!(p.activity_intervals(&p.kernels[0], false, 0).len(), 1);
    }

    #[test]
    fn averaging_across_passes() {
        // Same 80 bytes over the run, measured at two intervals.
        let p1 = profile(kp(&[(0, 40), (1, 40)]), 100, 200); // avg R = 80/200
        let p2 = profile(kp(&[(0, 80)]), 200, 200); // avg R = 80/200
        let avg = TquadProfile::averaged_stats(&[&p1, &p2], "k", true).unwrap();
        assert!((avg.avg_read_bpi - 0.4).abs() < 1e-12);
        assert_eq!(avg.activity_span, 2, "finest pass's span");
        assert!(TquadProfile::averaged_stats(&[&p1], "nope", true).is_none());
    }
}
