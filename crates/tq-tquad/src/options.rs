//! Profiling options — the three command-line options of the paper's tool:
//! time-slice interval, inclusion/exclusion of local stack-area accesses,
//! and exclusion of library/OS routines.

/// How library (non-main-image) routines are handled — the paper's option
/// "to exclude them from the internal call stack".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LibPolicy {
    /// Track library routines like any kernel (they appear in reports).
    Track,
    /// Do not push library routines on the internal call stack: their memory
    /// traffic is attributed to the calling user kernel.
    AttributeToCaller,
    /// Drop memory traffic performed inside library routines entirely ("the
    /// exclusion of memory bandwidth usage data caused by OS and library
    /// routine calls").
    Drop,
}

/// tQUAD options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TquadOptions {
    /// Time-slice interval in instructions. The paper sweeps 5000 … 10⁸;
    /// "with large time slices, we lose some information".
    pub slice_interval: u64,
    /// Library-routine policy.
    pub lib_policy: LibPolicy,
}

impl Default for TquadOptions {
    fn default() -> Self {
        TquadOptions {
            slice_interval: 100_000,
            lib_policy: LibPolicy::AttributeToCaller,
        }
    }
}

impl TquadOptions {
    /// Set the slice interval.
    pub fn with_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "slice interval must be positive");
        self.slice_interval = interval;
        self
    }

    /// Set the library policy.
    pub fn with_lib_policy(mut self, p: LibPolicy) -> Self {
        self.lib_policy = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let o = TquadOptions::default();
        assert!(o.slice_interval > 0);
        let o = o.with_interval(5000).with_lib_policy(LibPolicy::Drop);
        assert_eq!(o.slice_interval, 5000);
        assert_eq!(o.lib_policy, LibPolicy::Drop);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        TquadOptions::default().with_interval(0);
    }
}
