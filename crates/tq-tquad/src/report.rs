//! Paper-style rendering of tQUAD results: the Table IV phase summary and
//! the Figure 6/7 bandwidth-over-time charts.

use crate::phase::Phase;
use crate::profile::TquadProfile;
use tq_report::{f, Align, Json, SeriesChart, Table};

/// Which bandwidth measure a figure plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Measure {
    /// Read accesses, stack included (Fig. 6).
    ReadIncl,
    /// Read accesses, stack excluded.
    ReadExcl,
    /// Write accesses, stack included.
    WriteIncl,
    /// Write accesses, stack excluded (Fig. 7).
    WriteExcl,
}

impl Measure {
    /// Human-readable description, phrased as the paper's captions.
    pub fn caption(self) -> &'static str {
        match self {
            Measure::ReadIncl => "read accesses including the stack area",
            Measure::ReadExcl => "read accesses excluding the stack area",
            Measure::WriteIncl => "write accesses including the stack area",
            Measure::WriteExcl => "write accesses excluding the stack area",
        }
    }
}

/// Build the Table IV equivalent: per phase, per member kernel — activity
/// span, average read/write bandwidth (bytes/instruction) with stack
/// included and excluded, peak (R+W) bandwidth, and the phase's aggregate
/// maximum bandwidth.
pub fn phase_table(profile: &TquadProfile, phases: &[Phase]) -> Table {
    let mut t = Table::new(format!(
        "Phases in the execution path (slice interval = {} instructions, {} slices total)",
        profile.interval,
        profile.n_slices()
    ))
    .col("phase", Align::Left)
    .col("phase span", Align::Left)
    .col("% span", Align::Right)
    .col("kernel", Align::Left)
    .col("activity", Align::Right)
    .col("avg R incl", Align::Right)
    .col("avg R excl", Align::Right)
    .col("avg W incl", Align::Right)
    .col("avg W excl", Align::Right)
    .col("max R+W incl", Align::Right)
    .col("max R+W excl", Align::Right)
    .col("aggregate MBW", Align::Right);

    let total = profile.n_slices();
    for (pi, phase) in phases.iter().enumerate() {
        let aggregate: f64 = phase
            .kernels
            .iter()
            .filter_map(|rtn| {
                let k = &profile.kernels[rtn.idx()];
                profile.stats(k, true).map(|s| s.max_total_bpi)
            })
            .sum();
        for (ki, rtn) in phase.kernels.iter().enumerate() {
            let k = &profile.kernels[rtn.idx()];
            let incl = profile.stats(k, true);
            let excl = profile.stats(k, false);
            let first_row = ki == 0;
            t.row(vec![
                if first_row {
                    format!("phase-{}", pi + 1)
                } else {
                    String::new()
                },
                if first_row {
                    format!("{}-{}", phase.span.0, phase.span.1)
                } else {
                    String::new()
                },
                if first_row {
                    f(phase.span_pct(total), 4)
                } else {
                    String::new()
                },
                k.name.clone(),
                incl.map(|s| s.activity_span.to_string())
                    .unwrap_or_default(),
                incl.map(|s| f(s.avg_read_bpi, 4)).unwrap_or_default(),
                excl.map(|s| f(s.avg_read_bpi, 4)).unwrap_or_default(),
                incl.map(|s| f(s.avg_write_bpi, 4)).unwrap_or_default(),
                excl.map(|s| f(s.avg_write_bpi, 4)).unwrap_or_default(),
                incl.map(|s| f(s.max_total_bpi, 4)).unwrap_or_default(),
                excl.map(|s| f(s.max_total_bpi, 4)).unwrap_or_default(),
                if first_row {
                    f(aggregate, 4)
                } else {
                    String::new()
                },
            ]);
        }
    }
    t
}

/// Build a Figure 6/7-style chart: one lane per kernel, bandwidth in
/// bytes/instruction per slice, over `0..n_slices` (optionally capped, as
/// Fig. 7 cuts off the silent second half).
pub fn figure_chart(
    profile: &TquadProfile,
    kernel_names: &[&str],
    measure: Measure,
    width: usize,
    max_slices: Option<u64>,
) -> SeriesChart {
    let n = max_slices
        .unwrap_or_else(|| profile.n_slices())
        .min(profile.n_slices());
    let mut chart = SeriesChart::new(
        format!(
            "Memory bandwidth usage (bytes/instruction), {}; slice = {} instructions, showing {} of {} slices",
            measure.caption(),
            profile.interval,
            n,
            profile.n_slices()
        ),
        width,
    );
    for name in kernel_names {
        let Some(k) = profile.kernel(name) else {
            continue;
        };
        let interval = profile.interval as f64;
        let values = k.series.dense(n, |e| match measure {
            Measure::ReadIncl => e.r_incl,
            Measure::ReadExcl => e.r_excl,
            Measure::WriteIncl => e.w_incl,
            Measure::WriteExcl => e.w_excl,
        });
        chart.series(*name, values.into_iter().map(|v| v / interval).collect());
    }
    chart
}

/// Machine-readable form of a full profile (per-kernel sparse slice
/// series included). Key order is fixed and kernels appear in routine
/// order, so the canonical rendering of the result is deterministic —
/// `repro_table4` saves it, and the `tq-profd` cache relies on it for
/// byte-identical replies.
pub fn profile_json(profile: &TquadProfile) -> Json {
    let kernels: Vec<Json> = profile
        .kernels
        .iter()
        .map(|k| {
            let entries: Vec<Json> = k
                .series
                .entries()
                .iter()
                .map(|e| {
                    Json::obj([
                        ("slice", Json::from(e.slice)),
                        ("r_incl", Json::from(e.r_incl)),
                        ("r_excl", Json::from(e.r_excl)),
                        ("w_incl", Json::from(e.w_incl)),
                        ("w_excl", Json::from(e.w_excl)),
                    ])
                })
                .collect();
            Json::obj([
                ("rtn", Json::from(k.rtn.0)),
                ("name", Json::from(k.name.as_str())),
                ("main_image", Json::from(k.main_image)),
                ("calls", Json::from(k.calls)),
                ("series", Json::from(entries)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("interval", Json::from(profile.interval)),
        ("total_icount", Json::from(profile.total_icount)),
        ("dropped_accesses", Json::from(profile.dropped_accesses)),
        ("prefetches_ignored", Json::from(profile.prefetches_ignored)),
    ];
    // Present only for reduced-instrumentation runs, so full profiles
    // render byte-identically to their pre-`--instr` form (the profd
    // cache and the repro fixtures depend on that).
    if let Some(note) = &profile.instr {
        fields.push((
            "instr",
            Json::obj([
                ("spec", Json::from(note.spec.as_str())),
                ("coverage_ppm", Json::from(note.coverage_ppm)),
                ("filled_slices", Json::from(note.filled_slices)),
                ("measured_slices", Json::from(note.measured_slices)),
            ]),
        ));
    }
    fields.push(("kernels", Json::from(kernels)));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use crate::series::KernelSeries;
    use tq_isa::RoutineId;

    fn sample_profile() -> TquadProfile {
        let mut s0 = KernelSeries::new();
        s0.record(0, true, 100, false);
        s0.record(1, false, 50, true);
        let mut s1 = KernelSeries::new();
        s1.record(2, true, 10, false);
        TquadProfile {
            interval: 100,
            total_icount: 300,
            kernels: vec![
                KernelProfile {
                    rtn: RoutineId(0),
                    name: "alpha".into(),
                    main_image: true,
                    calls: 1,
                    series: s0,
                },
                KernelProfile {
                    rtn: RoutineId(1),
                    name: "beta".into(),
                    main_image: true,
                    calls: 2,
                    series: s1,
                },
            ],
            dropped_accesses: 0,
            prefetches_ignored: 0,
            instr: None,
        }
    }

    #[test]
    fn phase_table_renders_rows_per_kernel() {
        let p = sample_profile();
        let phases = vec![
            Phase {
                span: (0, 1),
                kernels: vec![RoutineId(0)],
            },
            Phase {
                span: (2, 2),
                kernels: vec![RoutineId(1)],
            },
        ];
        let t = phase_table(&p, &phases);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.contains("phase-1"));
        assert!(s.contains("alpha"));
        assert!(s.contains("phase-2"));
        assert!(s.contains("beta"));
    }

    #[test]
    fn figure_chart_selects_measure_and_scale() {
        let p = sample_profile();
        let c = figure_chart(&p, &["alpha", "beta"], Measure::ReadIncl, 16, None);
        let s = c.render();
        // alpha peaks at 100 B / 100 instr = 1 B/instr.
        assert!(s.contains("peak 1.0000"), "{s}");
        // beta reads 10 B in its slice → 0.1 B/instr.
        assert!(s.contains("peak 0.1000"), "{s}");
    }

    #[test]
    fn figure_chart_caps_slices() {
        let p = sample_profile();
        let c = figure_chart(&p, &["beta"], Measure::ReadIncl, 16, Some(2));
        // beta is only active in slice 2, which is cut off.
        assert!(c.render().contains("peak 0.0000"));
    }

    #[test]
    fn unknown_kernels_are_skipped() {
        let p = sample_profile();
        let c = figure_chart(&p, &["nope"], Measure::WriteExcl, 16, None);
        assert_eq!(c.render().lines().count(), 1, "title only");
    }

    #[test]
    fn profile_json_is_deterministic_and_complete() {
        let p = sample_profile();
        let a = profile_json(&p).render();
        let b = profile_json(&p).render();
        assert_eq!(a, b, "canonical rendering is stable");
        let v = Json::parse(&a).unwrap();
        assert_eq!(v.get("interval").unwrap().as_u64(), Some(100));
        let kernels = v.get("kernels").unwrap().as_arr().unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].get("name").unwrap().as_str(), Some("alpha"));
        let entries = kernels[0].get("series").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("r_incl").unwrap().as_u64(), Some(100));
    }
}
