//! The tQUAD tool proper: the VM plug-in that turns memory-access events
//! into per-kernel time-sliced bandwidth series.
//!
//! Mirrors the paper's implementation (§IV.C):
//!
//! * instrumentation attaches analysis calls to every instruction that
//!   references memory (`IncreaseRead`/`IncreaseWrite`) plus every return;
//! * routine-granularity instrumentation attaches `EnterFC`, which pushes
//!   the internal call stack — with the `flag` check that skips functions
//!   outside the main image under the exclusion option;
//! * analysis routines receive the instruction pointer, byte count, the
//!   prefetch flag (they return immediately for prefetches), and the stack
//!   pointer for local-stack-area classification;
//! * predicated instructions only reach the analysis routine when their
//!   predicate held (`INS_InsertPredicatedCall` semantics, enforced by the
//!   VM).

use crate::callstack::CallStack;
use crate::options::{LibPolicy, TquadOptions};
use crate::profile::{KernelProfile, TquadProfile};
use crate::recon::{reconstruct_series, ReconNote};
use crate::series::KernelSeries;
use tq_isa::RoutineId;
use tq_vm::{
    hooks, is_stack_access, Event, HookMask, InsContext, InstrInfo, MergeTool, ProgramInfo,
    ShardContext, Tool,
};

/// The tQUAD profiler tool. Attach to a [`tq_vm::Vm`], run the program, then
/// [`TquadTool::into_profile`] the detached tool.
pub struct TquadTool {
    opts: TquadOptions,
    /// Per-routine: is it tracked (gets frames + attribution)?
    tracked: Vec<bool>,
    names: Vec<String>,
    main_image: Vec<bool>,
    stack: CallStack,
    series: Vec<KernelSeries>,
    calls: Vec<u64>,
    max_icount: u64,
    /// Accesses dropped by the library policy (reported for transparency).
    dropped_accesses: u64,
    /// Prefetch events ignored by the analysis routines.
    prefetches_ignored: u64,
    /// Reduced-instrumentation metadata of the producing run, delivered
    /// via [`Tool::on_instr`]; `None` under full instrumentation.
    instr: Option<InstrInfo>,
}

impl TquadTool {
    /// New tool with the given options.
    pub fn new(opts: TquadOptions) -> Self {
        TquadTool {
            opts,
            tracked: Vec::new(),
            names: Vec::new(),
            main_image: Vec::new(),
            stack: CallStack::new(),
            series: Vec::new(),
            calls: Vec::new(),
            max_icount: 0,
            dropped_accesses: 0,
            prefetches_ignored: 0,
            instr: None,
        }
    }

    /// Consume the tool into its measurement results. When the run used a
    /// gating `--instr` mode (sampling or convergence), each kernel series
    /// is reconstructed to full-run shape (see [`crate::recon`]) and the
    /// profile carries a [`ReconNote`]; exact runs pass through untouched.
    pub fn into_profile(self) -> TquadProfile {
        let gated = self.instr.as_ref().filter(|i| i.slice_len > 0).map(|i| {
            // Anchor the estimator on the true run length, not the
            // last *delivered* event (gating can silence the tail).
            let mut i = i.clone();
            i.total_icount = i.total_icount.max(self.max_icount);
            i
        });
        let interval = self.opts.slice_interval;
        let mut filled = 0u64;
        let mut measured = 0u64;
        let kernels: Vec<KernelProfile> = self
            .names
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                let series = match &gated {
                    Some(info) => {
                        let (s, f, m) =
                            reconstruct_series(&self.series[i], interval, info, i as u32);
                        filled += f;
                        measured += m;
                        s
                    }
                    None => self.series[i].clone(),
                };
                KernelProfile {
                    rtn: RoutineId(i as u32),
                    name,
                    main_image: self.main_image[i],
                    calls: self.calls[i],
                    series,
                }
            })
            .collect();
        let instr = self.instr.as_ref().map(|info| ReconNote {
            spec: info.spec.clone(),
            coverage_ppm: (info.coverage() * 1e6).round() as u64,
            filled_slices: filled,
            measured_slices: measured,
        });
        TquadProfile {
            interval,
            total_icount: self.max_icount,
            kernels,
            dropped_accesses: self.dropped_accesses,
            prefetches_ignored: self.prefetches_ignored,
            instr,
        }
    }

    /// The kernel an access belongs to: the top of the internal call stack,
    /// falling back to the instruction's static routine for code executing
    /// before any tracked entry.
    #[inline]
    fn attribute(&self, static_rtn: RoutineId) -> Option<RoutineId> {
        match self.stack.current() {
            Some(k) => Some(k),
            None => {
                if static_rtn != RoutineId::INVALID && self.tracked[static_rtn.idx()] {
                    Some(static_rtn)
                } else {
                    None
                }
            }
        }
    }

    #[inline]
    fn record(
        &mut self,
        static_rtn: RoutineId,
        icount: u64,
        is_read: bool,
        size: u32,
        ea: u64,
        sp: u64,
    ) {
        // Under the Drop policy, traffic executed inside untracked routines
        // vanishes from the report entirely.
        if self.opts.lib_policy == LibPolicy::Drop
            && static_rtn != RoutineId::INVALID
            && !self.tracked[static_rtn.idx()]
        {
            self.dropped_accesses += 1;
            return;
        }
        let Some(kernel) = self.attribute(static_rtn) else {
            self.dropped_accesses += 1;
            return;
        };
        let slice = (icount - 1) / self.opts.slice_interval;
        let is_stack = is_stack_access(ea, sp);
        self.series[kernel.idx()].record(slice, is_read, size as u64, is_stack);
    }
}

impl Tool for TquadTool {
    fn name(&self) -> &str {
        "tquad"
    }

    fn on_attach(&mut self, info: &ProgramInfo) {
        // PIN_InitSymbols equivalent: copy the routine table.
        for r in &info.routines {
            let tracked = match self.opts.lib_policy {
                LibPolicy::Track => true,
                LibPolicy::AttributeToCaller | LibPolicy::Drop => r.main_image,
            };
            self.tracked.push(tracked);
            self.names.push(r.name.clone());
            self.main_image.push(r.main_image);
            self.series.push(KernelSeries::new());
            self.calls.push(0);
        }
    }

    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
        // "tQUAD instruments every load, store, call and return
        // instruction" — plus routine entries for EnterFC.
        let mut m = hooks::NONE;
        if ins.inst.may_read_memory() {
            m |= hooks::MEM_READ;
        }
        if ins.inst.may_write_memory() {
            m |= hooks::MEM_WRITE;
        }
        if ins.inst.is_ret() {
            m |= hooks::RET;
        }
        if ins.is_rtn_start {
            m |= hooks::RTN_ENTER;
        }
        m
    }

    fn event_mask(&self) -> HookMask {
        // Replay delivery mask: tQUAD never inspects Call or Tick events,
        // so replay skips constructing those deliveries entirely.
        hooks::MEM_READ | hooks::MEM_WRITE | hooks::RET | hooks::RTN_ENTER
    }

    fn on_instr(&mut self, info: &InstrInfo) {
        self.instr = Some(info.clone());
    }

    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::MemRead {
                ea,
                size,
                sp,
                is_prefetch,
                icount,
                rtn,
                ..
            } => {
                self.max_icount = icount;
                if is_prefetch {
                    // "The corresponding analysis routines return
                    // immediately upon detection of a prefetch state."
                    self.prefetches_ignored += 1;
                    return;
                }
                self.record(rtn, icount, true, size, ea, sp);
            }
            Event::MemWrite {
                ea,
                size,
                sp,
                icount,
                rtn,
                ..
            } => {
                self.max_icount = icount;
                self.record(rtn, icount, false, size, ea, sp);
            }
            Event::RoutineEnter { rtn, sp, icount } => {
                self.max_icount = icount;
                // EnterFC: `flag` says whether the function is in the main
                // image; untracked routines never get a frame.
                if self.tracked[rtn.idx()] {
                    self.stack.enter(rtn, sp);
                    self.calls[rtn.idx()] += 1;
                }
            }
            Event::Ret { rtn, icount, .. } => {
                self.max_icount = icount;
                self.stack.ret_in(rtn);
            }
            Event::Call { .. } | Event::Tick { .. } => {}
        }
    }

    fn on_fini(&mut self, final_icount: u64) {
        self.max_icount = self.max_icount.max(final_icount);
    }
}

impl MergeTool for TquadTool {
    fn fork(&self, info: &ProgramInfo, ctx: &ShardContext) -> Box<dyn MergeTool> {
        let mut t = TquadTool::new(self.opts);
        t.on_attach(info);
        // Seed the internal call stack with the frames this tool would
        // have pushed over the prefix: all routines under Track, main-image
        // only otherwise. Seeded frames are resumed, not entered — `calls`
        // stays zero (the shard that saw the entry event counts it).
        for &(rtn, sp) in ctx.frames(self.opts.lib_policy == LibPolicy::Track) {
            t.stack.enter(rtn, sp);
        }
        Box::new(t)
    }

    fn absorb(&mut self, other: Box<dyn MergeTool>) {
        let other = other
            .into_any()
            .downcast::<TquadTool>()
            .expect("absorb: shard is not a TquadTool");
        self.max_icount = self.max_icount.max(other.max_icount);
        self.dropped_accesses += other.dropped_accesses;
        self.prefetches_ignored += other.prefetches_ignored;
        for (calls, more) in self.calls.iter_mut().zip(&other.calls) {
            *calls += more;
        }
        for (series, partial) in self.series.iter_mut().zip(&other.series) {
            series.merge(partial);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_isa::RoutineId;
    use tq_vm::RoutineMeta;

    fn info2() -> ProgramInfo {
        ProgramInfo {
            routines: vec![
                RoutineMeta {
                    id: RoutineId(0),
                    name: "main".into(),
                    image: "app".into(),
                    main_image: true,
                    start: 0x10000,
                    end: 0x10100,
                },
                RoutineMeta {
                    id: RoutineId(1),
                    name: "lib_memcpy".into(),
                    image: "libsim".into(),
                    main_image: false,
                    start: 0x1000000,
                    end: 0x1000100,
                },
            ],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        }
    }

    fn read_ev(ea: u64, icount: u64, rtn: RoutineId) -> Event {
        Event::MemRead {
            ip: 0x10008,
            ea,
            size: 8,
            sp: 0x3FFF_F000,
            is_prefetch: false,
            icount,
            rtn,
        }
    }

    #[test]
    fn slices_and_stack_classification() {
        let mut t = TquadTool::new(TquadOptions::default().with_interval(100));
        t.on_attach(&info2());
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FF00,
            icount: 1,
        });
        t.on_event(&read_ev(0x1000_0000, 5, RoutineId(0))); // global, slice 0
        t.on_event(&read_ev(0x3FFF_F800, 150, RoutineId(0))); // stack, slice 1
        let p = t.into_profile();
        let k = &p.kernels[0];
        assert_eq!(k.series.entries().len(), 2);
        assert_eq!(k.series.entries()[0].r_excl, 8);
        assert_eq!(k.series.entries()[1].r_excl, 0, "stack access excluded");
        assert_eq!(k.series.entries()[1].r_incl, 8);
        assert_eq!(k.calls, 1);
    }

    #[test]
    fn prefetches_are_ignored() {
        let mut t = TquadTool::new(TquadOptions::default());
        t.on_attach(&info2());
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FF00,
            icount: 1,
        });
        t.on_event(&Event::MemRead {
            ip: 0x10008,
            ea: 0x1000_0000,
            size: 8,
            sp: 0x3FFF_F000,
            is_prefetch: true,
            icount: 2,
            rtn: RoutineId(0),
        });
        let p = t.into_profile();
        assert_eq!(p.prefetches_ignored, 1);
        assert_eq!(p.kernels[0].series.entries().len(), 0);
    }

    #[test]
    fn lib_attribution_to_caller() {
        let mut t = TquadTool::new(
            TquadOptions::default()
                .with_interval(100)
                .with_lib_policy(LibPolicy::AttributeToCaller),
        );
        t.on_attach(&info2());
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FF00,
            icount: 1,
        });
        // Library routine entered: no frame. Its read attributes to main.
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(1),
            sp: 0x3FFF_FE00,
            icount: 10,
        });
        t.on_event(&read_ev(0x1000_0000, 11, RoutineId(1)));
        let p = t.into_profile();
        assert_eq!(
            p.kernels[0].series.totals(true).0,
            8,
            "attributed to caller"
        );
        assert_eq!(p.kernels[1].series.totals(true).0, 0);
        assert_eq!(p.kernels[1].calls, 0, "untracked routines count no calls");
    }

    #[test]
    fn lib_drop_policy() {
        let mut t = TquadTool::new(
            TquadOptions::default()
                .with_interval(100)
                .with_lib_policy(LibPolicy::Drop),
        );
        t.on_attach(&info2());
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FF00,
            icount: 1,
        });
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(1),
            sp: 0x3FFF_FE00,
            icount: 10,
        });
        t.on_event(&read_ev(0x1000_0000, 11, RoutineId(1)));
        let p = t.into_profile();
        assert_eq!(p.kernels[0].series.totals(true).0, 0);
        assert_eq!(p.kernels[1].series.totals(true).0, 0);
        assert_eq!(p.dropped_accesses, 1);
    }

    #[test]
    fn lib_track_policy() {
        let mut t = TquadTool::new(
            TquadOptions::default()
                .with_interval(100)
                .with_lib_policy(LibPolicy::Track),
        );
        t.on_attach(&info2());
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FF00,
            icount: 1,
        });
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(1),
            sp: 0x3FFF_FE00,
            icount: 10,
        });
        t.on_event(&read_ev(0x1000_0000, 11, RoutineId(1)));
        let p = t.into_profile();
        assert_eq!(p.kernels[1].series.totals(true).0, 8);
        assert_eq!(p.kernels[1].calls, 1);
    }

    #[test]
    fn ret_pops_back_to_caller() {
        let mut t = TquadTool::new(TquadOptions::default().with_interval(100));
        t.on_attach(&info2());
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FF00,
            icount: 1,
        });
        // main calls itself (recursion-like second frame).
        t.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 0x3FFF_FE00,
            icount: 5,
        });
        t.on_event(&Event::Ret {
            ip: 0x10020,
            return_to: 0x10008,
            icount: 9,
            rtn: RoutineId(0),
        });
        assert_eq!(t.stack.depth(), 1);
        t.on_event(&read_ev(0x1000_0000, 12, RoutineId(0)));
        let p = t.into_profile();
        assert_eq!(p.kernels[0].series.totals(true).0, 8);
    }
}
