//! # tq-tquad — the tQUAD profiler (the paper's primary contribution)
//!
//! tQUAD delivers *temporal memory bandwidth usage* per kernel: time is
//! measured in executed instructions (platform independent), divided into
//! configurable *time slices*; each kernel's reads and writes are recorded
//! per slice, classified as local-stack-area or global, and attributed via
//! an internal call stack maintained from routine-entry and return events.
//! From the series the crate derives activity spans, average and peak
//! bandwidth in bytes/instruction, and the execution *phases* of the
//! program (Table IV, Figures 6–7 of the paper).
//!
//! * [`TquadTool`] — the VM plug-in ([`tq_vm::Tool`]);
//! * [`TquadProfile`] / [`BandwidthStats`] — results and derived statistics;
//! * [`PhaseDetector`] — phase identification (two clustering strategies);
//! * [`report`] — Table IV and Figure 6/7 rendering.

pub mod callstack;
pub mod options;
pub mod phase;
pub mod profile;
pub mod recon;
pub mod report;
pub mod series;
pub mod tool;

pub use callstack::CallStack;
pub use options::{LibPolicy, TquadOptions};
pub use phase::{Phase, PhaseDetector, PhaseStrategy};
pub use profile::{ActivityInterval, BandwidthStats, KernelProfile, TquadProfile};
pub use recon::{reconstruct_series, ReconNote};
pub use report::{figure_chart, phase_table, profile_json, Measure};
pub use series::{KernelSeries, SliceEntry};
pub use tool::TquadTool;
