//! # tq-faults — deterministic fault injection for the profiling service
//!
//! A production service is only as trustworthy as its worst day, and the
//! worst day never happens on the developer's machine unless it is made to.
//! This crate lets `tq-profd` (and anything else in the workspace) rehearse
//! failure on demand: a **fault plan** assigns each named injection point a
//! probability and an optional delay, and the hooks threaded through the
//! server decide *deterministically* — from the plan's seed and a global
//! draw counter, via splitmix64 — whether to fire at each visit.
//!
//! Design constraints, in order:
//!
//! * **free when off** — the production configuration. With no plan
//!   installed, every hook is one relaxed atomic load and a branch (the
//!   same discipline as `tq-obs`; the `obs_overhead` bench guard in
//!   `tq-bench` bounds both);
//! * **deterministic** — the decision at draw *n* is a pure function of
//!   `(seed, n)`. Two runs of a single-threaded workload under the same
//!   plan inject identically; concurrent workloads still draw from one
//!   reproducible sequence, only the thread interleaving varies;
//! * **zero dependencies** — the crate stands alone so anything (including
//!   `tq-isa`'s own tests, in principle) can use it without cycles.
//!
//! ## Plan syntax
//!
//! A plan is a comma-separated list of `key=value` clauses, accepted either
//! programmatically ([`FaultPlan::parse`]) or via the `TQ_FAULTS`
//! environment variable ([`init_from_env`]):
//!
//! ```text
//! TQ_FAULTS="seed=42,worker_panic=0.05,read_stall=0.1:50ms,slow_replay=0.2:10ms"
//! ```
//!
//! Each fault clause is `<point>=<probability>[:<delay>]`. Probabilities
//! are in `[0,1]`; delays take `ns`/`us`/`ms`/`s` suffixes (default unit
//! milliseconds, default value 10ms) and only matter for the delay-shaped
//! points. `seed=N` (default 0) picks the deterministic decision stream.
//! See `docs/OPERATIONS.md` for a cookbook of worked examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of distinct injection points ([`FaultPoint`] variants).
pub const N_POINTS: usize = 5;

/// A named place in the service where a fault may be injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPoint {
    /// Acceptor stalls before handing a fresh connection to its thread
    /// (models a slow `accept(2)` path / SYN-flood mitigation delays).
    AcceptDelay,
    /// Connection thread stalls while reading a request line (models a
    /// slow or stalled client link).
    ReadStall,
    /// A replay worker panics mid-job (models a latent tool bug; the
    /// worker pool must recover and answer with an error).
    WorkerPanic,
    /// The capture cache's disk tier fails an IO operation (models a full
    /// or flaky disk; jobs must fall back to re-recording, not fail).
    CacheIoError,
    /// Replay runs artificially slowly (models oversized workloads; this
    /// is the knob chaos tests use to force queue pressure).
    SlowReplay,
}

impl FaultPoint {
    const ALL: [FaultPoint; N_POINTS] = [
        FaultPoint::AcceptDelay,
        FaultPoint::ReadStall,
        FaultPoint::WorkerPanic,
        FaultPoint::CacheIoError,
        FaultPoint::SlowReplay,
    ];

    fn idx(self) -> usize {
        match self {
            FaultPoint::AcceptDelay => 0,
            FaultPoint::ReadStall => 1,
            FaultPoint::WorkerPanic => 2,
            FaultPoint::CacheIoError => 3,
            FaultPoint::SlowReplay => 4,
        }
    }

    /// The plan-string key for this point (`accept_delay`, `read_stall`,
    /// `worker_panic`, `cache_io_error`, `slow_replay`).
    pub fn key(self) -> &'static str {
        match self {
            FaultPoint::AcceptDelay => "accept_delay",
            FaultPoint::ReadStall => "read_stall",
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::CacheIoError => "cache_io_error",
            FaultPoint::SlowReplay => "slow_replay",
        }
    }

    fn parse_key(s: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.iter().copied().find(|p| p.key() == s)
    }
}

/// What an armed injection point does when it fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Sleep for the rule's delay, then continue normally.
    Sleep(Duration),
    /// Panic (the site is expected to contain the unwind).
    Panic,
    /// Fail the guarded IO operation.
    Error,
}

/// One point's injection rule: fire with `prob`, delay-shaped points sleep
/// for `delay`.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Probability of firing per visit, in `[0,1]`.
    pub prob: f64,
    /// Sleep length for the delay-shaped points; ignored by
    /// `worker_panic` and `cache_io_error`.
    pub delay: Duration,
}

/// A parsed fault plan: a seed plus at most one [`Rule`] per point.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    rules: [Option<Rule>; N_POINTS],
}

fn parse_delay(s: &str) -> Result<Duration, String> {
    let (num, mult_ns) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1_000_000.0)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1_000.0)
    } else if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1_000_000_000.0)
    } else {
        (s, 1_000_000.0) // bare number: milliseconds
    };
    let n: f64 = num
        .parse()
        .map_err(|_| format!("bad delay `{s}` (want e.g. 20ms, 1s, 500us)"))?;
    if !(n >= 0.0) || !n.is_finite() {
        return Err(format!("delay `{s}` must be finite and non-negative"));
    }
    Ok(Duration::from_nanos((n * mult_ns) as u64))
}

impl FaultPlan {
    /// A plan with the given seed and no armed points (useful as a base
    /// for [`FaultPlan::with`] in tests).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: [None; N_POINTS],
        }
    }

    /// Arm `point` with firing probability `prob` and delay `delay`.
    pub fn with(mut self, point: FaultPoint, prob: f64, delay: Duration) -> FaultPlan {
        self.rules[point.idx()] = Some(Rule {
            prob: prob.clamp(0.0, 1.0),
            delay,
        });
        self
    }

    /// The rule armed at `point`, if any.
    pub fn rule(&self, point: FaultPoint) -> Option<Rule> {
        self.rules[point.idx()]
    }

    /// True if no point is armed (such a plan never injects anything).
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(Option::is_none)
    }

    /// Parse a plan string: comma-separated `seed=N` and
    /// `<point>=<prob>[:<delay>]` clauses (see the crate docs for the
    /// grammar and `docs/OPERATIONS.md` for worked examples).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("bad clause `{clause}` (want key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("bad seed `{value}` (want an unsigned integer)"))?;
                continue;
            }
            let point = FaultPoint::parse_key(key).ok_or_else(|| {
                format!(
                    "unknown fault point `{key}` (want one of: {})",
                    FaultPoint::ALL.map(FaultPoint::key).join(", ")
                )
            })?;
            let (prob_s, delay_s) = match value.split_once(':') {
                Some((p, d)) => (p, Some(d)),
                None => (value, None),
            };
            let prob: f64 = prob_s
                .parse()
                .map_err(|_| format!("bad probability `{prob_s}` for `{key}`"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!(
                    "probability for `{key}` must be in [0,1], got {prob}"
                ));
            }
            let delay = match delay_s {
                Some(d) => parse_delay(d)?,
                None => Duration::from_millis(10),
            };
            plan.rules[point.idx()] = Some(Rule { prob, delay });
        }
        Ok(plan)
    }
}

/// Fast gate: true iff a non-empty plan is installed. Mirrors the plan so
/// the disabled hook path never takes the mutex.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// The installed plan (`None` = faults off).
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// Global draw counter: decision `n` is `splitmix64(seed + n)`.
static DRAWS: AtomicU64 = AtomicU64::new(0);
/// Count of faults actually injected (all points).
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// The splitmix64 step — the same generator `tq_isa::prng` seeds itself
/// with, re-derived here to keep the crate dependency-free.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Install `plan` process-wide, resetting the draw and injection counters.
/// An empty plan is equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let mut g = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let on = !plan.is_empty();
    *g = if on { Some(plan) } else { None };
    DRAWS.store(0, Ordering::Relaxed);
    INJECTED.store(0, Ordering::Relaxed);
    ACTIVE.store(on, Ordering::Release);
}

/// Remove any installed plan: every hook returns to the one-load fast path.
pub fn clear() {
    let mut g = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *g = None;
    ACTIVE.store(false, Ordering::Release);
}

/// Install a plan from the `TQ_FAULTS` environment variable if it is set
/// and non-empty. Returns whether a plan was installed; a malformed plan
/// string is an error (the caller should refuse to start, not silently run
/// fault-free).
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var("TQ_FAULTS") {
        Ok(s) if !s.trim().is_empty() => {
            let plan = FaultPlan::parse(&s).map_err(|e| format!("TQ_FAULTS: {e}"))?;
            let on = !plan.is_empty();
            install(plan);
            Ok(on)
        }
        _ => Ok(false),
    }
}

/// True iff a non-empty plan is installed. This is the entire cost of a
/// hook when faults are off: one relaxed load and a branch.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Total faults injected since the last [`install`].
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

#[cold]
fn check_slow(point: FaultPoint) -> Option<Fault> {
    let rule = {
        let g = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        g.as_ref()
            .and_then(|p| p.rule(point).filter(|r| r.prob > 0.0).map(|r| (r, p.seed)))
    };
    let (rule, seed) = rule?;
    // One draw per armed-point visit; the decision is a pure function of
    // (seed, draw index), so a given plan replays the same verdict stream.
    let n = DRAWS.fetch_add(1, Ordering::Relaxed);
    let unit = splitmix64(seed.wrapping_add(n)) as f64 / (u64::MAX as f64 + 1.0);
    if unit >= rule.prob {
        return None;
    }
    INJECTED.fetch_add(1, Ordering::Relaxed);
    Some(match point {
        FaultPoint::WorkerPanic => Fault::Panic,
        FaultPoint::CacheIoError => Fault::Error,
        _ => Fault::Sleep(rule.delay),
    })
}

/// The hook: decide whether `point` fires on this visit. `None` on the
/// (production) fast path; the caller interprets the returned [`Fault`].
#[inline]
pub fn check(point: FaultPoint) -> Option<Fault> {
    if !active() {
        return None;
    }
    check_slow(point)
}

/// Convenience hook for delay-shaped points: sleep if the point fires.
/// Returns whether a stall was injected.
#[inline]
pub fn sleep_if(point: FaultPoint) -> bool {
    match check(point) {
        Some(Fault::Sleep(d)) => {
            std::thread::sleep(d);
            true
        }
        _ => false,
    }
}

/// Convenience hook for [`FaultPoint::WorkerPanic`]-shaped points: panic
/// if the point fires. The surrounding worker loop is expected to catch
/// the unwind and convert it to a clean error reply.
#[inline]
pub fn panic_if(point: FaultPoint) {
    if let Some(Fault::Panic) = check(point) {
        panic!("tq-faults: injected panic at {}", point.key());
    }
}

/// Convenience hook for IO-error-shaped points: `Err` if the point fires.
#[inline]
pub fn fail_if(point: FaultPoint) -> Result<(), String> {
    match check(point) {
        Some(Fault::Error) => Err(format!("tq-faults: injected IO error at {}", point.key())),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate the process-global plan; serialise them.
    fn hold() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_full_plan() {
        let p = FaultPlan::parse(
            "seed=42, worker_panic=0.25, read_stall=0.5:50ms, slow_replay=1:2s, cache_io_error=0.75",
        )
        .expect("parses");
        assert_eq!(p.seed, 42);
        let stall = p.rule(FaultPoint::ReadStall).expect("armed");
        assert_eq!(stall.prob, 0.5);
        assert_eq!(stall.delay, Duration::from_millis(50));
        let slow = p.rule(FaultPoint::SlowReplay).expect("armed");
        assert_eq!(slow.delay, Duration::from_secs(2));
        // Default delay when omitted.
        assert_eq!(
            p.rule(FaultPoint::CacheIoError).expect("armed").delay,
            Duration::from_millis(10)
        );
        assert!(p.rule(FaultPoint::AcceptDelay).is_none());
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("worker_panic").is_err(), "missing =");
        assert!(FaultPlan::parse("nope=0.5").is_err(), "unknown point");
        assert!(FaultPlan::parse("worker_panic=2").is_err(), "prob > 1");
        assert!(FaultPlan::parse("worker_panic=x").is_err(), "bad prob");
        assert!(FaultPlan::parse("read_stall=0.5:abc").is_err(), "bad delay");
        assert!(FaultPlan::parse("seed=-1").is_err(), "bad seed");
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
    }

    #[test]
    fn delay_units() {
        assert_eq!(parse_delay("20ms").unwrap(), Duration::from_millis(20));
        assert_eq!(parse_delay("3s").unwrap(), Duration::from_secs(3));
        assert_eq!(parse_delay("500us").unwrap(), Duration::from_micros(500));
        assert_eq!(parse_delay("250ns").unwrap(), Duration::from_nanos(250));
        assert_eq!(parse_delay("7").unwrap(), Duration::from_millis(7));
    }

    #[test]
    fn inactive_by_default_and_after_clear() {
        let _g = hold();
        clear();
        assert!(!active());
        assert_eq!(check(FaultPoint::WorkerPanic), None);
        install(FaultPlan::seeded(1).with(FaultPoint::WorkerPanic, 1.0, Duration::ZERO));
        assert!(active());
        clear();
        assert!(!active());
        // An empty plan does not arm the gate.
        install(FaultPlan::seeded(9));
        assert!(!active());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let _g = hold();
        let plan = FaultPlan::seeded(7).with(FaultPoint::SlowReplay, 0.5, Duration::ZERO);
        let draw = |plan: &FaultPlan, n: usize| -> Vec<bool> {
            install(plan.clone());
            (0..n)
                .map(|_| check(FaultPoint::SlowReplay).is_some())
                .collect()
        };
        let a = draw(&plan, 64);
        let b = draw(&plan, 64);
        assert_eq!(a, b, "same seed, same verdict stream");
        assert!(a.iter().any(|&x| x), "p=0.5 fires within 64 draws");
        assert!(a.iter().any(|&x| !x), "p=0.5 skips within 64 draws");
        let c = draw(
            &FaultPlan::seeded(8).with(FaultPoint::SlowReplay, 0.5, Duration::ZERO),
            64,
        );
        assert_ne!(a, c, "different seed, different stream");
        clear();
    }

    #[test]
    fn probabilities_zero_and_one() {
        let _g = hold();
        install(FaultPlan::seeded(3).with(FaultPoint::CacheIoError, 0.0, Duration::ZERO));
        // p=0 arms the gate but never fires or counts.
        for _ in 0..32 {
            assert_eq!(check(FaultPoint::CacheIoError), None);
        }
        assert_eq!(injected(), 0);
        install(FaultPlan::seeded(3).with(FaultPoint::CacheIoError, 1.0, Duration::ZERO));
        for _ in 0..8 {
            assert!(fail_if(FaultPoint::CacheIoError).is_err());
        }
        assert_eq!(injected(), 8);
        // Unarmed points never fire even while the plan is active.
        assert_eq!(check(FaultPoint::ReadStall), None);
        clear();
    }

    #[test]
    fn panic_hook_panics_and_is_catchable() {
        let _g = hold();
        install(FaultPlan::seeded(0).with(FaultPoint::WorkerPanic, 1.0, Duration::ZERO));
        let r = std::panic::catch_unwind(|| panic_if(FaultPoint::WorkerPanic));
        assert!(r.is_err(), "p=1 worker_panic must panic");
        clear();
    }

    #[test]
    fn env_init_roundtrip() {
        let _g = hold();
        // Explicit parse of an env-style string rather than process-global
        // set_var (the test binary is multi-threaded).
        let plan = FaultPlan::parse("seed=5,accept_delay=1:1ns").expect("parses");
        install(plan);
        assert!(active());
        assert!(sleep_if(FaultPoint::AcceptDelay));
        assert!(injected() >= 1);
        clear();
    }
}
