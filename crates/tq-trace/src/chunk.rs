//! Chunked, seekable replay: split the event stream into resumable shards
//! and fan them out over scoped threads.
//!
//! A [`ChunkMeta`] records where a shard's events start/end in the byte
//! stream plus the [`ShardContext`] snapshot (delta-decoder registers,
//! virtual clock, and both call-stack variants) needed to replay that span
//! as if the whole prefix had been replayed first. [`Trace::chunk_index`]
//! builds the index with one sequential decode pass;
//! [`Trace::replay_sharded`] then drives one [`MergeTool`] worker per chunk
//! and folds the partial states back together **in chunk order**, which is
//! what lets order-dependent state (QUAD's last-writer shadow memory)
//! resolve cross-shard references exactly. Determinism is the contract:
//! sharded output must be byte-identical to sequential output.

use crate::varint::{read_i64, read_u64, write_i64, write_u64};
use crate::{
    DeltaState, Trace, TraceError, K_CALL, K_FINI, K_MEM_READ, K_MEM_WRITE, K_RET, K_RTN_ENTER,
};
use tq_isa::RoutineId;
use tq_vm::{MergeTool, ShardContext};

/// Index width capture paths should embed by default: fine enough that
/// [`Trace::replay_sharded`] can coarsen it to any realistic job count
/// without rescanning, coarse enough that the index stays tiny next to
/// the event stream.
pub const DEFAULT_CHUNKS: usize = 64;

/// Event index at which chunk `k` of `n_chunks` begins:
/// `k * total / n_chunks`, computed in u128 so the product cannot wrap for
/// any u64 event count. The pre-fix u64 `wrapping_mul` silently misplaced
/// shard boundaries once `k * total` passed 2^64 — the regime the paper's
/// full-scale runs (billions of events) head towards — instead of erroring.
#[inline]
fn chunk_start_event(k: usize, total: u64, n_chunks: usize) -> u64 {
    ((k as u128 * total as u128) / n_chunks as u128) as u64
}

/// One shard of the event stream: a byte range plus the snapshot needed to
/// resume decoding (and tool analysis) at its first event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Byte offset of the chunk's first event in `Trace::events`.
    pub start: u64,
    /// Byte offset one past the chunk's last event.
    pub end: u64,
    /// Resume snapshot at `start` (its `start_event` field is the 0-based
    /// index of the chunk's first event).
    pub ctx: ShardContext,
}

impl Trace {
    /// Build a chunk index with `n_chunks` near-equal shards (by event
    /// count) in one sequential decode pass. Chunk `k` starts at event
    /// `k * n_events / n_chunks`, so chunks are non-empty whenever
    /// `n_chunks <= n_events`; requesting more chunks than events yields
    /// trailing empty chunks, which replay as no-ops.
    ///
    /// Corrupt streams (truncated varints, unknown kinds) return `Err`;
    /// routine ids outside the routine table are treated as non-main-image
    /// rather than panicking. `n_chunks` is clamped to the same 2^20
    /// ceiling the loader accepts, so a wild request cannot blow up the
    /// index allocation.
    pub fn chunk_index(&self, n_chunks: usize) -> Result<Vec<ChunkMeta>, TraceError> {
        let _span = tq_obs::span("decode", "replay");
        let n_chunks = n_chunks.clamp(1, 1 << 20);
        let buf = &self.events;
        let mut pos = 0usize;
        let mut st = DeltaState::default();
        let mut last_rtn = RoutineId::INVALID;
        // Both stack variants, maintained with the tools' own update rules
        // (see `ShardContext`): every routine vs. main-image-only pushes,
        // pop-iff-top-matches on ret.
        let mut frames_all: Vec<(RoutineId, u64)> = Vec::new();
        let mut frames_main: Vec<(RoutineId, u64)> = Vec::new();
        let mut starts: Vec<(u64, ShardContext)> = Vec::with_capacity(n_chunks);
        let mut ev_idx: u64 = 0;
        let total = self.n_events;
        let mut next_k = 0usize;

        macro_rules! ru {
            () => {
                read_u64(buf, &mut pos).ok_or(TraceError::Malformed("truncated varint"))?
            };
        }
        macro_rules! ri {
            () => {
                read_i64(buf, &mut pos).ok_or(TraceError::Malformed("truncated varint"))?
            };
        }
        macro_rules! snapshot {
            () => {
                ShardContext {
                    start_event: ev_idx,
                    icount: st.icount,
                    ip: st.ip,
                    ea: st.ea,
                    sp: st.sp,
                    last_rtn,
                    frames_all: frames_all.clone(),
                    frames_main: frames_main.clone(),
                }
            };
        }

        let end_pos = loop {
            while next_k < n_chunks && chunk_start_event(next_k, total, n_chunks) == ev_idx {
                starts.push((pos as u64, snapshot!()));
                next_k += 1;
            }
            if pos >= buf.len() {
                break pos;
            }
            let kind = ru!();
            st.icount = st.icount.wrapping_add(ru!());
            match kind {
                K_MEM_READ => {
                    st.ip = st.ip.wrapping_add_signed(ri!());
                    st.ea = st.ea.wrapping_add_signed(ri!());
                    let _size = ru!();
                    st.sp = st.sp.wrapping_add_signed(ri!());
                    let packed = ru!();
                    last_rtn = RoutineId((packed >> 1) as u32);
                }
                K_MEM_WRITE => {
                    st.ip = st.ip.wrapping_add_signed(ri!());
                    st.ea = st.ea.wrapping_add_signed(ri!());
                    let _size = ru!();
                    st.sp = st.sp.wrapping_add_signed(ri!());
                    last_rtn = RoutineId(ru!() as u32);
                }
                K_CALL => {
                    st.ip = st.ip.wrapping_add_signed(ri!());
                    let _callee = ru!();
                    last_rtn = RoutineId(ru!() as u32);
                }
                K_RET => {
                    st.ip = st.ip.wrapping_add_signed(ri!());
                    let _return_to = ri!();
                    let rtn = RoutineId(ru!() as u32);
                    last_rtn = rtn;
                    if frames_all.last().is_some_and(|f| f.0 == rtn) {
                        frames_all.pop();
                    }
                    if frames_main.last().is_some_and(|f| f.0 == rtn) {
                        frames_main.pop();
                    }
                }
                K_RTN_ENTER => {
                    let rtn = RoutineId(ru!() as u32);
                    st.sp = st.sp.wrapping_add_signed(ri!());
                    last_rtn = rtn;
                    frames_all.push((rtn, st.sp));
                    let main_image = self
                        .info
                        .routines
                        .get(rtn.idx())
                        .is_some_and(|r| r.main_image);
                    if main_image {
                        frames_main.push((rtn, st.sp));
                    }
                }
                K_FINI => {
                    // Logical end of stream: sequential replay stops here,
                    // so trailing bytes (if any) belong to no chunk.
                    ev_idx += 1;
                    break pos;
                }
                _ => return Err(TraceError::Malformed("unknown event kind")),
            }
            ev_idx += 1;
        };

        // Boundaries past the actual stream end (n_events overstated, or a
        // mid-stream Fini) become empty chunks at the final position.
        while next_k < n_chunks {
            starts.push((end_pos as u64, snapshot!()));
            next_k += 1;
        }

        let mut chunks = Vec::with_capacity(n_chunks);
        for (i, (start, ctx)) in starts.iter().enumerate() {
            let end = starts.get(i + 1).map_or(end_pos as u64, |(s, _)| *s);
            chunks.push(ChunkMeta {
                start: *start,
                end,
                ctx: ctx.clone(),
            });
        }
        Ok(chunks)
    }

    /// Attach a precomputed `n_chunks`-way index, upgrading the trace to
    /// the seekable TQTRACE2 format on the next `save`.
    pub fn with_chunk_index(mut self, n_chunks: usize) -> Result<Trace, TraceError> {
        self.chunks = Some(self.chunk_index(n_chunks)?);
        Ok(self)
    }

    /// Data-parallel replay: split the stream into `n_jobs` chunks, fork
    /// one worker per chunk via [`MergeTool::fork`], replay every chunk
    /// concurrently on scoped threads, then [`MergeTool::absorb`] the
    /// workers back into `tool` in chunk order. The result is
    /// byte-identical to [`Trace::replay`] for the same tool — that
    /// equivalence is enforced by the determinism tests and the
    /// `verify.sh` smoke check.
    ///
    /// An embedded index with at least `n_jobs` chunks is coarsened into
    /// shard spans for free (each shard takes a run of adjacent chunks and
    /// resumes from the first one's snapshot), so a trace indexed once at
    /// capture time never pays the index scan again, for *any* job count
    /// up to the index width. Without a usable index the scan runs here —
    /// a sequential decode pass that caps the speedup, which is why
    /// capture paths index eagerly.
    ///
    /// `n_jobs <= 1` (or a trace with fewer events than jobs would leave
    /// non-trivial) degrades to plain sequential replay.
    pub fn replay_sharded(
        &self,
        tool: &mut dyn MergeTool,
        n_jobs: usize,
    ) -> Result<(), TraceError> {
        let _span = tq_obs::span("replay_sharded", "replay");
        let max_shards = self.n_events.clamp(1, 1 << 16) as usize;
        let shards = n_jobs.clamp(1, max_shards);
        if shards <= 1 {
            return self.replay(tool);
        }
        crate::obs::sharded_replays().inc();
        let chunks: Vec<ChunkMeta> = match &self.chunks {
            // Coarsen a finer (or equal) index: shard `k` spans the
            // contiguous chunk run `[k*len/shards, (k+1)*len/shards)`.
            Some(idx) if idx.len() >= shards => (0..shards)
                .map(|k| {
                    let lo = k * idx.len() / shards;
                    let hi = (k + 1) * idx.len() / shards;
                    ChunkMeta {
                        start: idx[lo].start,
                        end: idx[hi - 1].end,
                        ctx: idx[lo].ctx.clone(),
                    }
                })
                .collect(),
            _ => self.chunk_index(shards)?,
        };

        tool.on_attach(&self.info);
        if let Some(instr) = &self.instr {
            tool.on_instr(instr);
        }
        let mut workers: Vec<Box<dyn MergeTool>> = {
            let _fork = tq_obs::span("fork", "replay");
            chunks[1..]
                .iter()
                .map(|c| tool.fork(&self.info, &c.ctx))
                .collect()
        };

        let (head, tails) = std::thread::scope(|s| {
            let handles: Vec<_> = workers
                .iter_mut()
                .zip(&chunks[1..])
                .enumerate()
                .map(|(i, (w, c))| {
                    s.spawn(move || {
                        if tq_obs::enabled() {
                            tq_obs::set_thread_name(format!("shard-{}", i + 1));
                        }
                        let _shard = tq_obs::span_named(format!("shard-{}", i + 1), "replay");
                        self.replay_span(c.start as usize, c.end as usize, &c.ctx, &mut **w)
                    })
                })
                .collect();
            // The root tool takes chunk 0 on this thread instead of idling.
            let c0 = &chunks[0];
            let head = {
                let _shard = tq_obs::span("shard-0", "replay");
                self.replay_span(c0.start as usize, c0.end as usize, &c0.ctx, tool)
            };
            let tails: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            (head, tails)
        });

        let _merge = tq_obs::span("merge", "replay");
        let mut end = head?;
        for (worker, result) in workers.into_iter().zip(tails) {
            end = result?;
            tool.absorb(worker);
        }
        if !end.saw_fini {
            tool.on_fini(end.last_icount);
        }
        Ok(())
    }
}

/// Serialise a chunk index (the TQTRACE2 tail section).
pub(crate) fn write_index(buf: &mut Vec<u8>, chunks: &[ChunkMeta]) {
    write_u64(buf, chunks.len() as u64);
    for c in chunks {
        write_u64(buf, c.start);
        write_u64(buf, c.end);
        write_u64(buf, c.ctx.start_event);
        write_u64(buf, c.ctx.icount);
        write_u64(buf, c.ctx.ip);
        write_u64(buf, c.ctx.ea);
        write_u64(buf, c.ctx.sp);
        write_u64(buf, c.ctx.last_rtn.0 as u64);
        for frames in [&c.ctx.frames_all, &c.ctx.frames_main] {
            write_u64(buf, frames.len() as u64);
            for (rtn, sp) in frames {
                write_u64(buf, rtn.0 as u64);
                write_i64(buf, *sp as i64);
            }
        }
    }
}

/// Sanity-check a deserialised chunk index against the trace it claims to
/// describe: byte ranges must lie inside the event stream and every
/// snapshot routine id must be in the routine table, so sharded replay can
/// seed tool call stacks from the snapshots without re-checking. A corrupt
/// index is a `Malformed` load error, never a later panic.
pub(crate) fn validate_index(
    chunks: &[ChunkMeta],
    n_rtns: u32,
    ev_len: u64,
) -> Result<(), TraceError> {
    let bad = || TraceError::Malformed("corrupt chunk index");
    let rtn_ok = |r: RoutineId| r != RoutineId::INVALID && r.0 < n_rtns;
    for c in chunks {
        if c.start > c.end || c.end > ev_len {
            return Err(bad());
        }
        if c.ctx.last_rtn != RoutineId::INVALID && !rtn_ok(c.ctx.last_rtn) {
            return Err(bad());
        }
        for frames in [&c.ctx.frames_all, &c.ctx.frames_main] {
            if !frames.iter().all(|&(r, _)| rtn_ok(r)) {
                return Err(bad());
            }
        }
    }
    Ok(())
}

/// Deserialise a chunk index written by [`write_index`].
pub(crate) fn read_index(bytes: &[u8], pos: &mut usize) -> Result<Vec<ChunkMeta>, TraceError> {
    macro_rules! ru {
        () => {
            read_u64(bytes, pos).ok_or(TraceError::Malformed("truncated chunk index"))?
        };
    }
    let n = ru!();
    if n > 1 << 20 {
        return Err(TraceError::Malformed("implausible chunk count"));
    }
    let mut chunks = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let start = ru!();
        let end = ru!();
        let mut ctx = ShardContext {
            start_event: ru!(),
            icount: ru!(),
            ip: ru!(),
            ea: ru!(),
            sp: ru!(),
            last_rtn: RoutineId(ru!() as u32),
            ..ShardContext::default()
        };
        for which in 0..2 {
            let len = ru!();
            if len > 1 << 20 {
                return Err(TraceError::Malformed("implausible stack depth"));
            }
            let mut frames = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let rtn = RoutineId(ru!() as u32);
                let sp = read_i64(bytes, pos)
                    .ok_or(TraceError::Malformed("truncated chunk index"))?
                    as u64;
                frames.push((rtn, sp));
            }
            if which == 0 {
                ctx.frames_all = frames;
            } else {
                ctx.frames_main = frames;
            }
        }
        chunks.push(ChunkMeta { start, end, ctx });
    }
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_vm::{standard_mask, Event, HookMask, InsContext, ProgramInfo, RoutineMeta, Tool};

    fn two_rtn_info() -> ProgramInfo {
        ProgramInfo {
            routines: vec![
                RoutineMeta {
                    id: RoutineId(0),
                    name: "main".into(),
                    image: "app".into(),
                    main_image: true,
                    start: 0x10000,
                    end: 0x10100,
                },
                RoutineMeta {
                    id: RoutineId(1),
                    name: "memcpy".into(),
                    image: "libc".into(),
                    main_image: false,
                    start: 0x20000,
                    end: 0x20100,
                },
            ],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        }
    }

    fn sample_trace() -> Trace {
        let mut rec = crate::TraceRecorder::new();
        rec.on_attach(&two_rtn_info());
        let mut ic = 0u64;
        for round in 0..5u64 {
            ic += 1;
            rec.on_event(&Event::RoutineEnter {
                rtn: RoutineId(0),
                sp: 0x3FFF_FF00 - round * 16,
                icount: ic,
            });
            ic += 1;
            rec.on_event(&Event::RoutineEnter {
                rtn: RoutineId(1),
                sp: 0x3FFF_FE00 - round * 16,
                icount: ic,
            });
            ic += 2;
            rec.on_event(&Event::MemWrite {
                ip: 0x20010,
                ea: 0x1000_0000 + round * 8,
                size: 8,
                sp: 0x3FFF_FE00,
                icount: ic,
                rtn: RoutineId(1),
            });
            ic += 1;
            rec.on_event(&Event::Ret {
                ip: 0x20020,
                return_to: 0x10040,
                icount: ic,
                rtn: RoutineId(1),
            });
            ic += 3;
            rec.on_event(&Event::MemRead {
                ip: 0x10048,
                ea: 0x1000_0000 + round * 8,
                size: 8,
                sp: 0x3FFF_FF00,
                is_prefetch: false,
                icount: ic,
                rtn: RoutineId(0),
            });
            ic += 1;
            rec.on_event(&Event::Ret {
                ip: 0x10050,
                return_to: 0x10000,
                icount: ic,
                rtn: RoutineId(0),
            });
        }
        rec.on_fini(ic + 2);
        rec.into_trace()
    }

    #[test]
    fn chunk_starts_land_on_event_boundaries() {
        let trace = sample_trace();
        for n in [1usize, 2, 3, 4, 7, 30, 100] {
            let chunks = trace.chunk_index(n).unwrap();
            assert_eq!(chunks.len(), n);
            assert_eq!(chunks[0].start, 0);
            assert_eq!(chunks[0].ctx, ShardContext::default());
            let mut events = 0u64;
            for (i, c) in chunks.iter().enumerate() {
                assert!(c.start <= c.end, "chunk {i} inverted");
                assert_eq!(c.ctx.start_event, events, "chunk {i} event index");
                if let Some(next) = chunks.get(i + 1) {
                    assert_eq!(c.end, next.start, "chunk {i} not contiguous");
                    events = next.ctx.start_event;
                }
            }
            assert_eq!(chunks.last().unwrap().end, trace.events.len() as u64);
        }
    }

    #[test]
    fn chunk_snapshots_track_both_stack_variants() {
        let trace = sample_trace();
        // Chunk at an odd boundary so some snapshot lands mid-call.
        let chunks = trace.chunk_index(7).unwrap();
        let mid = &chunks[3].ctx;
        // The main-image stack can never be deeper than the full stack, and
        // every main frame is a main-image routine.
        for c in &chunks {
            assert!(c.ctx.frames_main.len() <= c.ctx.frames_all.len());
            for (rtn, _) in &c.ctx.frames_main {
                assert!(trace.info.routines[rtn.idx()].main_image);
            }
        }
        // frames(true) / frames(false) select the right variant.
        assert_eq!(mid.frames(true), &mid.frames_all[..]);
        assert_eq!(mid.frames(false), &mid.frames_main[..]);
    }

    #[test]
    fn span_replay_over_chunks_reproduces_sequential_events() {
        /// Collects replayed events for comparison.
        #[derive(Default)]
        struct Collector {
            events: Vec<String>,
        }
        impl Tool for Collector {
            fn name(&self) -> &str {
                "collector"
            }
            fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
                standard_mask(ins)
            }
            fn on_event(&mut self, ev: &Event) {
                self.events.push(format!("{ev:?}"));
            }
        }

        let trace = sample_trace();
        let mut seq = Collector::default();
        trace.replay(&mut seq).unwrap();

        for n in [2usize, 3, 5, 11] {
            let chunks = trace.chunk_index(n).unwrap();
            let mut got = Vec::new();
            for c in &chunks {
                let mut part = Collector::default();
                trace
                    .replay_span(c.start as usize, c.end as usize, &c.ctx, &mut part)
                    .unwrap();
                got.extend(part.events);
            }
            assert_eq!(got, seq.events, "{n}-way chunking changed the stream");
        }
    }

    #[test]
    fn chunk_index_errors_on_corrupt_streams_instead_of_panicking() {
        let trace = sample_trace();
        // Truncation at every prefix length must be Err or a clean index,
        // never a panic.
        for cut in 0..trace.events.len() {
            let mut t = trace.clone();
            t.events.truncate(cut);
            let _ = t.chunk_index(4);
        }
        // An unknown kind is a hard error.
        let mut t = trace.clone();
        t.events[0] = 0x3F; // kind 63
        assert!(t.chunk_index(2).is_err());
    }

    #[test]
    fn chunk_boundary_math_survives_u64_overflow() {
        // For total >= 2^63 the product k * total wraps u64 at k = 2. The
        // pre-fix `wrapping_mul` math placed chunk 2's boundary at event 1
        // instead of total / 2 — prove the old formula really diverged,
        // then that the u128 formula lands exactly.
        let total = (1u64 << 63) + 2;
        let wrapped = 2u64.wrapping_mul(total) / 4;
        assert_eq!(wrapped, 1, "the pre-fix math wrapped to a tiny boundary");
        assert_eq!(chunk_start_event(2, total, 4), total / 2);
        assert_eq!(chunk_start_event(0, total, 4), 0);
        assert_eq!(chunk_start_event(1, total, 4), total / 4);
        // Boundaries are monotonic non-decreasing across the whole range,
        // even at the absolute edge.
        let mut prev = 0u64;
        for k in 0..=64usize {
            let b = chunk_start_event(k, u64::MAX, 64);
            assert!(b >= prev, "boundary {k} went backwards");
            prev = b;
        }
        assert_eq!(chunk_start_event(64, u64::MAX, 64), u64::MAX);
    }

    #[test]
    fn overstated_event_count_at_overflow_edge_chunks_sanely() {
        // A corrupt header can claim u64::MAX events over a tiny stream.
        // Boundary math at the overflow edge must keep the index sane:
        // chunk 0 covers the decoded stream, unreachable boundaries become
        // trailing empty chunks, and span replay still reproduces the
        // sequential event sequence.
        let mut t = sample_trace();
        t.n_events = u64::MAX;
        let end = t.events.len() as u64;
        for n in [2usize, 3, 4, 7] {
            let chunks = t.chunk_index(n).unwrap();
            assert_eq!(chunks.len(), n);
            assert_eq!((chunks[0].start, chunks[0].end), (0, end));
            for (i, c) in chunks[1..].iter().enumerate() {
                assert_eq!(
                    (c.start, c.end),
                    (end, end),
                    "chunk {} should be a trailing empty",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn index_roundtrips_through_save_load() {
        let trace = sample_trace().with_chunk_index(4).unwrap();
        // Default save upgrades an indexed trace to the columnar v3 form.
        let mut bytes = Vec::new();
        trace.save(&mut bytes).unwrap();
        assert_eq!(&bytes[..8], b"TQTRACE3");
        let back = Trace::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, trace);
        // The index is derived metadata: digests match the plain trace.
        assert_eq!(back.digest(), sample_trace().digest());
        // An explicitly pinned v2 carries the same index and rows.
        let mut v2 = Vec::new();
        trace.save_as(&mut v2, crate::TraceFormat::V2).unwrap();
        assert_eq!(&v2[..8], b"TQTRACE2");
        assert_eq!(Trace::load(&mut v2.as_slice()).unwrap(), trace);
    }
}
