//! LEB128 varints with zigzag signing — the trace format's primitive.

/// Append an unsigned LEB128 varint.
#[inline]
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
#[inline]
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Decode an unsigned varint at `pos`, advancing it. `None` on truncation
/// or a varint longer than 10 bytes.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Decode a zigzag-encoded signed varint.
#[inline]
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    let z = read_u64(buf, pos)?;
    Some(((z >> 1) as i64) ^ -((z & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn signed_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_u64(&buf[..buf.len() - 1], &mut pos), None);
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn read_i64_advances_pos_by_encoded_length() {
        // Several values back to back: each read must advance `pos` by
        // exactly the value's encoded length, leaving it on the next
        // varint's first byte (the decoder state machine depends on it).
        let vals = [0i64, -1, 300, -70_000, i64::MAX, i64::MIN, 42];
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for v in vals {
            let before = buf.len();
            write_i64(&mut buf, v);
            lens.push(buf.len() - before);
        }
        let mut pos = 0;
        for (v, len) in vals.iter().zip(&lens) {
            let before = pos;
            assert_eq!(read_i64(&buf, &mut pos), Some(*v));
            assert_eq!(pos - before, *len, "pos advanced past value {v}");
        }
        assert_eq!(pos, buf.len(), "stream fully consumed");
        // A truncated signed varint is None, same as the unsigned reader.
        let mut cut = Vec::new();
        write_i64(&mut cut, i64::MIN);
        let mut p = 0;
        assert_eq!(read_i64(&cut[..cut.len() - 1], &mut p), None);
    }

    #[test]
    fn ten_byte_acceptance_boundary_is_exact() {
        // u64::MAX is the canonical worst case: nine 0xFF continuation
        // bytes plus a final 0x01 carrying bit 63 — exactly 10 bytes,
        // accepted, with pos landing one past the last byte.
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf[9], 0x01);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(u64::MAX));
        assert_eq!(pos, 10);

        // At shift 63 the tenth byte may contribute only bit 63 (value
        // 0 or 1): anything above 1 would overflow u64 and is rejected.
        let mut bad = buf.clone();
        bad[9] = 0x02;
        let mut pos = 0;
        assert_eq!(read_u64(&bad, &mut pos), None, "tenth byte > 1 overflows");

        // A continuation bit on the tenth byte is rejected no matter what
        // the trailing bytes would decode to — varints are at most
        // 10 bytes, full stop.
        for tenth in [0x80u8, 0x81] {
            let mut long = vec![0xFFu8; 9];
            long.push(tenth);
            long.push(0x00);
            let mut pos = 0;
            assert_eq!(read_u64(&long, &mut pos), None, "11-byte varint rejected");
        }
    }
}
