//! LEB128 varints with zigzag signing — the trace format's primitive.

/// Append an unsigned LEB128 varint.
#[inline]
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
#[inline]
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Decode an unsigned varint at `pos`, advancing it. `None` on truncation
/// or a varint longer than 10 bytes.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Decode a zigzag-encoded signed varint.
#[inline]
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    let z = read_u64(buf, pos)?;
    Some(((z >> 1) as i64) ^ -((z & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn signed_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_u64(&buf[..buf.len() - 1], &mut pos), None);
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }
}
