//! # tq-trace — event-trace recording and offline replay
//!
//! Decouples *capture* from *analysis*, the standard profiler architecture
//! the paper's framework implies: the [`TraceRecorder`] tool runs under
//! the VM once, writing every memory/call/return/routine-entry event into
//! a compact delta+varint stream; [`Trace::replay`] then feeds any
//! [`tq_vm::Tool`] offline, as many times as needed — e.g. the §V.B
//! slice-interval sweep becomes one capture plus N cheap replays instead
//! of N instrumented executions.
//!
//! Replay is **exact** for event-driven tools (tQUAD, QUAD): the replayed
//! event sequence is bit-identical to the live one, which the round-trip
//! tests assert. Tick-driven tools (the sampling profiler) get ticks
//! synthesised from the recorded virtual clock; the tick's instruction
//! pointer is the most recent event's, an approximation documented on
//! [`Trace::replay`].

#![warn(missing_docs)]

pub mod chunk;
pub(crate) mod columnar;
pub mod digest;
pub mod stream;
pub mod varint;

/// Shared metric handles: registered once, updated lock-free afterwards.
pub(crate) mod obs {
    use std::sync::OnceLock;
    use tq_obs::Counter;

    pub fn replays() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            tq_obs::counter("tq_trace_replays_total", "Sequential trace replays started")
        })
    }

    pub fn sharded_replays() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            tq_obs::counter(
                "tq_trace_sharded_replays_total",
                "Sharded trace replays started (after degrading 1-job calls to sequential)",
            )
        })
    }

    pub fn streaming_replays() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            tq_obs::counter(
                "tq_trace_streaming_replays_total",
                "Replays driven through the lazy chunk reader (StreamingTrace)",
            )
        })
    }

    pub fn streamed_chunks() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            tq_obs::counter(
                "tq_trace_streamed_chunks_total",
                "Chunks decoded on demand by the lazy chunk reader",
            )
        })
    }
}

use std::io::{Read, Write};
use std::path::Path;
use tq_isa::RoutineId;
use tq_vm::{
    hooks, standard_mask, Event, HookMask, InsContext, InstrInfo, ProgramInfo, RoutineMeta,
    ShardContext, Tool,
};
use varint::{read_i64, read_u64, write_i64, write_u64};

pub use chunk::{ChunkMeta, DEFAULT_CHUNKS};
pub use digest::{digest_program, Digest128};
pub use stream::StreamingTrace;

const MAGIC: &[u8; 8] = b"TQTRACE1";
/// Version 2 adds an optional chunk index after the event stream; v1 files
/// load unchanged (with no index).
const MAGIC2: &[u8; 8] = b"TQTRACE2";
/// Version 3 keeps the v1/v2 header and chunk index but stores each chunk
/// as a columnar blob (see [`columnar`]): per-(kind, field) columns,
/// in-column deltas, byte-run RLE. Loads to the exact same [`Trace`] —
/// same row bytes, same digest — as the v2 form it was saved from.
const MAGIC3: &[u8; 8] = b"TQTRACE3";
/// Tag of the optional instrumentation-mode tail appended after a capture's
/// structured payload (any format version): `TQIM`, a varint byte length,
/// then [`InstrInfo::encode`] bytes. Loaders that predate the section never
/// read past the payload, so tagged captures stay loadable everywhere;
/// full-instrumentation captures omit the tail entirely.
const INSTR_MAGIC: &[u8; 4] = b"TQIM";

/// On-disk format selector for [`Trace::save_as`].
///
/// The ladder only ever negotiates *down*, never invents data: `V2` on a
/// trace without a chunk index writes v1 (there is no index to append);
/// `V3` on a trace whose chunks cannot be columnar-encoded exactly (no
/// index, a non-contiguous hand-crafted index, or non-canonical row
/// varints) falls back to v2/v1. Every format loads back byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Header + raw row event stream, no chunk index.
    V1,
    /// V1 plus the chunk index tail for sharded replay.
    V2,
    /// Header + chunk index + per-chunk columnar blobs (smallest, seekable).
    V3,
}

const K_MEM_READ: u64 = 0;
const K_MEM_WRITE: u64 = 1;
const K_CALL: u64 = 2;
const K_RET: u64 = 3;
const K_RTN_ENTER: u64 = 4;
const K_FINI: u64 = 5;

/// Upper bound on a single access size the decoder will believe. Real
/// accesses are a handful of bytes (the VM records per-instruction loads
/// and stores); anything bigger is a corrupt varint, and rejecting it here
/// keeps downstream per-byte structures (shadow memory, UnMA bitmaps) from
/// chewing through gigabytes of garbage.
const MAX_ACCESS_BYTES: u64 = 1 << 16;

#[inline]
fn check_size(raw: u64) -> Result<u32, TraceError> {
    if raw > MAX_ACCESS_BYTES {
        return Err(TraceError::Malformed("implausible access size"));
    }
    Ok(raw as u32)
}

/// A recorded trace: program facts plus the encoded event stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Routine table and stack base, as tools received them at attach time.
    pub info: ProgramInfo,
    /// Encoded events.
    pub events: Vec<u8>,
    /// Number of events recorded.
    pub n_events: u64,
    /// Optional precomputed chunk index for sharded replay (saved as the
    /// TQTRACE2 format). `None` means sequential-only metadata; replay
    /// semantics and [`Trace::digest`] are unaffected either way.
    pub chunks: Option<Vec<ChunkMeta>>,
    /// Instrumentation-mode metadata when the capture was recorded under a
    /// reduced mode (`--instr`): what was dropped, and where. Saved as a
    /// tagged tail section older readers skip; `None` for full captures,
    /// whose on-disk bytes and [`Trace::digest`] are unchanged. Replay
    /// hands it to tools via [`Tool::on_instr`] right after attach.
    pub instr: Option<InstrInfo>,
}

/// Decoder state shared by writer and reader so deltas stay in sync.
#[derive(Default)]
struct DeltaState {
    icount: u64,
    ip: u64,
    ea: u64,
    sp: u64,
}

/// The recording tool: subscribe to everything, append deltas.
pub struct TraceRecorder {
    info: Option<ProgramInfo>,
    buf: Vec<u8>,
    state: DeltaState,
    n_events: u64,
    instr: Option<InstrInfo>,
}

impl TraceRecorder {
    /// New recorder.
    pub fn new() -> Self {
        TraceRecorder {
            info: None,
            buf: Vec::new(),
            state: DeltaState::default(),
            n_events: 0,
            instr: None,
        }
    }

    /// Consume into the finished trace. Panics if the recorder was never
    /// attached to a VM.
    pub fn into_trace(self) -> Trace {
        Trace {
            info: self.info.expect("recorder was attached"),
            events: self.buf,
            n_events: self.n_events,
            chunks: None,
            instr: self.instr,
        }
    }

    #[inline]
    fn head(&mut self, kind: u64, icount: u64) {
        write_u64(&mut self.buf, kind);
        write_u64(&mut self.buf, icount - self.state.icount);
        self.state.icount = icount;
        self.n_events += 1;
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Tool for TraceRecorder {
    fn name(&self) -> &str {
        "trace-recorder"
    }

    fn on_attach(&mut self, info: &ProgramInfo) {
        self.info = Some(info.clone());
    }

    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
        standard_mask(ins)
    }

    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::MemRead {
                ip,
                ea,
                size,
                sp,
                is_prefetch,
                icount,
                rtn,
            } => {
                self.head(K_MEM_READ, icount);
                write_i64(&mut self.buf, ip as i64 - self.state.ip as i64);
                self.state.ip = ip;
                write_i64(&mut self.buf, ea as i64 - self.state.ea as i64);
                self.state.ea = ea;
                write_u64(&mut self.buf, size as u64);
                write_i64(&mut self.buf, sp as i64 - self.state.sp as i64);
                self.state.sp = sp;
                write_u64(&mut self.buf, ((rtn.0 as u64) << 1) | is_prefetch as u64);
            }
            Event::MemWrite {
                ip,
                ea,
                size,
                sp,
                icount,
                rtn,
            } => {
                self.head(K_MEM_WRITE, icount);
                write_i64(&mut self.buf, ip as i64 - self.state.ip as i64);
                self.state.ip = ip;
                write_i64(&mut self.buf, ea as i64 - self.state.ea as i64);
                self.state.ea = ea;
                write_u64(&mut self.buf, size as u64);
                write_i64(&mut self.buf, sp as i64 - self.state.sp as i64);
                self.state.sp = sp;
                write_u64(&mut self.buf, rtn.0 as u64);
            }
            Event::Call {
                ip,
                callee,
                icount,
                rtn,
            } => {
                self.head(K_CALL, icount);
                write_i64(&mut self.buf, ip as i64 - self.state.ip as i64);
                self.state.ip = ip;
                write_u64(&mut self.buf, callee.0 as u64);
                write_u64(&mut self.buf, rtn.0 as u64);
            }
            Event::Ret {
                ip,
                return_to,
                icount,
                rtn,
            } => {
                self.head(K_RET, icount);
                write_i64(&mut self.buf, ip as i64 - self.state.ip as i64);
                self.state.ip = ip;
                write_i64(&mut self.buf, return_to as i64 - self.state.ip as i64);
                write_u64(&mut self.buf, rtn.0 as u64);
            }
            Event::RoutineEnter { rtn, sp, icount } => {
                self.head(K_RTN_ENTER, icount);
                write_u64(&mut self.buf, rtn.0 as u64);
                write_i64(&mut self.buf, sp as i64 - self.state.sp as i64);
                self.state.sp = sp;
            }
            Event::Tick { .. } => {} // never subscribed
        }
    }

    fn on_instr(&mut self, info: &InstrInfo) {
        // A gated run: carry the mode metadata into the capture so replay
        // knows exactly which memory events are missing.
        self.instr = Some(info.clone());
    }

    fn on_fini(&mut self, final_icount: u64) {
        self.head(K_FINI, final_icount);
    }
}

/// Replay/serialisation error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The byte stream is truncated or malformed.
    Malformed(&'static str),
    /// Bad magic/version on load.
    BadHeader,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
            TraceError::BadHeader => write!(f, "not a TQTRACE1/TQTRACE2/TQTRACE3 file"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Where a [`Trace::replay_span`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayEnd {
    /// Virtual clock after the last decoded event (the span's starting
    /// clock if the span was empty).
    pub last_icount: u64,
    /// Whether the span ended on a `Fini` record (in which case the tool's
    /// `on_fini` has already been delivered).
    pub saw_fini: bool,
}

impl Trace {
    /// Replay the trace into `tool`: `on_attach`, every event in order,
    /// then `on_fini`. The tool's `instrument_ins` is never called —
    /// recording already applied the standard all-events instrumentation,
    /// so replay delivers a superset of what any instrumentation mask
    /// would have selected; event-driven tools behave identically.
    ///
    /// If the tool requests ticks, they are synthesised whenever the
    /// virtual clock passes a multiple of the interval; the tick's `ip`
    /// and `rtn` are those of the most recent event (live ticks carry the
    /// *current* instruction — exact for event-dense code, approximate
    /// across long event-free stretches).
    pub fn replay(&self, tool: &mut dyn Tool) -> Result<(), TraceError> {
        let _span = tq_obs::span("replay", "replay");
        obs::replays().inc();
        tool.on_attach(&self.info);
        if let Some(instr) = &self.instr {
            tool.on_instr(instr);
        }
        let end = self.replay_span(0, self.events.len(), &ShardContext::default(), tool)?;
        if !end.saw_fini {
            // No Fini record (recorder detached before program end).
            tool.on_fini(end.last_icount);
        }
        Ok(())
    }

    /// Replay the byte range `start..end` of the event stream into `tool`,
    /// resuming the delta decoder (and the tick schedule) from the snapshot
    /// in `ctx`. This is the sharded-replay building block: `on_attach` is
    /// *not* called and no fallback `on_fini` is synthesised — the caller
    /// owns both (a `Fini` record inside the span still reaches the tool).
    ///
    /// Decoding is panic-proof on corrupt input: truncated varints and
    /// unknown event kinds return `Err`, delta accumulation wraps rather
    /// than overflowing, and events are validated before they reach the
    /// tool — routine ids must be in the routine table (or
    /// [`RoutineId::INVALID`] where the live VM can produce it) and access
    /// sizes must be plausible, so tools may index by routine id without
    /// re-checking, exactly as they do against live VM events.
    pub fn replay_span(
        &self,
        start: usize,
        end: usize,
        ctx: &ShardContext,
        tool: &mut dyn Tool,
    ) -> Result<ReplayEnd, TraceError> {
        replay_span_buf(&self.info, &self.events, start, end, ctx, tool)
    }
}

/// Common header fields shared by every format version, parsed up to (but
/// not including) the per-format payload.
pub(crate) struct ParsedHeader {
    pub info: ProgramInfo,
    pub n_events: u64,
    /// Row event-stream length in bytes (for v3, the length the decoded
    /// chunks must reassemble to).
    pub ev_len: usize,
    /// Format version: 1, 2, or 3.
    pub version: u8,
    /// Byte offset just past the header.
    pub pos: usize,
}

/// Parse the magic + routine table + counts common to all versions.
pub(crate) fn parse_header(bytes: &[u8]) -> Result<ParsedHeader, TraceError> {
    if bytes.len() < 8 {
        return Err(TraceError::BadHeader);
    }
    let version = match &bytes[..8] {
        m if m == MAGIC => 1u8,
        m if m == MAGIC2 => 2,
        m if m == MAGIC3 => 3,
        _ => return Err(TraceError::BadHeader),
    };
    let mut pos = 8usize;
    let bad = |_: ()| TraceError::Malformed("truncated header");
    let ru = |pos: &mut usize| read_u64(bytes, pos).ok_or(bad(()));
    let stack_base = ru(&mut pos)?;
    let entry = ru(&mut pos)?;
    let n_routines = ru(&mut pos)? as usize;
    let mut routines = Vec::with_capacity(n_routines.min(1 << 16));
    for i in 0..n_routines {
        let name_len = ru(&mut pos)? as usize;
        let name = String::from_utf8(bytes.get(pos..pos + name_len).ok_or(bad(()))?.to_vec())
            .map_err(|_| TraceError::Malformed("bad utf8"))?;
        pos += name_len;
        let img_len = ru(&mut pos)? as usize;
        let image = String::from_utf8(bytes.get(pos..pos + img_len).ok_or(bad(()))?.to_vec())
            .map_err(|_| TraceError::Malformed("bad utf8"))?;
        pos += img_len;
        let main_image = *bytes.get(pos).ok_or(bad(()))? != 0;
        pos += 1;
        let start = ru(&mut pos)?;
        let end = ru(&mut pos)?;
        routines.push(RoutineMeta {
            id: RoutineId(i as u32),
            name,
            image,
            main_image,
            start,
            end,
        });
    }
    let n_events = ru(&mut pos)?;
    let ev_len = ru(&mut pos)? as usize;
    Ok(ParsedHeader {
        info: ProgramInfo {
            routines,
            stack_base,
            entry,
        },
        n_events,
        ev_len,
        version,
        pos,
    })
}

/// Buffer-generic core of [`Trace::replay_span`]: replay `events[start..end]`
/// into `tool`, resuming from `ctx`. The lazy chunk reader
/// ([`stream::StreamingTrace`]) calls this over one decoded chunk at a time,
/// which is what keeps streaming replay's peak memory at a chunk, not the
/// whole stream. Semantics are exactly those documented on
/// [`Trace::replay_span`].
pub(crate) fn replay_span_buf(
    info: &ProgramInfo,
    events: &[u8],
    start: usize,
    end: usize,
    ctx: &ShardContext,
    tool: &mut dyn Tool,
) -> Result<ReplayEnd, TraceError> {
    // Per-trace precomputed per-tool event mask (DESIGN.md §14): ask the
    // tool once which event kinds it ever acts on, and skip constructing
    // and delivering the rest. The delta decoders still advance over every
    // record, so the byte stream decodes identically; only the calls into
    // the tool disappear — which is why a narrowed mask cannot change any
    // tool's output.
    let mask = tool.event_mask();
    let mut tick = tool.tick_interval().unwrap_or(0);
    // First tick strictly after the prefix clock; at stream start
    // (icount 0) this is simply `tick`.
    let mut next_tick = if tick > 0 {
        (ctx.icount / tick)
            .checked_add(1)
            .and_then(|n| n.checked_mul(tick))
            .unwrap_or(u64::MAX)
    } else {
        u64::MAX
    };

    let buf = events
        .get(..end)
        .ok_or(TraceError::Malformed("span past end of stream"))?;
    let mut pos = start;
    let mut st = DeltaState {
        icount: ctx.icount,
        ip: ctx.ip,
        ea: ctx.ea,
        sp: ctx.sp,
    };
    let bad = TraceError::Malformed("unknown event kind");
    macro_rules! ru {
        () => {
            read_u64(buf, &mut pos).ok_or(TraceError::Malformed("truncated varint"))?
        };
    }
    macro_rules! ri {
        () => {
            read_i64(buf, &mut pos).ok_or(TraceError::Malformed("truncated varint"))?
        };
    }
    // Validate a routine id against the routine table; INVALID is
    // legal where the live VM can emit it (unresolved call targets,
    // code outside all symbols).
    let n_rtns = info.routines.len() as u32;
    macro_rules! rid {
        ($raw:expr) => {{
            let r = RoutineId($raw as u32);
            if r != RoutineId::INVALID && r.0 >= n_rtns {
                return Err(TraceError::Malformed("routine id out of range"));
            }
            r
        }};
    }

    let mut last_rtn = ctx.last_rtn;
    while pos < buf.len() {
        let kind = ru!();
        let icount = st.icount.wrapping_add(ru!());
        st.icount = icount;

        while tick != 0 && next_tick <= icount {
            if mask & hooks::TICK != 0 {
                tool.on_event(&Event::Tick {
                    icount: next_tick,
                    ip: st.ip,
                    rtn: last_rtn,
                });
            }
            match next_tick.checked_add(tick) {
                Some(n) => next_tick = n,
                None => tick = 0, // clock saturated; no further ticks
            }
        }

        match kind {
            K_MEM_READ => {
                st.ip = st.ip.wrapping_add_signed(ri!());
                st.ea = st.ea.wrapping_add_signed(ri!());
                let size = check_size(ru!())?;
                st.sp = st.sp.wrapping_add_signed(ri!());
                let packed = ru!();
                let rtn = rid!(packed >> 1);
                last_rtn = rtn;
                if mask & hooks::MEM_READ != 0 {
                    tool.on_event(&Event::MemRead {
                        ip: st.ip,
                        ea: st.ea,
                        size,
                        sp: st.sp,
                        is_prefetch: packed & 1 != 0,
                        icount,
                        rtn,
                    });
                }
            }
            K_MEM_WRITE => {
                st.ip = st.ip.wrapping_add_signed(ri!());
                st.ea = st.ea.wrapping_add_signed(ri!());
                let size = check_size(ru!())?;
                st.sp = st.sp.wrapping_add_signed(ri!());
                let rtn = rid!(ru!());
                last_rtn = rtn;
                if mask & hooks::MEM_WRITE != 0 {
                    tool.on_event(&Event::MemWrite {
                        ip: st.ip,
                        ea: st.ea,
                        size,
                        sp: st.sp,
                        icount,
                        rtn,
                    });
                }
            }
            K_CALL => {
                st.ip = st.ip.wrapping_add_signed(ri!());
                let callee = rid!(ru!());
                let rtn = rid!(ru!());
                last_rtn = rtn;
                if mask & hooks::CALL != 0 {
                    tool.on_event(&Event::Call {
                        ip: st.ip,
                        callee,
                        icount,
                        rtn,
                    });
                }
            }
            K_RET => {
                st.ip = st.ip.wrapping_add_signed(ri!());
                let return_to = st.ip.wrapping_add_signed(ri!());
                let rtn = rid!(ru!());
                last_rtn = rtn;
                if mask & hooks::RET != 0 {
                    tool.on_event(&Event::Ret {
                        ip: st.ip,
                        return_to,
                        icount,
                        rtn,
                    });
                }
            }
            K_RTN_ENTER => {
                let rtn = rid!(ru!());
                if rtn == RoutineId::INVALID {
                    // The VM only announces entries to known routines.
                    return Err(TraceError::Malformed("routine id out of range"));
                }
                st.sp = st.sp.wrapping_add_signed(ri!());
                last_rtn = rtn;
                if mask & hooks::RTN_ENTER != 0 {
                    tool.on_event(&Event::RoutineEnter {
                        rtn,
                        sp: st.sp,
                        icount,
                    });
                }
            }
            K_FINI => {
                tool.on_fini(icount);
                return Ok(ReplayEnd {
                    last_icount: icount,
                    saw_fini: true,
                });
            }
            _ => return Err(bad),
        }
    }
    Ok(ReplayEnd {
        last_icount: st.icount,
        saw_fini: false,
    })
}

/// Parse the optional `TQIM` instrumentation tail at `pos`. Absent tail
/// (end of input, or trailing bytes that do not start with the tag) is
/// `Ok(None)` — pre-section writers may leave arbitrary trailing garbage
/// that older loaders also ignored. A *tagged* tail that is truncated or
/// fails [`InstrInfo::decode`] is an error: the writer clearly meant to
/// record a mode and we must not silently misreport a capture as full.
fn parse_instr_tail(bytes: &[u8], pos: &mut usize) -> Result<Option<InstrInfo>, TraceError> {
    match bytes.get(*pos..*pos + INSTR_MAGIC.len()) {
        Some(tag) if tag == INSTR_MAGIC => {}
        _ => return Ok(None),
    }
    *pos += INSTR_MAGIC.len();
    let len = read_u64(bytes, pos).ok_or(TraceError::Malformed("truncated instr tail"))? as usize;
    let body = bytes
        .get(
            *pos..pos
                .checked_add(len)
                .ok_or(TraceError::Malformed("instr tail overflow"))?,
        )
        .ok_or(TraceError::Malformed("truncated instr tail"))?;
    *pos += len;
    InstrInfo::decode(body)
        .map(Some)
        .ok_or(TraceError::Malformed("malformed instr tail"))
}

impl Trace {
    /// Header bytes shared by every format version: magic, stack base,
    /// entry, routine table, event count, and the row event-stream length.
    fn encode_head(&self, magic: &[u8; 8]) -> Vec<u8> {
        let mut head = Vec::new();
        head.extend_from_slice(magic);
        write_u64(&mut head, self.info.stack_base);
        write_u64(&mut head, self.info.entry);
        write_u64(&mut head, self.info.routines.len() as u64);
        for r in &self.info.routines {
            write_u64(&mut head, r.name.len() as u64);
            head.extend_from_slice(r.name.as_bytes());
            write_u64(&mut head, r.image.len() as u64);
            head.extend_from_slice(r.image.as_bytes());
            head.push(r.main_image as u8);
            write_u64(&mut head, r.start);
            write_u64(&mut head, r.end);
        }
        write_u64(&mut head, self.n_events);
        write_u64(&mut head, self.events.len() as u64);
        head
    }

    /// The chunk layout v3 can encode: a non-empty index that starts at
    /// byte 0 and is contiguous (which `chunk_index` always produces).
    /// Returns the chunks and the offset where the uncovered tail begins
    /// (bytes past the last chunk — possible when `n_events` overstates
    /// the stream — are stored raw so no format loses data).
    fn v3_layout(&self) -> Option<(&[ChunkMeta], usize)> {
        let chunks = self.chunks.as_deref()?;
        if chunks.is_empty() {
            return None;
        }
        let mut at = 0u64;
        for c in chunks {
            if c.start != at || c.end < c.start {
                return None;
            }
            at = c.end;
        }
        if at > self.events.len() as u64 {
            return None;
        }
        Some((chunks, at as usize))
    }

    /// Encode the TQTRACE3 byte image, or `None` if this trace's chunk
    /// layout is not v3-encodable or a chunk fails the exact-inversion
    /// check (non-canonical row varints in a hand-crafted stream).
    fn encode_v3(&self) -> Option<Vec<u8>> {
        let (chunks, tail_at) = self.v3_layout()?;
        let mut out = self.encode_head(MAGIC3);
        chunk::write_index(&mut out, chunks);
        for c in chunks {
            let rows = &self.events[c.start as usize..c.end as usize];
            let blob = columnar::encode_chunk(rows, &c.ctx).ok()?;
            // The ladder's contract is byte-exact loads; verify inversion
            // before committing to the columnar form.
            if columnar::decode_chunk(&blob, &c.ctx, rows.len()).ok()? != rows {
                return None;
            }
            write_u64(&mut out, blob.len() as u64);
            out.extend_from_slice(&blob);
        }
        let tail = &self.events[tail_at..];
        write_u64(&mut out, tail.len() as u64);
        out.extend_from_slice(tail);
        Some(out)
    }

    /// Serialise to a writer in the best format the trace supports:
    /// `TQTRACE3` when a chunk index is present (columnar, smallest),
    /// `TQTRACE2` when the index cannot be columnar-encoded exactly, and
    /// the original `TQTRACE1` for index-less traces. Use
    /// [`Trace::save_as`] to pin an explicit format.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.save_as(w, TraceFormat::V3)
    }

    /// Serialise in the requested format, negotiating *down* when the
    /// trace cannot honour it (see [`TraceFormat`]): `V3` falls back to
    /// `V2` without an exact columnar encoding, and `V2`/`V3` fall back to
    /// `V1` when there is no chunk index. Loads of any produced file are
    /// byte-exact: same rows, same digest.
    pub fn save_as<W: Write>(&self, w: &mut W, format: TraceFormat) -> std::io::Result<()> {
        if format == TraceFormat::V3 {
            if let Some(bytes) = self.encode_v3() {
                w.write_all(&bytes)?;
                return self.write_instr_tail(w);
            }
        }
        let chunks = match (format, &self.chunks) {
            (TraceFormat::V1, _) | (_, None) => None,
            (_, Some(chunks)) => Some(chunks),
        };
        let head = self.encode_head(if chunks.is_some() { MAGIC2 } else { MAGIC });
        w.write_all(&head)?;
        w.write_all(&self.events)?;
        if let Some(chunks) = chunks {
            let mut tail = Vec::new();
            chunk::write_index(&mut tail, chunks);
            w.write_all(&tail)?;
        }
        self.write_instr_tail(w)
    }

    /// Append the instrumentation-mode tail section, if any: the `TQIM`
    /// tag, a varint byte length, then the encoded [`InstrInfo`]. Readers
    /// that predate the section never looked past the structured payload,
    /// so the tail is backward compatible; full captures write nothing and
    /// stay byte-identical to their pre-section form.
    fn write_instr_tail<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        if let Some(info) = &self.instr {
            let body = info.encode();
            w.write_all(INSTR_MAGIC)?;
            let mut len = Vec::new();
            write_u64(&mut len, body.len() as u64);
            w.write_all(&len)?;
            w.write_all(&body)?;
        }
        Ok(())
    }

    /// Deserialise from a reader. Accepts `TQTRACE1`, `TQTRACE2`, and
    /// `TQTRACE3`; v3 chunk blobs are decoded back into the canonical row
    /// stream, so the loaded trace is byte-identical (same digest) no
    /// matter which format carried it.
    pub fn load<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)
            .map_err(|_| TraceError::Malformed("io error"))?;
        let h = parse_header(&bytes)?;
        let mut pos = h.pos;
        let bad = |_: ()| TraceError::Malformed("truncated header");
        let ru = |pos: &mut usize| read_u64(&bytes, pos).ok_or(bad(()));
        let ev_len = h.ev_len;
        let routines = &h.info.routines;
        let (events, chunks) = if h.version == 3 {
            // TQTRACE3: chunk index first, then one columnar blob per
            // chunk, then the raw uncovered tail. Cap the claimed stream
            // length before trusting it with allocations — byte-run RLE
            // cannot legitimately expand further than this.
            if ev_len > bytes.len().saturating_mul(256) {
                return Err(TraceError::Malformed("implausible event stream length"));
            }
            let idx = chunk::read_index(&bytes, &mut pos)?;
            chunk::validate_index(&idx, routines.len() as u32, ev_len as u64)?;
            let mut events = Vec::new();
            for c in &idx {
                if c.start as usize != events.len() {
                    return Err(TraceError::Malformed("non-contiguous v3 chunk index"));
                }
                let blob_len = ru(&mut pos)? as usize;
                let blob = bytes
                    .get(pos..pos.checked_add(blob_len).ok_or(bad(()))?)
                    .ok_or(bad(()))?;
                pos += blob_len;
                let span = (c.end - c.start) as usize;
                let rows = columnar::decode_chunk(blob, &c.ctx, span)?;
                if rows.len() != span {
                    return Err(TraceError::Malformed("chunk decoded to wrong length"));
                }
                events.extend_from_slice(&rows);
            }
            let tail_len = ru(&mut pos)? as usize;
            let tail = bytes
                .get(pos..pos.checked_add(tail_len).ok_or(bad(()))?)
                .ok_or(bad(()))?;
            events.extend_from_slice(tail);
            pos += tail_len;
            if events.len() != ev_len {
                return Err(TraceError::Malformed("event stream length mismatch"));
            }
            (events, Some(idx))
        } else {
            let events = bytes
                .get(pos..pos.checked_add(ev_len).ok_or(bad(()))?)
                .ok_or(bad(()))?
                .to_vec();
            pos += ev_len;
            let chunks = if h.version == 2 {
                let idx = chunk::read_index(&bytes, &mut pos)?;
                chunk::validate_index(&idx, routines.len() as u32, ev_len as u64)?;
                Some(idx)
            } else {
                None
            };
            (events, chunks)
        };
        let instr = parse_instr_tail(&bytes, &mut pos)?;
        Ok(Trace {
            info: h.info,
            events,
            n_events: h.n_events,
            chunks,
            instr,
        })
    }

    /// Average encoded bytes per event.
    pub fn bytes_per_event(&self) -> f64 {
        self.events.len() as f64 / self.n_events.max(1) as f64
    }

    /// Content digest of the trace itself (routine table + event stream +
    /// instrumentation-mode metadata when present). Two traces digest equal
    /// iff replay delivers the same event sequence *and* the same
    /// [`InstrInfo`] to any tool — the chunk index is derived metadata and
    /// deliberately excluded, so indexing a capture never invalidates
    /// cached results. Full captures (`instr: None`) digest exactly as they
    /// did before the section existed.
    pub fn digest(&self) -> String {
        let mut d = Digest128::new();
        d.update_u64(self.info.stack_base);
        d.update_u64(self.info.entry);
        d.update_u64(self.info.routines.len() as u64);
        for r in &self.info.routines {
            d.update_str(&r.name);
            d.update_str(&r.image);
            d.update_u64(r.main_image as u64);
            d.update_u64(r.start);
            d.update_u64(r.end);
        }
        d.update_u64(self.n_events);
        d.update(&self.events);
        if let Some(info) = &self.instr {
            d.update_str("instr");
            d.update(&info.encode());
        }
        d.finish_hex()
    }

    /// Serialise to a file (written via a sibling temp file + rename so a
    /// crash mid-write never leaves a torn capture behind).
    pub fn save_to_path(&self, path: &Path) -> std::io::Result<()> {
        self.save_to_path_as(path, TraceFormat::V3)
    }

    /// [`Trace::save_to_path`] with an explicit on-disk format (same
    /// downward negotiation as [`Trace::save_as`]).
    pub fn save_to_path_as(&self, path: &Path, format: TraceFormat) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        self.save_as(&mut f, format)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    }

    /// Deserialise from a file.
    pub fn load_from_path(path: &Path) -> Result<Trace, TraceError> {
        let mut f = std::fs::File::open(path).map_err(|_| TraceError::Malformed("open failed"))?;
        Trace::load(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects replayed events for comparison.
    #[derive(Default)]
    struct Collector {
        events: Vec<String>,
        fini: Option<u64>,
    }

    impl Tool for Collector {
        fn name(&self) -> &str {
            "collector"
        }
        fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
            standard_mask(ins)
        }
        fn on_event(&mut self, ev: &Event) {
            self.events.push(format!("{ev:?}"));
        }
        fn on_fini(&mut self, icount: u64) {
            self.fini = Some(icount);
        }
    }

    fn dummy_info() -> ProgramInfo {
        ProgramInfo {
            routines: vec![RoutineMeta {
                id: RoutineId(0),
                name: "main".into(),
                image: "app".into(),
                main_image: true,
                start: 0x10000,
                end: 0x10100,
            }],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        }
    }

    #[test]
    fn record_replay_roundtrip_event_for_event() {
        let mut rec = TraceRecorder::new();
        rec.on_attach(&dummy_info());
        let evs = [
            Event::RoutineEnter {
                rtn: RoutineId(0),
                sp: 0x3FFF_FF00,
                icount: 1,
            },
            Event::MemWrite {
                ip: 0x10008,
                ea: 0x1000_0000,
                size: 8,
                sp: 0x3FFF_FE00,
                icount: 2,
                rtn: RoutineId(0),
            },
            Event::MemRead {
                ip: 0x10010,
                ea: 0x1000_0000,
                size: 4,
                sp: 0x3FFF_FE00,
                is_prefetch: false,
                icount: 3,
                rtn: RoutineId(0),
            },
            Event::MemRead {
                ip: 0x10018,
                ea: 0x1000_0040,
                size: 8,
                sp: 0x3FFF_FE00,
                is_prefetch: true,
                icount: 4,
                rtn: RoutineId(0),
            },
            Event::Call {
                ip: 0x10020,
                callee: RoutineId(0),
                icount: 5,
                rtn: RoutineId(0),
            },
            Event::Ret {
                ip: 0x10028,
                return_to: 0x10028,
                icount: 9,
                rtn: RoutineId(0),
            },
        ];
        let mut expected = Vec::new();
        for e in &evs {
            rec.on_event(e);
            expected.push(format!("{e:?}"));
        }
        rec.on_fini(12);
        let trace = rec.into_trace();

        let mut c = Collector::default();
        trace.replay(&mut c).unwrap();
        assert_eq!(c.events, expected);
        assert_eq!(c.fini, Some(12));
        assert!(
            trace.bytes_per_event() < 16.0,
            "{} B/event",
            trace.bytes_per_event()
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rec = TraceRecorder::new();
        rec.on_attach(&dummy_info());
        rec.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 100,
            icount: 1,
        });
        rec.on_fini(5);
        let trace = rec.into_trace();

        let mut bytes = Vec::new();
        trace.save(&mut bytes).unwrap();
        let back = Trace::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn load_rejects_garbage() {
        assert_eq!(Trace::load(&mut &b"nope"[..]), Err(TraceError::BadHeader));
        let mut bytes = Vec::new();
        TraceRecorder::new()
            .into_trace_guarded(&dummy_info())
            .save(&mut bytes)
            .unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(Trace::load(&mut bytes.as_slice()).is_err());
    }

    impl TraceRecorder {
        /// Test helper: force-attach and convert.
        fn into_trace_guarded(mut self, info: &ProgramInfo) -> Trace {
            self.on_attach(info);
            self.on_fini(1);
            self.into_trace()
        }
    }

    #[test]
    fn digest_tracks_content() {
        let mut rec = TraceRecorder::new();
        rec.on_attach(&dummy_info());
        rec.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 100,
            icount: 1,
        });
        rec.on_fini(5);
        let t1 = rec.into_trace();
        assert_eq!(t1.digest(), t1.digest(), "digest is a pure function");

        let mut rec2 = TraceRecorder::new();
        rec2.on_attach(&dummy_info());
        rec2.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 100,
            icount: 2,
        });
        rec2.on_fini(5);
        assert_ne!(t1.digest(), rec2.into_trace().digest());
    }

    #[test]
    fn save_load_via_path() {
        let mut rec = TraceRecorder::new();
        rec.on_attach(&dummy_info());
        rec.on_fini(3);
        let trace = rec.into_trace();
        let dir = std::env::temp_dir().join("tq-trace-path-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.capture");
        trace.save_to_path(&path).unwrap();
        let back = Trace::load_from_path(&path).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.digest(), trace.digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthesised_ticks_fire_on_schedule() {
        struct Ticker {
            ticks: Vec<u64>,
        }
        impl Tool for Ticker {
            fn name(&self) -> &str {
                "ticker"
            }
            fn instrument_ins(&mut self, _: &InsContext<'_>) -> HookMask {
                0
            }
            fn tick_interval(&self) -> Option<u64> {
                Some(10)
            }
            fn on_event(&mut self, ev: &Event) {
                if let Event::Tick { icount, .. } = ev {
                    self.ticks.push(*icount);
                }
            }
        }
        let mut rec = TraceRecorder::new();
        rec.on_attach(&dummy_info());
        for i in [3u64, 12, 25, 47] {
            rec.on_event(&Event::RoutineEnter {
                rtn: RoutineId(0),
                sp: 0,
                icount: i,
            });
        }
        rec.on_fini(50);
        let trace = rec.into_trace();
        let mut t = Ticker { ticks: Vec::new() };
        trace.replay(&mut t).unwrap();
        assert_eq!(t.ticks, vec![10, 20, 30, 40, 50]);
    }
}
