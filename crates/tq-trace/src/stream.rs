//! Lazy, larger-than-RAM trace reading.
//!
//! [`Trace::load`] materialises the whole row event stream — fine for the
//! scaled captures, hopeless for the paper's full-size runs (6.4e9
//! instructions). [`StreamingTrace`] keeps only the *encoded* file bytes
//! resident and decodes **one chunk's rows at a time**, on demand:
//!
//! * v1/v2 files: a chunk read is a zero-copy borrow of the row bytes —
//!   no decode work at all (v1 files carry no index and stream as a
//!   single chunk).
//! * v3 files: a chunk read decompresses that chunk's columnar blob back
//!   into row bytes (see the `columnar` module), an owned allocation that
//!   dies with the loop iteration.
//!
//! [`StreamingTrace::replay`] and [`StreamingTrace::replay_sharded`] drive
//! the same tools as their [`Trace`] counterparts with byte-identical
//! output (each chunk replays from its own [`ShardContext`] snapshot, the
//! equivalence the sharded-replay tests pin down), but peak decoded-event
//! memory is bounded by `n_shards × chunk_size`, never the full stream.
//!
//! Bytes past the last indexed chunk (possible only after a mid-stream
//! `Fini`, where sequential replay stops anyway) are preserved by the
//! formats but are unreachable by replay, so the reader ignores them.

use crate::varint::read_u64;
use crate::{chunk, columnar, replay_span_buf, ChunkMeta, ReplayEnd, Trace, TraceError};
use std::borrow::Cow;
use std::path::Path;
use tq_vm::{InstrInfo, MergeTool, ProgramInfo, ShardContext, Tool};

/// A trace opened for lazy chunk-at-a-time reading. Holds the encoded
/// file bytes plus the chunk index; never the decoded event stream.
pub struct StreamingTrace {
    info: ProgramInfo,
    n_events: u64,
    chunks: Vec<ChunkMeta>,
    data: Vec<u8>,
    payload: Payload,
    instr: Option<InstrInfo>,
}

enum Payload {
    /// v1/v2: the row stream lives at `data[off .. off + ev_len]`; chunk
    /// reads are zero-copy slices of it.
    Rows { off: usize },
    /// v3: byte range of each chunk's columnar blob inside `data`.
    Columnar { blobs: Vec<(usize, usize)> },
}

impl Trace {
    /// Open a capture file for streaming replay without decoding its event
    /// stream. Accepts all of `TQTRACE1/2/3`. See [`StreamingTrace`].
    pub fn open_streaming(path: &Path) -> Result<StreamingTrace, TraceError> {
        let bytes = std::fs::read(path).map_err(|_| TraceError::Malformed("open failed"))?;
        StreamingTrace::from_bytes(bytes)
    }
}

impl StreamingTrace {
    /// Build a streaming reader over an in-memory capture image (the
    /// byte-for-byte content of a capture file).
    pub fn from_bytes(data: Vec<u8>) -> Result<StreamingTrace, TraceError> {
        let h = crate::parse_header(&data)?;
        let trunc = TraceError::Malformed("truncated capture");
        let mut pos = h.pos;
        let n_rtns = h.info.routines.len() as u32;
        let (chunks, payload) = match h.version {
            3 => {
                let idx = chunk::read_index(&data, &mut pos)?;
                chunk::validate_index(&idx, n_rtns, h.ev_len as u64)?;
                if idx.is_empty() {
                    return Err(TraceError::Malformed("empty v3 chunk index"));
                }
                let mut at = 0u64;
                let mut blobs = Vec::with_capacity(idx.len());
                for c in &idx {
                    if c.start != at {
                        return Err(TraceError::Malformed("non-contiguous v3 chunk index"));
                    }
                    at = c.end;
                    let blob_len = read_u64(&data, &mut pos).ok_or(trunc)? as usize;
                    if data.get(pos..pos + blob_len).is_none() {
                        return Err(trunc);
                    }
                    blobs.push((pos, blob_len));
                    pos += blob_len;
                }
                // Skip the raw uncovered-tail section so `pos` lands where
                // the optional instrumentation tail begins.
                let tail_len = read_u64(&data, &mut pos).ok_or(trunc)? as usize;
                if data.get(pos..pos + tail_len).is_none() {
                    return Err(trunc);
                }
                pos += tail_len;
                (idx, Payload::Columnar { blobs })
            }
            2 => {
                let off = pos;
                if data.get(off..off + h.ev_len).is_none() {
                    return Err(trunc);
                }
                pos = off + h.ev_len;
                let idx = chunk::read_index(&data, &mut pos)?;
                chunk::validate_index(&idx, n_rtns, h.ev_len as u64)?;
                let idx = if idx.is_empty() {
                    vec![whole_stream_chunk(h.ev_len)]
                } else {
                    idx
                };
                (idx, Payload::Rows { off })
            }
            _ => {
                // v1: no index — the stream is one chunk (sequential only).
                let off = pos;
                if data.get(off..off + h.ev_len).is_none() {
                    return Err(trunc);
                }
                pos = off + h.ev_len;
                (vec![whole_stream_chunk(h.ev_len)], Payload::Rows { off })
            }
        };
        let instr = crate::parse_instr_tail(&data, &mut pos)?;
        Ok(StreamingTrace {
            info: h.info,
            n_events: h.n_events,
            chunks,
            data,
            payload,
            instr,
        })
    }

    /// Instrumentation-mode metadata recorded with the capture, if the run
    /// used a reduced mode (`None` for full captures). Delivered to tools
    /// via [`Tool::on_instr`] right after attach by both replay drivers.
    pub fn instr(&self) -> Option<&InstrInfo> {
        self.instr.as_ref()
    }

    /// Program facts (routine table, stack base, entry), as tools receive
    /// them at attach time.
    pub fn info(&self) -> &ProgramInfo {
        &self.info
    }

    /// Number of events the capture header declares.
    pub fn n_events(&self) -> u64 {
        self.n_events
    }

    /// Number of chunks available for lazy reads.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk index (byte ranges are into the *row* stream, resume
    /// snapshots are per chunk).
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Encoded size of the resident capture image in bytes — the reader's
    /// whole steady-state footprint besides one decoded chunk per shard.
    pub fn resident_bytes(&self) -> usize {
        self.data.len()
    }

    /// Decode chunk `k`'s row bytes: a zero-copy borrow for row-backed
    /// files (v1/v2), an owned per-chunk buffer for columnar v3 files.
    pub fn chunk_rows(&self, k: usize) -> Result<Cow<'_, [u8]>, TraceError> {
        let c = self
            .chunks
            .get(k)
            .ok_or(TraceError::Malformed("chunk out of range"))?;
        crate::obs::streamed_chunks().inc();
        match &self.payload {
            Payload::Rows { off } => {
                let lo = off + c.start as usize;
                let hi = off + c.end as usize;
                Ok(Cow::Borrowed(self.data.get(lo..hi).ok_or(
                    TraceError::Malformed("chunk range past end of stream"),
                )?))
            }
            Payload::Columnar { blobs } => {
                let (at, len) = blobs[k];
                let span = (c.end - c.start) as usize;
                let rows = columnar::decode_chunk(&self.data[at..at + len], &c.ctx, span)?;
                if rows.len() != span {
                    return Err(TraceError::Malformed("chunk decoded to wrong length"));
                }
                Ok(Cow::Owned(rows))
            }
        }
    }

    /// Sequential replay through the lazy reader: identical tool-visible
    /// semantics to [`Trace::replay`], but only one chunk's decoded rows
    /// are ever resident.
    pub fn replay(&self, tool: &mut dyn Tool) -> Result<(), TraceError> {
        let _span = tq_obs::span("replay_streaming", "replay");
        crate::obs::streaming_replays().inc();
        tool.on_attach(&self.info);
        if let Some(instr) = &self.instr {
            tool.on_instr(instr);
        }
        let mut end = ReplayEnd {
            last_icount: 0,
            saw_fini: false,
        };
        for (k, c) in self.chunks.iter().enumerate() {
            let rows = self.chunk_rows(k)?;
            end = replay_span_buf(&self.info, &rows, 0, rows.len(), &c.ctx, tool)?;
            if end.saw_fini {
                break;
            }
        }
        if !end.saw_fini {
            tool.on_fini(end.last_icount);
        }
        Ok(())
    }

    /// Sharded replay through the lazy reader: chunk runs fan out over
    /// scoped threads exactly like [`Trace::replay_sharded`] (fork, replay,
    /// absorb in chunk order — byte-identical output), but each worker
    /// decodes its run one chunk at a time, so peak decoded memory is
    /// `n_jobs × chunk_size` rather than the whole stream.
    pub fn replay_sharded(
        &self,
        tool: &mut dyn MergeTool,
        n_jobs: usize,
    ) -> Result<(), TraceError> {
        let n_chunks = self.chunks.len();
        let shards = n_jobs.clamp(1, n_chunks.max(1));
        if shards <= 1 {
            return self.replay(tool);
        }
        let _span = tq_obs::span("replay_sharded_streaming", "replay");
        crate::obs::streaming_replays().inc();
        crate::obs::sharded_replays().inc();

        // Shard k takes the contiguous chunk run [k*n/shards, (k+1)*n/shards).
        let runs: Vec<(usize, usize)> = (0..shards)
            .map(|k| (k * n_chunks / shards, (k + 1) * n_chunks / shards))
            .collect();
        let replay_run = |run: (usize, usize), t: &mut dyn Tool| -> Result<ReplayEnd, TraceError> {
            let mut end = ReplayEnd {
                last_icount: self.chunks[run.0].ctx.icount,
                saw_fini: false,
            };
            for k in run.0..run.1 {
                let rows = self.chunk_rows(k)?;
                end = replay_span_buf(&self.info, &rows, 0, rows.len(), &self.chunks[k].ctx, t)?;
                if end.saw_fini {
                    break;
                }
            }
            Ok(end)
        };

        tool.on_attach(&self.info);
        if let Some(instr) = &self.instr {
            tool.on_instr(instr);
        }
        let mut workers: Vec<Box<dyn MergeTool>> = {
            let _fork = tq_obs::span("fork", "replay");
            runs[1..]
                .iter()
                .map(|&(lo, _)| tool.fork(&self.info, &self.chunks[lo].ctx))
                .collect()
        };

        let (head, tails) = std::thread::scope(|s| {
            let replay_run = &replay_run;
            let handles: Vec<_> = workers
                .iter_mut()
                .zip(&runs[1..])
                .enumerate()
                .map(|(i, (w, r))| {
                    s.spawn(move || {
                        if tq_obs::enabled() {
                            tq_obs::set_thread_name(format!("shard-{}", i + 1));
                        }
                        let _shard = tq_obs::span_named(format!("shard-{}", i + 1), "replay");
                        replay_run(*r, &mut **w)
                    })
                })
                .collect();
            // The root tool takes the first run on this thread.
            let head = {
                let _shard = tq_obs::span("shard-0", "replay");
                replay_run(runs[0], tool)
            };
            let tails: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            (head, tails)
        });

        let _merge = tq_obs::span("merge", "replay");
        let mut end = head?;
        for (worker, result) in workers.into_iter().zip(tails) {
            end = result?;
            tool.absorb(worker);
        }
        if !end.saw_fini {
            tool.on_fini(end.last_icount);
        }
        Ok(())
    }
}

fn whole_stream_chunk(ev_len: usize) -> ChunkMeta {
    ChunkMeta {
        start: 0,
        end: ev_len as u64,
        ctx: ShardContext::default(),
    }
}
