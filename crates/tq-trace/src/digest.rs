//! Content digests for capture addressing.
//!
//! `tq-profd` keys its capture cache by *what would run*: the program's
//! instruction encodings, entry point, data segments and input bytes. Two
//! independent FNV-1a lanes (different offset bases, both with the 64-bit
//! FNV prime) give a 128-bit digest — not cryptographic, but collision
//! odds are negligible for a cache keyed by a handful of distinct
//! workloads, and the implementation costs nothing (zero external crates).

use tq_isa::Program;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const LANE_A_OFFSET: u64 = 0xCBF2_9CE4_8422_2325; // standard FNV-1a basis
const LANE_B_OFFSET: u64 = 0x6C62_272E_07BB_0142; // FNV-0 of "chongo <Landon Curt Noll> /\\../\\"

/// Two-lane 128-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Digest128 {
    a: u64,
    b: u64,
}

impl Digest128 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Digest128 {
            a: LANE_A_OFFSET,
            b: LANE_B_OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a u64 (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorb a length-prefixed string (prefix keeps `"ab","c"` distinct
    /// from `"a","bc"`).
    pub fn update_str(&mut self, s: &str) {
        self.update_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// Finish: 32 lowercase hex chars.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

impl Default for Digest128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest a program: every image's name, base, instruction encodings,
/// routine table and initialised data, plus the entry point. Two programs
/// digest equal iff the VM would execute identical code over identical
/// initial state.
pub fn digest_program(d: &mut Digest128, program: &Program) {
    d.update_u64(program.entry);
    d.update_u64(program.images.len() as u64);
    for img in &program.images {
        d.update_str(&img.name);
        d.update_u64(img.base);
        d.update_u64(img.is_main as u64);
        d.update_u64(img.text.len() as u64);
        for &word in &img.text {
            d.update_u64(word);
        }
        d.update_u64(img.routines.len() as u64);
        for r in &img.routines {
            d.update_str(&r.name);
            d.update_u64(r.start);
            d.update_u64(r.end);
        }
        d.update_u64(img.data.len() as u64);
        for seg in &img.data {
            d.update_u64(seg.addr);
            d.update_u64(seg.bytes.len() as u64);
            d.update(&seg.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_isa::{ImageBuilder, Inst, Reg};

    #[test]
    fn empty_digest_is_stable() {
        assert_eq!(Digest128::new().finish_hex(), Digest128::new().finish_hex());
        assert_eq!(Digest128::new().finish_hex().len(), 32);
    }

    #[test]
    fn lanes_differ_and_bytes_matter() {
        let mut a = Digest128::new();
        a.update(b"hello");
        let ha = a.finish_hex();
        let mut b = Digest128::new();
        b.update(b"hellp");
        assert_ne!(ha, b.finish_hex());
        assert_ne!(&ha[..16], &ha[16..], "lanes are independent");
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Digest128::new();
        a.update_str("ab");
        a.update_str("c");
        let mut b = Digest128::new();
        b.update_str("a");
        b.update_str("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
    }

    #[test]
    fn program_digest_sees_code_changes() {
        let build = |imm: i32| {
            let mut b = ImageBuilder::new("main", 0x10000);
            b.routine("start", &[Inst::Li { rd: Reg(1), imm }, Inst::Halt]);
            let img = b.build();
            tq_isa::Program::new(img, 0x10000)
        };
        let digest = |p: &Program| {
            let mut d = Digest128::new();
            digest_program(&mut d, p);
            d.finish_hex()
        };
        assert_eq!(digest(&build(1)), digest(&build(1)));
        assert_ne!(digest(&build(1)), digest(&build(2)));
    }
}
