//! TQTRACE3 per-chunk columnar codec.
//!
//! The row encoding ([`crate::TraceRecorder`]) interleaves every event's
//! fields, so the delta streams mix instruction pointers with effective
//! addresses with stack pointers — good for one-pass appends, bad for
//! compression. This module re-shapes one chunk's row bytes into *columns*:
//! a global kind column, a global Δ-icount column, and one column per
//! (kind, field) pair, so each column sees a single homogeneous stride
//! (read EAs only ever follow read EAs). Address-like columns are re-deltaed
//! *within the column* (zigzag varint vs. the previous value in the same
//! column, seeded from the chunk's [`ShardContext`]), which turns strided
//! loops into constant byte runs; a cheap byte-run RLE then folds those
//! runs. Columns where RLE does not win are stored raw.
//!
//! The codec is **exactly invertible**: [`decode_chunk`] re-encodes the
//! original row bytes (the canonical varint writer is deterministic), so a
//! v3 file loads to a [`crate::Trace`] that is byte-identical — same
//! digest, same replay — to the v2/v1 form it was saved from. `save`
//! verifies that inversion per chunk and falls back to v2 if a chunk's rows
//! are not canonically encoded (possible only for hand-crafted streams).
//!
//! Decoding is panic-proof: truncated varints, bad column lengths, corrupt
//! RLE, and unknown kinds or flags all return `Err`, never panic, and every
//! allocation is bounded by the declared event count before it is trusted.

use crate::varint::{read_i64, read_u64, write_i64, write_u64};
use crate::{TraceError, K_CALL, K_FINI, K_MEM_READ, K_MEM_WRITE, K_RET, K_RTN_ENTER};
use std::borrow::Cow;
use tq_vm::ShardContext;

// Column order inside a chunk blob. Grouping by (kind, field) keeps each
// column's stride uniform, which is where the delta+RLE win comes from.
const C_KIND: usize = 0; // one raw byte per event
const C_DIC: usize = 1; // Δ-icount, same values the row encoding stores
const C_R_IP: usize = 2; // MemRead: ip, ea, size, sp, packed rtn/prefetch
const C_R_EA: usize = 3;
const C_R_SIZE: usize = 4;
const C_R_SP: usize = 5;
const C_R_PK: usize = 6;
const C_W_IP: usize = 7; // MemWrite: ip, ea, size, sp, rtn
const C_W_EA: usize = 8;
const C_W_SIZE: usize = 9;
const C_W_SP: usize = 10;
const C_W_RTN: usize = 11;
const C_C_IP: usize = 12; // Call: ip, callee, rtn
const C_C_CALLEE: usize = 13;
const C_C_RTN: usize = 14;
const C_T_IP: usize = 15; // Ret: ip, return_to, rtn
const C_T_RET: usize = 16;
const C_T_RTN: usize = 17;
const C_E_RTN: usize = 18; // RoutineEnter: rtn, sp
const C_E_SP: usize = 19;
const N_COLS: usize = 20;

/// Worst-case bytes one event can contribute to a single column (a 10-byte
/// varint plus slack); used to bound column allocations during decode.
const MAX_COL_BYTES_PER_EVENT: usize = 11;

/// Per-column previous absolute values for the address-like columns,
/// seeded from the chunk's resume snapshot so chunk 0 of a fresh trace
/// starts from the zero registers, exactly like the row decoder.
struct ColPrev {
    r_ip: u64,
    r_ea: u64,
    r_sp: u64,
    w_ip: u64,
    w_ea: u64,
    w_sp: u64,
    c_ip: u64,
    t_ip: u64,
    t_ret: u64,
    e_sp: u64,
}

impl ColPrev {
    fn from_ctx(ctx: &ShardContext) -> ColPrev {
        ColPrev {
            r_ip: ctx.ip,
            r_ea: ctx.ea,
            r_sp: ctx.sp,
            w_ip: ctx.ip,
            w_ea: ctx.ea,
            w_sp: ctx.sp,
            c_ip: ctx.ip,
            t_ip: ctx.ip,
            t_ret: ctx.ip,
            e_sp: ctx.sp,
        }
    }
}

#[inline]
fn delta_to(col: &mut Vec<u8>, prev: &mut u64, abs: u64) {
    write_i64(col, (abs as i64).wrapping_sub(*prev as i64));
    *prev = abs;
}

/// Shape one chunk's row bytes into a column blob. `ctx` is the chunk's
/// resume snapshot (the same one sharded replay uses), which seeds both the
/// row-delta decoder and the per-column previous values.
pub(crate) fn encode_chunk(rows: &[u8], ctx: &ShardContext) -> Result<Vec<u8>, TraceError> {
    let mut cols: Vec<Vec<u8>> = (0..N_COLS).map(|_| Vec::new()).collect();
    let mut ip = ctx.ip;
    let mut ea = ctx.ea;
    let mut sp = ctx.sp;
    let mut prev = ColPrev::from_ctx(ctx);
    let mut pos = 0usize;
    let mut n_ev: u64 = 0;
    macro_rules! ru {
        () => {
            read_u64(rows, &mut pos).ok_or(TraceError::Malformed("truncated varint"))?
        };
    }
    macro_rules! ri {
        () => {
            read_i64(rows, &mut pos).ok_or(TraceError::Malformed("truncated varint"))?
        };
    }
    while pos < rows.len() {
        let kind = ru!();
        let dic = ru!();
        if kind > K_FINI {
            return Err(TraceError::Malformed("unknown event kind"));
        }
        cols[C_KIND].push(kind as u8);
        write_u64(&mut cols[C_DIC], dic);
        match kind {
            K_MEM_READ => {
                ip = ip.wrapping_add_signed(ri!());
                ea = ea.wrapping_add_signed(ri!());
                let size = ru!();
                sp = sp.wrapping_add_signed(ri!());
                let pk = ru!();
                delta_to(&mut cols[C_R_IP], &mut prev.r_ip, ip);
                delta_to(&mut cols[C_R_EA], &mut prev.r_ea, ea);
                write_u64(&mut cols[C_R_SIZE], size);
                delta_to(&mut cols[C_R_SP], &mut prev.r_sp, sp);
                write_u64(&mut cols[C_R_PK], pk);
            }
            K_MEM_WRITE => {
                ip = ip.wrapping_add_signed(ri!());
                ea = ea.wrapping_add_signed(ri!());
                let size = ru!();
                sp = sp.wrapping_add_signed(ri!());
                let rtn = ru!();
                delta_to(&mut cols[C_W_IP], &mut prev.w_ip, ip);
                delta_to(&mut cols[C_W_EA], &mut prev.w_ea, ea);
                write_u64(&mut cols[C_W_SIZE], size);
                delta_to(&mut cols[C_W_SP], &mut prev.w_sp, sp);
                write_u64(&mut cols[C_W_RTN], rtn);
            }
            K_CALL => {
                ip = ip.wrapping_add_signed(ri!());
                let callee = ru!();
                let rtn = ru!();
                delta_to(&mut cols[C_C_IP], &mut prev.c_ip, ip);
                write_u64(&mut cols[C_C_CALLEE], callee);
                write_u64(&mut cols[C_C_RTN], rtn);
            }
            K_RET => {
                ip = ip.wrapping_add_signed(ri!());
                // The row stores return_to relative to the *updated* ip.
                let ret_to = ip.wrapping_add_signed(ri!());
                let rtn = ru!();
                delta_to(&mut cols[C_T_IP], &mut prev.t_ip, ip);
                delta_to(&mut cols[C_T_RET], &mut prev.t_ret, ret_to);
                write_u64(&mut cols[C_T_RTN], rtn);
            }
            K_RTN_ENTER => {
                let rtn = ru!();
                sp = sp.wrapping_add_signed(ri!());
                write_u64(&mut cols[C_E_RTN], rtn);
                delta_to(&mut cols[C_E_SP], &mut prev.e_sp, sp);
            }
            _ => {} // K_FINI: head only
        }
        n_ev += 1;
    }
    let mut blob = Vec::new();
    write_u64(&mut blob, n_ev);
    for col in &cols {
        write_column(&mut blob, col);
    }
    Ok(blob)
}

/// Invert [`encode_chunk`]: rebuild the chunk's row bytes from a column
/// blob. `max_rows_len` is the byte length the chunk index promises for
/// this chunk; it bounds every allocation before the blob is trusted.
pub(crate) fn decode_chunk(
    blob: &[u8],
    ctx: &ShardContext,
    max_rows_len: usize,
) -> Result<Vec<u8>, TraceError> {
    let trunc = TraceError::Malformed("truncated chunk blob");
    let mut pos = 0usize;
    let n_ev = read_u64(blob, &mut pos).ok_or(trunc)? as usize;
    // Every event costs at least two row bytes (kind + Δ-icount), so a
    // count that implies more rows than the index promised is corrupt.
    if n_ev > max_rows_len / 2 + 1 {
        return Err(TraceError::Malformed("implausible chunk event count"));
    }
    let col_cap = n_ev * MAX_COL_BYTES_PER_EVENT + 16;

    let mut cols: Vec<Cow<'_, [u8]>> = Vec::with_capacity(N_COLS);
    for _ in 0..N_COLS {
        let flag = *blob.get(pos).ok_or(trunc)?;
        pos += 1;
        let raw_len = read_u64(blob, &mut pos).ok_or(trunc)? as usize;
        if raw_len > col_cap {
            return Err(TraceError::Malformed("implausible column length"));
        }
        match flag {
            0 => {
                let s = blob.get(pos..pos + raw_len).ok_or(trunc)?;
                pos += raw_len;
                cols.push(Cow::Borrowed(s));
            }
            1 => {
                let stored_len = read_u64(blob, &mut pos).ok_or(trunc)? as usize;
                if stored_len >= raw_len.max(1) {
                    // RLE is only ever written when strictly smaller.
                    return Err(TraceError::Malformed("rle column not smaller than raw"));
                }
                let s = blob.get(pos..pos + stored_len).ok_or(trunc)?;
                pos += stored_len;
                let raw = rle_decompress(s, raw_len)
                    .ok_or(TraceError::Malformed("corrupt rle column"))?;
                cols.push(Cow::Owned(raw));
            }
            _ => return Err(TraceError::Malformed("unknown column flag")),
        }
    }
    if pos != blob.len() {
        return Err(TraceError::Malformed("trailing bytes in chunk blob"));
    }
    if cols[C_KIND].len() != n_ev {
        return Err(TraceError::Malformed("kind column length mismatch"));
    }

    let mut cur = [0usize; N_COLS];
    macro_rules! cu {
        ($c:expr) => {
            read_u64(&cols[$c], &mut cur[$c]).ok_or(TraceError::Malformed("truncated column"))?
        };
    }
    macro_rules! cd {
        ($c:expr, $prev:expr) => {{
            let d = read_i64(&cols[$c], &mut cur[$c])
                .ok_or(TraceError::Malformed("truncated column"))?;
            $prev = $prev.wrapping_add_signed(d);
            $prev
        }};
    }

    let mut out = Vec::with_capacity(max_rows_len);
    let mut ip = ctx.ip;
    let mut ea = ctx.ea;
    let mut sp = ctx.sp;
    let mut prev = ColPrev::from_ctx(ctx);
    for i in 0..n_ev {
        let kind = cols[C_KIND][i] as u64;
        let dic = cu!(C_DIC);
        write_u64(&mut out, kind);
        write_u64(&mut out, dic);
        match kind {
            K_MEM_READ => {
                let a_ip = cd!(C_R_IP, prev.r_ip);
                let a_ea = cd!(C_R_EA, prev.r_ea);
                let size = cu!(C_R_SIZE);
                let a_sp = cd!(C_R_SP, prev.r_sp);
                let pk = cu!(C_R_PK);
                write_i64(&mut out, (a_ip as i64).wrapping_sub(ip as i64));
                ip = a_ip;
                write_i64(&mut out, (a_ea as i64).wrapping_sub(ea as i64));
                ea = a_ea;
                write_u64(&mut out, size);
                write_i64(&mut out, (a_sp as i64).wrapping_sub(sp as i64));
                sp = a_sp;
                write_u64(&mut out, pk);
            }
            K_MEM_WRITE => {
                let a_ip = cd!(C_W_IP, prev.w_ip);
                let a_ea = cd!(C_W_EA, prev.w_ea);
                let size = cu!(C_W_SIZE);
                let a_sp = cd!(C_W_SP, prev.w_sp);
                let rtn = cu!(C_W_RTN);
                write_i64(&mut out, (a_ip as i64).wrapping_sub(ip as i64));
                ip = a_ip;
                write_i64(&mut out, (a_ea as i64).wrapping_sub(ea as i64));
                ea = a_ea;
                write_u64(&mut out, size);
                write_i64(&mut out, (a_sp as i64).wrapping_sub(sp as i64));
                sp = a_sp;
                write_u64(&mut out, rtn);
            }
            K_CALL => {
                let a_ip = cd!(C_C_IP, prev.c_ip);
                let callee = cu!(C_C_CALLEE);
                let rtn = cu!(C_C_RTN);
                write_i64(&mut out, (a_ip as i64).wrapping_sub(ip as i64));
                ip = a_ip;
                write_u64(&mut out, callee);
                write_u64(&mut out, rtn);
            }
            K_RET => {
                let a_ip = cd!(C_T_IP, prev.t_ip);
                let ret_to = cd!(C_T_RET, prev.t_ret);
                let rtn = cu!(C_T_RTN);
                write_i64(&mut out, (a_ip as i64).wrapping_sub(ip as i64));
                ip = a_ip;
                write_i64(&mut out, (ret_to as i64).wrapping_sub(ip as i64));
                write_u64(&mut out, rtn);
            }
            K_RTN_ENTER => {
                let rtn = cu!(C_E_RTN);
                let a_sp = cd!(C_E_SP, prev.e_sp);
                write_u64(&mut out, rtn);
                write_i64(&mut out, (a_sp as i64).wrapping_sub(sp as i64));
                sp = a_sp;
            }
            K_FINI => {}
            _ => return Err(TraceError::Malformed("unknown event kind")),
        }
    }
    for c in 0..N_COLS {
        if c != C_KIND && cur[c] != cols[c].len() {
            return Err(TraceError::Malformed("column length mismatch"));
        }
    }
    Ok(out)
}

/// Serialise one column: flag byte (0 = raw, 1 = RLE), uncompressed length,
/// then either the raw bytes or `stored_len` + compressed bytes. RLE is
/// used only when strictly smaller.
fn write_column(blob: &mut Vec<u8>, raw: &[u8]) {
    match rle_compress(raw) {
        Some(rle) => {
            blob.push(1);
            write_u64(blob, raw.len() as u64);
            write_u64(blob, rle.len() as u64);
            blob.extend_from_slice(&rle);
        }
        None => {
            blob.push(0);
            write_u64(blob, raw.len() as u64);
            blob.extend_from_slice(raw);
        }
    }
}

/// Byte-run RLE. Token `c < 0x80`: a literal run of `c + 1` bytes follows.
/// Token `c >= 0x80`: the next byte repeats `(c & 0x7F) + 3` times (runs of
/// 1–2 stay literal — a repeat token would not be smaller). Returns `None`
/// unless the compressed form is strictly smaller than the input.
fn rle_compress(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 8);
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i < raw.len() {
        let b = raw[i];
        let mut j = i + 1;
        while j < raw.len() && raw[j] == b && j - i < 0x7F + 3 {
            j += 1;
        }
        let run = j - i;
        if run >= 3 {
            flush_literals(&mut out, &raw[lit_start..i]);
            out.push(0x80 | (run - 3) as u8);
            out.push(b);
            i = j;
            lit_start = i;
        } else {
            i = j;
        }
        if out.len() + (i - lit_start) >= raw.len() {
            return None; // cannot win any more
        }
    }
    flush_literals(&mut out, &raw[lit_start..]);
    (out.len() < raw.len()).then_some(out)
}

fn flush_literals(out: &mut Vec<u8>, mut lit: &[u8]) {
    while !lit.is_empty() {
        let n = lit.len().min(0x80);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lit[..n]);
        lit = &lit[n..];
    }
}

/// Invert [`rle_compress`]. `None` on any inconsistency: truncated runs or
/// an output length other than exactly `raw_len`.
fn rle_decompress(src: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < src.len() {
        let c = src[i];
        i += 1;
        if c < 0x80 {
            let n = c as usize + 1;
            let lit = src.get(i..i + n)?;
            out.extend_from_slice(lit);
            i += n;
        } else {
            let n = (c & 0x7F) as usize + 3;
            let b = *src.get(i)?;
            i += 1;
            out.resize(out.len() + n, b);
        }
        if out.len() > raw_len {
            return None;
        }
    }
    (out.len() == raw_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrips_and_only_claims_wins() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],
            vec![1, 2, 3, 4, 5],
            [vec![9u8; 200], vec![1, 2, 3], vec![9u8; 2]].concat(),
            (0..=255u8).cycle().take(700).collect(),
        ];
        for raw in cases {
            match rle_compress(&raw) {
                Some(c) => {
                    assert!(c.len() < raw.len());
                    assert_eq!(rle_decompress(&c, raw.len()).unwrap(), raw);
                }
                None => {} // incompressible: stored raw by write_column
            }
        }
        // A long constant run compresses massively.
        let c = rle_compress(&vec![0u8; 1000]).unwrap();
        assert!(c.len() <= 2 * (1000 / 130 + 1));
    }

    #[test]
    fn rle_decompress_rejects_corruption() {
        let c = rle_compress(&vec![5u8; 100]).unwrap();
        assert_eq!(rle_decompress(&c, 99), None, "wrong declared length");
        assert_eq!(rle_decompress(&c[..c.len() - 1], 100), None, "truncated");
        let mut lit = vec![0x7Fu8]; // promises 128 literal bytes, has none
        lit.push(1);
        assert_eq!(rle_decompress(&lit, 128), None);
    }
}
