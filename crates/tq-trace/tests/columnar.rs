//! TQTRACE3 property net: the columnar codec must be a *byte-exact*
//! inverse of the row encoding (same rows, same digest, any format), the
//! streaming reader must reproduce in-memory replay bit-for-bit with only
//! one chunk decoded at a time, and corrupt or truncated v3 images must
//! come back as `Err`s, never panics. Mirrors `sharded_replay.rs`: seeded
//! random traces as the property net, wfs capture as the acceptance path.

use tq_gprof::{GprofOptions, GprofTool};
use tq_isa::prng::Rng;
use tq_isa::RoutineId;
use tq_quad::{QuadOptions, QuadTool};
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::{StreamingTrace, Trace, TraceFormat, TraceRecorder};
use tq_vm::{Event, ProgramInfo, RoutineMeta, Tool};

/// Same program shape as `sharded_replay.rs`: two main-image routines and
/// two library routines, so both stack-tracking variants get exercised.
fn synthetic_info() -> ProgramInfo {
    let mk = |id: u32, name: &str, main: bool, base: u64| RoutineMeta {
        id: RoutineId(id),
        name: name.into(),
        image: if main { "app" } else { "libc" }.into(),
        main_image: main,
        start: base,
        end: base + 0x100,
    };
    ProgramInfo {
        routines: vec![
            mk(0, "main", true, 0x10000),
            mk(1, "kernel_a", true, 0x11000),
            mk(2, "memcpy", false, 0x20000),
            mk(3, "malloc", false, 0x21000),
        ],
        stack_base: 0x3FFF_FF00,
        entry: 0x10000,
    }
}

/// Seeded-random but structurally plausible event stream: balanced
/// calls/returns around a shadow stack, heap- and stack-addressed
/// reads/writes, forward-only virtual clock.
fn random_trace(seed: u64, n_events: usize) -> Trace {
    let info = synthetic_info();
    let mut rng = Rng::new(seed);
    let mut rec = TraceRecorder::new();
    rec.on_attach(&info);

    let mut icount = 0u64;
    let mut stack: Vec<(RoutineId, u64)> = vec![(RoutineId(0), info.stack_base)];
    for _ in 0..n_events {
        icount += rng.u64_in(1, 9);
        let (rtn, sp) = *stack.last().unwrap();
        let ip = info.routines[rtn.idx()].start + 8 * rng.u64_in(0, 30);
        match rng.index(10) {
            0 | 1 if stack.len() < 12 => {
                let callee = RoutineId(rng.index(4) as u32);
                rec.on_event(&Event::Call {
                    ip,
                    callee,
                    icount,
                    rtn,
                });
                icount += 1;
                let new_sp = sp - rng.u64_in(16, 64);
                stack.push((callee, new_sp));
                rec.on_event(&Event::RoutineEnter {
                    rtn: callee,
                    sp: new_sp,
                    icount,
                });
            }
            2 if stack.len() > 1 => {
                stack.pop();
                let (back_rtn, _) = *stack.last().unwrap();
                rec.on_event(&Event::Ret {
                    ip,
                    return_to: info.routines[back_rtn.idx()].start + 16,
                    icount,
                    rtn,
                });
            }
            3 | 4 | 5 => {
                let ea = if rng.index(4) == 0 {
                    sp - rng.u64_in(0, 128)
                } else {
                    0x1000_0000 + rng.u64_in(0, 4096)
                };
                rec.on_event(&Event::MemRead {
                    ip,
                    ea,
                    size: 1 << rng.index(4),
                    sp,
                    is_prefetch: rng.index(8) == 0,
                    icount,
                    rtn,
                });
            }
            _ => {
                let ea = if rng.index(4) == 0 {
                    sp - rng.u64_in(0, 128)
                } else {
                    0x1000_0000 + rng.u64_in(0, 4096)
                };
                rec.on_event(&Event::MemWrite {
                    ip,
                    ea,
                    size: 1 << rng.index(4),
                    sp,
                    icount,
                    rtn,
                });
            }
        }
    }
    rec.on_fini(icount + 1);
    rec.into_trace()
}

/// A kernel-shaped trace: stride-64 array scans from a tight loop — the
/// access pattern the paper's workloads actually produce, and the one the
/// columnar deltas + byte-run compressor are built to win on.
fn strided_trace(n_iters: usize) -> Trace {
    let info = synthetic_info();
    let mut rec = TraceRecorder::new();
    rec.on_attach(&info);
    let rtn = RoutineId(1);
    let (src, dst) = (0x1000_0000u64, 0x2000_0000u64);
    let sp = info.stack_base - 64;
    let mut icount = 1u64;
    rec.on_event(&Event::RoutineEnter { rtn, sp, icount });
    for i in 0..n_iters as u64 {
        icount += 4;
        rec.on_event(&Event::MemRead {
            ip: 0x11008,
            ea: src + 64 * i,
            size: 8,
            sp,
            is_prefetch: false,
            icount,
            rtn,
        });
        icount += 2;
        rec.on_event(&Event::MemWrite {
            ip: 0x11010,
            ea: dst + 64 * i,
            size: 8,
            sp,
            icount,
            rtn,
        });
    }
    rec.on_fini(icount + 1);
    rec.into_trace()
}

fn save_bytes(trace: &Trace, format: TraceFormat) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace.save_as(&mut bytes, format).expect("save");
    bytes
}

#[test]
fn v3_save_load_roundtrips_bit_exactly() {
    for seed in 0..4u64 {
        let trace = random_trace(0x3C01 ^ seed, 1_200)
            .with_chunk_index(8)
            .expect("chunk index");
        let bytes = save_bytes(&trace, TraceFormat::V3);
        assert_eq!(&bytes[..8], b"TQTRACE3", "seed {seed}");
        let reloaded = Trace::load(&mut bytes.as_slice()).expect("reload");
        assert_eq!(trace, reloaded, "seed {seed}: v3 roundtrip not byte-exact");
        assert_eq!(trace.digest(), reloaded.digest(), "seed {seed}");
    }
}

#[test]
fn cross_version_saves_load_identically() {
    // One capture, three carriers: v1 drops the (derived) chunk index but
    // every format must reproduce the identical row stream and digest.
    let trace = random_trace(0xA11CE, 1_500)
        .with_chunk_index(8)
        .expect("chunk index");
    let v1 = save_bytes(&trace, TraceFormat::V1);
    let v2 = save_bytes(&trace, TraceFormat::V2);
    let v3 = save_bytes(&trace, TraceFormat::V3);
    assert_eq!(&v1[..8], b"TQTRACE1");
    assert_eq!(&v2[..8], b"TQTRACE2");
    assert_eq!(&v3[..8], b"TQTRACE3");

    let l1 = Trace::load(&mut v1.as_slice()).expect("load v1");
    let l2 = Trace::load(&mut v2.as_slice()).expect("load v2");
    let l3 = Trace::load(&mut v3.as_slice()).expect("load v3");
    assert_eq!(l1.events, trace.events);
    assert_eq!(l1.info, trace.info);
    assert_eq!(l1.n_events, trace.n_events);
    assert_eq!(l1.chunks, None, "v1 carries no index");
    assert_eq!(l2, trace);
    assert_eq!(l3, trace);
    for (what, l) in [("v1", &l1), ("v2", &l2), ("v3", &l3)] {
        assert_eq!(l.digest(), trace.digest(), "{what} digest drifted");
    }
}

#[test]
fn indexless_traces_negotiate_down_to_v1() {
    // No chunk index → nothing for v2/v3 to add; both fall back to the
    // original format rather than inventing chunk boundaries.
    let trace = random_trace(0xD0CC, 400);
    assert!(trace.chunks.is_none());
    for format in [TraceFormat::V2, TraceFormat::V3] {
        let bytes = save_bytes(&trace, format);
        assert_eq!(&bytes[..8], b"TQTRACE1", "{format:?} should fall back");
        assert_eq!(Trace::load(&mut bytes.as_slice()).expect("load"), trace);
    }
}

#[test]
fn v3_wins_on_strided_captures() {
    // The verify.sh gate asserts ≤ 0.7× on the wfs smoke capture; the
    // synthetic kernel-shaped trace pins the same bound in-tree.
    let trace = strided_trace(3_000)
        .with_chunk_index(8)
        .expect("chunk index");
    let v2 = save_bytes(&trace, TraceFormat::V2);
    let v3 = save_bytes(&trace, TraceFormat::V3);
    assert_eq!(&v3[..8], b"TQTRACE3");
    assert!(
        (v3.len() as f64) <= 0.7 * (v2.len() as f64),
        "v3 {} bytes vs v2 {} bytes — compression regressed",
        v3.len(),
        v2.len()
    );
    // And random traces — the codec's worst case — must still roundtrip
    // without ballooning past the row encoding by more than the per-chunk
    // framing overhead.
    let rnd = random_trace(0x5123, 2_000)
        .with_chunk_index(8)
        .expect("index");
    let rv2 = save_bytes(&rnd, TraceFormat::V2);
    let rv3 = save_bytes(&rnd, TraceFormat::V3);
    assert!(
        rv3.len() <= rv2.len() + 64 * 8,
        "v3 {} bytes vs v2 {} bytes on incompressible input",
        rv3.len(),
        rv2.len()
    );
}

/// Push bytes through every v3 decode surface. Any outcome but a panic is
/// acceptable: corrupt images may fail to parse, fail mid-replay, or — if
/// the flip landed in dead space — succeed benignly.
fn exercise_v3(bytes: &[u8]) {
    if let Ok(t) = Trace::load(&mut { bytes }) {
        let mut tool = TquadTool::new(TquadOptions::default().with_interval(777));
        let _ = t.replay(&mut tool);
    }
    if let Ok(s) = StreamingTrace::from_bytes(bytes.to_vec()) {
        for k in 0..s.n_chunks() {
            let _ = s.chunk_rows(k);
        }
        let mut tool = TquadTool::new(TquadOptions::default().with_interval(777));
        let _ = s.replay(&mut tool);
        let mut tool = QuadTool::new(QuadOptions::default());
        let _ = s.replay_sharded(&mut tool, 4);
    }
}

#[test]
fn truncated_v3_errors_instead_of_panicking() {
    let trace = random_trace(0x5EED3, 800)
        .with_chunk_index(4)
        .expect("chunk index");
    let bytes = save_bytes(&trace, TraceFormat::V3);
    let mut rng = Rng::new(0x7E573);
    for _ in 0..200 {
        let cut = rng.index(bytes.len());
        exercise_v3(&bytes[..cut]);
    }
    // Deterministic sweep over the fragile region right after the header.
    for cut in 0..64.min(bytes.len()) {
        exercise_v3(&bytes[..cut]);
    }
}

#[test]
fn corrupted_v3_errors_instead_of_panicking() {
    let trace = random_trace(0xD1CE3, 800)
        .with_chunk_index(4)
        .expect("chunk index");
    let pristine = save_bytes(&trace, TraceFormat::V3);
    let mut rng = Rng::new(0xF00D3);
    for _ in 0..200 {
        let mut bytes = pristine.clone();
        for _ in 0..=rng.index(4) {
            let at = rng.index(bytes.len());
            bytes[at] ^= rng.next_u64() as u8 | 1;
        }
        exercise_v3(&bytes);
    }
}

/// Streaming replay (sequential and sharded) must match in-memory
/// sequential replay bit-exactly for every tool, from every carrier
/// format.
fn assert_streaming_matches(trace: &Trace, bytes: Vec<u8>, what: &str) {
    let stream = StreamingTrace::from_bytes(bytes).expect("open streaming");
    assert_eq!(stream.info(), &trace.info, "{what}: info drifted");
    assert_eq!(stream.n_events(), trace.n_events, "{what}");

    let opts = TquadOptions::default().with_interval(777);
    let mut seq = TquadTool::new(opts);
    trace.replay(&mut seq).expect("in-memory replay");
    let seq = seq.into_profile();
    let mut st = TquadTool::new(opts);
    stream.replay(&mut st).expect("streaming replay");
    assert_eq!(seq, st.into_profile(), "{what}: tquad streaming diverged");
    for jobs in [2, 4, 7] {
        let mut st = TquadTool::new(opts);
        stream
            .replay_sharded(&mut st, jobs)
            .expect("streaming sharded");
        assert_eq!(
            seq,
            st.into_profile(),
            "{what}: tquad streaming-sharded diverged at {jobs} jobs"
        );
    }

    let qopts = QuadOptions::default();
    let mut seq = QuadTool::new(qopts);
    trace.replay(&mut seq).expect("in-memory replay");
    let seq = seq.into_profile();
    let mut st = QuadTool::new(qopts);
    stream.replay(&mut st).expect("streaming replay");
    assert_eq!(seq, st.into_profile(), "{what}: quad streaming diverged");
    let mut st = QuadTool::new(qopts);
    stream
        .replay_sharded(&mut st, 4)
        .expect("streaming sharded");
    assert_eq!(
        seq,
        st.into_profile(),
        "{what}: quad streaming-sharded diverged"
    );

    let gopts = GprofOptions {
        sample_interval: 500,
        ..Default::default()
    };
    let mut seq = GprofTool::new(gopts);
    trace.replay(&mut seq).expect("in-memory replay");
    let seq = seq.into_profile();
    let mut st = GprofTool::new(gopts);
    stream.replay(&mut st).expect("streaming replay");
    assert_eq!(seq, st.into_profile(), "{what}: gprof streaming diverged");
    let mut st = GprofTool::new(gopts);
    stream
        .replay_sharded(&mut st, 4)
        .expect("streaming sharded");
    assert_eq!(
        seq,
        st.into_profile(),
        "{what}: gprof streaming-sharded diverged"
    );
}

#[test]
fn streaming_replay_matches_in_memory_for_all_formats() {
    let trace = random_trace(0x57AE, 1_500)
        .with_chunk_index(8)
        .expect("chunk index");
    for format in [TraceFormat::V1, TraceFormat::V2, TraceFormat::V3] {
        let bytes = save_bytes(&trace, format);
        assert_streaming_matches(&trace, bytes, &format!("{format:?}"));
    }
}

#[test]
fn wfs_capture_streams_exactly() {
    // Acceptance path: a real application capture through the whole
    // pipeline — record, index, columnar-encode, stream back.
    let app = tq_wfs::WfsApp::build(tq_wfs::WfsConfig::tiny());
    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("wfs runs");
    let trace = vm
        .detach_tool::<TraceRecorder>(h)
        .unwrap()
        .into_trace()
        .with_chunk_index(8)
        .expect("chunk index");
    let bytes = save_bytes(&trace, TraceFormat::V3);
    assert_eq!(&bytes[..8], b"TQTRACE3");
    assert_eq!(
        Trace::load(&mut bytes.as_slice()).expect("reload").digest(),
        trace.digest()
    );
    assert_streaming_matches(&trace, bytes, "wfs tiny v3");
}

#[test]
fn streaming_decodes_one_chunk_at_a_time() {
    // The bounded-memory contract: every lazy chunk read is strictly
    // smaller than the full row stream, and stitching all chunk reads
    // back together reproduces it exactly.
    let trace = random_trace(0xB0B0, 2_000)
        .with_chunk_index(8)
        .expect("chunk index");
    let bytes = save_bytes(&trace, TraceFormat::V3);
    let stream = StreamingTrace::from_bytes(bytes).expect("open streaming");
    assert_eq!(stream.n_chunks(), 8);
    let mut stitched = Vec::new();
    let mut largest = 0usize;
    for k in 0..stream.n_chunks() {
        let rows = stream.chunk_rows(k).expect("chunk decode");
        largest = largest.max(rows.len());
        stitched.extend_from_slice(&rows);
    }
    assert_eq!(stitched, trace.events, "stitched chunks != row stream");
    assert!(
        largest < trace.events.len(),
        "a single chunk read materialised the whole stream"
    );
    // The resident image is the *compressed* capture, smaller than the
    // decoded rows it stands in for.
    assert!(stream.resident_bytes() < trace.events.len() + 4096);
}
