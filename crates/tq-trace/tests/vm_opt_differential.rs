//! Differential suite for the interpreter optimisation levels, at the
//! profile level: for the wfs and imgproc case studies and for randomized
//! kernelc programs, the captured trace must be *byte-identical* and the
//! tquad/quad/gprof profiles must be identical whichever `--vm-opt` level
//! (`off`/`fuse`/`trace`) the capture ran under — including runs that
//! exhaust their fuel mid-block and mid-trace.

use tq_gprof::{GprofOptions, GprofTool};
use tq_isa::prng::Rng;
use tq_kernelc::dsl::*;
use tq_kernelc::{compile, ElemTy, Function, GlobalInit, Module};
use tq_quad::{QuadOptions, QuadTool};
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::TraceRecorder;
use tq_vm::{Vm, VmOpt, VmStats};

fn cases(base: usize) -> usize {
    base
}

/// Everything observable from one profiled capture run.
struct Capture {
    outcome: String,
    trace_bytes: Vec<u8>,
    trace_digest: String,
    tquad: String,
    quad: String,
    gprof: String,
    stats: VmStats,
}

fn tquad_fingerprint(p: &tq_tquad::TquadProfile) -> String {
    let mut s = format!("icount={} slices={}\n", p.total_icount, p.n_slices());
    for k in &p.kernels {
        s.push_str(&format!("{} calls={}", k.name, k.calls));
        for e in k.series.entries() {
            s.push_str(&format!(
                " {}:{},{},{},{}",
                e.slice, e.r_incl, e.r_excl, e.w_incl, e.w_excl
            ));
        }
        s.push('\n');
    }
    s
}

fn quad_fingerprint(p: &tq_quad::QuadProfile) -> String {
    let mut s = String::new();
    for r in &p.rows {
        s.push_str(&format!(
            "{} {} {} {} {} {} {}\n",
            r.name,
            r.in_bytes,
            r.in_unma,
            r.out_bytes,
            r.out_unma,
            r.checked_accesses,
            r.traced_accesses
        ));
    }
    let mut edges: Vec<String> = p
        .bindings
        .iter()
        .map(|b| format!("{}->{} {} {}", b.producer.0, b.consumer.0, b.bytes, b.unma))
        .collect();
    edges.sort();
    s.push_str(&edges.join("\n"));
    s
}

fn gprof_fingerprint(p: &tq_gprof::FlatProfile) -> String {
    let mut s = format!("samples={}\n", p.total_samples);
    for r in &p.rows {
        s.push_str(&format!(
            "{} self={} cum={} calls={}\n",
            r.name, r.self_samples, r.cum_samples, r.calls
        ));
    }
    for e in &p.edges {
        s.push_str(&format!("{:?}->{:?} {}\n", e.caller, e.callee, e.count));
    }
    s
}

/// Run one capture with the recorder and all three analysis tools
/// attached, at the given optimisation level.
fn capture(mut vm: Vm, opt: VmOpt, fuel: Option<u64>) -> Capture {
    vm.set_vm_opt(opt);
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(777),
    )));
    let q = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    let g = vm.attach_tool(Box::new(GprofTool::new(GprofOptions::default())));
    let outcome = match vm.run(fuel) {
        Ok(exit) => format!("{:?} icount={}", exit.reason, exit.icount),
        Err(e) => format!("error: {e}"),
    };
    let stats = *vm.stats();
    let trace = vm.detach_tool::<TraceRecorder>(r).unwrap().into_trace();
    let mut trace_bytes = Vec::new();
    trace.save(&mut trace_bytes).unwrap();
    Capture {
        outcome,
        trace_digest: trace.digest(),
        trace_bytes,
        tquad: tquad_fingerprint(&vm.detach_tool::<TquadTool>(t).unwrap().into_profile()),
        quad: quad_fingerprint(&vm.detach_tool::<QuadTool>(q).unwrap().into_profile()),
        gprof: gprof_fingerprint(&vm.detach_tool::<GprofTool>(g).unwrap().into_profile()),
        stats,
    }
}

fn assert_mode_invariant(a: &Capture, b: &Capture, what: &str) {
    assert_eq!(a.outcome, b.outcome, "{what}: run outcome");
    assert_eq!(a.trace_digest, b.trace_digest, "{what}: trace digest");
    assert_eq!(a.trace_bytes, b.trace_bytes, "{what}: trace bytes");
    assert_eq!(a.tquad, b.tquad, "{what}: tquad profile");
    assert_eq!(a.quad, b.quad, "{what}: quad profile");
    assert_eq!(a.gprof, b.gprof, "{what}: gprof profile");
    assert_eq!(a.stats.mem_reads, b.stats.mem_reads, "{what}: mem_reads");
    assert_eq!(a.stats.mem_writes, b.stats.mem_writes, "{what}: mem_writes");
    assert_eq!(
        a.stats.events_delivered, b.stats.events_delivered,
        "{what}: events_delivered"
    );
    assert_eq!(
        a.stats.block_execs, b.stats.block_execs,
        "{what}: block_execs"
    );
}

fn sweep(make_vm: impl Fn() -> Vm, fuel: Option<u64>, what: &str) -> [Capture; 3] {
    let off = capture(make_vm(), VmOpt::Off, fuel);
    let fuse = capture(make_vm(), VmOpt::Fuse, fuel);
    let trace = capture(make_vm(), VmOpt::Trace, fuel);
    assert_mode_invariant(&off, &fuse, &format!("{what}: off vs fuse"));
    assert_mode_invariant(&off, &trace, &format!("{what}: off vs trace"));
    [off, fuse, trace]
}

#[test]
fn wfs_capture_is_mode_invariant() {
    let app = tq_wfs::WfsApp::build(tq_wfs::WfsConfig::tiny());
    let [_, fuse, trace] = sweep(|| app.make_vm(), None, "wfs");
    assert!(fuse.stats.blocks_fused >= 1, "wfs: fusion never engaged");
    assert!(
        trace.stats.traces_recorded >= 1,
        "wfs: no hot loop was traced"
    );
    assert!(trace.stats.trace_instrs > 0, "wfs: traces never executed");
}

#[test]
fn imgproc_capture_is_mode_invariant() {
    let app = tq_imgproc::ImgApp::build(tq_imgproc::ImgConfig::tiny());
    let [_, fuse, trace] = sweep(|| app.make_vm(), None, "imgproc");
    assert!(
        fuse.stats.blocks_fused >= 1,
        "imgproc: fusion never engaged"
    );
    assert!(
        trace.stats.traces_recorded >= 1,
        "imgproc: no hot loop was traced"
    );
}

#[test]
fn wfs_fuel_exhaustion_mid_trace_is_mode_invariant() {
    let app = tq_wfs::WfsApp::build(tq_wfs::WfsConfig::tiny());
    // Find the full cost, then cut fuel to land mid-run — long after the
    // hot threshold, so `trace` mode is inside lowered iterations.
    let full = capture(app.make_vm(), VmOpt::Off, None);
    let total: u64 = full
        .outcome
        .rsplit("icount=")
        .next()
        .unwrap()
        .parse()
        .unwrap();
    for cut in [total / 2, total / 3, total - 7] {
        let [off, _, _] = sweep(|| app.make_vm(), Some(cut), "wfs fueled");
        assert!(
            off.outcome.contains("budget exhausted"),
            "fuel {cut} unexpectedly sufficed"
        );
    }
}

/// A random loopy kernelc program with plenty of memory traffic: an outer
/// hot loop (well past the trace threshold) over random read-modify-write
/// statements on a 16-slot array, plus a checksum reduction.
fn random_loop_module(rng: &mut Rng) -> Module {
    let iters = rng.i64_in(80, 400);
    let mut inner = vec![];
    for _ in 0..1 + rng.index(5) {
        let (i, j, k) = (rng.i64_in(0, 15), rng.i64_in(0, 15), rng.i64_in(-50, 50));
        inner.push(match rng.index(4) {
            0 => sti(ga("arr"), ci(i), add(ldi(ga("arr"), ci(i)), ci(k))),
            1 => sti(
                ga("arr"),
                band(v("i"), ci(15)),
                add(ldi(ga("arr"), ci(j)), v("i")),
            ),
            2 => sti(
                ga("arr"),
                ci(i),
                sub(ldi(ga("arr"), band(v("i"), ci(15))), ci(k)),
            ),
            _ => set("acc", add(v("acc"), ldi(ga("arr"), ci(j)))),
        });
    }
    let body = vec![
        leti("acc", ci(0)),
        for_("i", ci(0), ci(iters), inner),
        sti(ga("chk"), ci(0), v("acc")),
    ];
    let mut m = Module::new("p");
    m.global("arr", ElemTy::I64, 16, GlobalInit::Zero);
    m.global("chk", ElemTy::I64, 1, GlobalInit::Zero);
    m.func(Function::new("main").body(body));
    m
}

#[test]
fn randomized_kernelc_captures_are_mode_invariant() {
    let mut rng = Rng::new(0x07D1_FF6A);
    let mut traced_any = false;
    for case in 0..cases(12) {
        let m = random_loop_module(&mut rng);
        let program = compile(&m).expect("compiles").program;
        let mk = || Vm::new(program.clone()).expect("loads");
        let [off, _, trace] = sweep(&mk, None, &format!("kernelc case {case}"));
        traced_any |= trace.stats.traces_recorded > 0;

        // And a fueled variant cutting the run mid-way.
        let total: u64 = off
            .outcome
            .rsplit("icount=")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        if total > 40 {
            sweep(&mk, Some(total / 2), &format!("kernelc case {case} fueled"));
        }
    }
    assert!(traced_any, "no random program ever recorded a trace");
}
