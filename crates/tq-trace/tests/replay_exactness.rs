//! Replay exactness: tQUAD and QUAD produce *identical* results whether
//! they run live under the VM or offline from a recorded trace of the same
//! execution — the property that makes one-capture/many-analyses sound.

use tq_quad::{QuadOptions, QuadTool};
use tq_tquad::{PhaseDetector, TquadOptions, TquadTool};
use tq_trace::{Trace, TraceRecorder};
use tq_wfs::{WfsApp, WfsConfig};

fn record(app: &WfsApp) -> (Trace, tq_tquad::TquadProfile, tq_quad::QuadProfile) {
    // One VM run with the recorder AND the live tools attached, so live
    // and replayed tools see the very same execution.
    let mut vm = app.make_vm();
    let r = vm.attach_tool(Box::new(TraceRecorder::new()));
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(777),
    )));
    let q = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    vm.run(None).expect("wfs runs");
    let trace = vm.detach_tool::<TraceRecorder>(r).unwrap().into_trace();
    let live_t = vm.detach_tool::<TquadTool>(t).unwrap().into_profile();
    let live_q = vm.detach_tool::<QuadTool>(q).unwrap().into_profile();
    (trace, live_t, live_q)
}

fn tquad_fingerprint(p: &tq_tquad::TquadProfile) -> String {
    let mut s = format!("icount={} slices={}\n", p.total_icount, p.n_slices());
    for k in &p.kernels {
        s.push_str(&format!("{} calls={}", k.name, k.calls));
        for e in k.series.entries() {
            s.push_str(&format!(
                " {}:{},{},{},{}",
                e.slice, e.r_incl, e.r_excl, e.w_incl, e.w_excl
            ));
        }
        s.push('\n');
    }
    s
}

fn quad_fingerprint(p: &tq_quad::QuadProfile) -> String {
    let mut s = String::new();
    for r in &p.rows {
        s.push_str(&format!(
            "{} {} {} {} {} {} {}\n",
            r.name,
            r.in_bytes,
            r.in_unma,
            r.out_bytes,
            r.out_unma,
            r.checked_accesses,
            r.traced_accesses
        ));
    }
    let mut edges: Vec<String> = p
        .bindings
        .iter()
        .map(|b| format!("{}->{} {} {}", b.producer.0, b.consumer.0, b.bytes, b.unma))
        .collect();
    edges.sort();
    s.push_str(&edges.join("\n"));
    s
}

#[test]
fn tquad_live_equals_tquad_replayed() {
    let app = WfsApp::build(WfsConfig::tiny());
    let (trace, live, _) = record(&app);

    let mut offline = TquadTool::new(TquadOptions::default().with_interval(777));
    trace.replay(&mut offline).expect("replay succeeds");
    let offline = offline.into_profile();

    assert_eq!(tquad_fingerprint(&live), tquad_fingerprint(&offline));
}

#[test]
fn quad_live_equals_quad_replayed() {
    let app = WfsApp::build(WfsConfig::tiny());
    let (trace, _, live) = record(&app);

    let mut offline = QuadTool::new(QuadOptions::default());
    trace.replay(&mut offline).expect("replay succeeds");
    let offline = offline.into_profile();

    assert_eq!(quad_fingerprint(&live), quad_fingerprint(&offline));
}

#[test]
fn one_capture_many_intervals() {
    // The §V.B sweep pattern: capture once, analyse at several intervals;
    // each replay must match a fresh live run at that interval.
    let app = WfsApp::build(WfsConfig::tiny());
    let (trace, _, _) = record(&app);

    for interval in [100u64, 5_000, 50_000] {
        let mut offline = TquadTool::new(TquadOptions::default().with_interval(interval));
        trace.replay(&mut offline).expect("replay succeeds");
        let offline = offline.into_profile();

        let mut vm = app.make_vm();
        let t = vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(interval),
        )));
        vm.run(None).expect("live run");
        let live = vm.detach_tool::<TquadTool>(t).unwrap().into_profile();

        assert_eq!(
            tquad_fingerprint(&live),
            tquad_fingerprint(&offline),
            "interval {interval}"
        );
        // Phase detection therefore agrees too.
        assert_eq!(
            PhaseDetector::default().detect(&live).len(),
            PhaseDetector::default().detect(&offline).len()
        );
    }
}

#[test]
fn trace_is_compact_and_persistable() {
    let app = WfsApp::build(WfsConfig::tiny());
    let (trace, _, _) = record(&app);
    assert!(
        trace.bytes_per_event() < 10.0,
        "delta encoding should stay small: {:.1} B/event over {} events",
        trace.bytes_per_event(),
        trace.n_events
    );

    let mut bytes = Vec::new();
    trace.save(&mut bytes).unwrap();
    let back = Trace::load(&mut bytes.as_slice()).unwrap();
    assert_eq!(back, trace);

    // The loaded trace replays identically.
    let mut a = TquadTool::new(TquadOptions::default());
    trace.replay(&mut a).unwrap();
    let mut b = TquadTool::new(TquadOptions::default());
    back.replay(&mut b).unwrap();
    assert_eq!(
        tquad_fingerprint(&a.into_profile()),
        tquad_fingerprint(&b.into_profile())
    );
}
